// cs-lint-fixture: path = "crates/relaynet/src/bad.rs"
use std::collections::HashMap; //~ nondeterministic-iteration
use std::collections::{BTreeMap, HashSet}; //~ nondeterministic-iteration

struct Slabs {
    routes: HashMap<u64, u64>, //~ nondeterministic-iteration
    ordered: BTreeMap<u64, u64>,
}

fn build() -> HashSet<u64> { //~ nondeterministic-iteration
    // cs-lint: allow(nondeterministic-iteration, reason = "membership-only probe, never iterated")
    let allowed = HashSet::new();
    allowed
}

#[cfg(test)]
mod tests {
    #[test]
    fn still_scoped_in_tests() {
        let m = std::collections::HashMap::<u8, u8>::new(); //~ nondeterministic-iteration
        assert!(m.is_empty());
    }
}
