//! Simulated time.
//!
//! The simulator measures time in integer **nanoseconds** from the start of
//! the simulation. Using a fixed-point integer representation (rather than
//! `f64` seconds) keeps event ordering exact and platform-independent, which
//! is a prerequisite for deterministic, seed-reproducible experiments.
//!
//! Two types are provided, mirroring `std::time`:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! Arithmetic panics on overflow in debug builds and is explicitly checked
//! in the `checked_*` variants; simulations run for simulated seconds to
//! hours, far from the ~584-year range of a `u64` nanosecond counter.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is `Copy`, totally ordered, and hashable, so it can be used
/// directly as an event-queue key.
///
/// # Examples
///
/// ```
/// use simcore::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1 - t0, SimDuration::from_micros(5_000));
/// assert!(t1 > t0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simcore::time::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel
    /// for run limits.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant `secs` seconds after simulation start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64: invalid seconds value {secs}"
        );
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds since simulation start.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// The duration since an earlier instant, or `None` if `earlier` is
    /// actually later than `self`.
    #[inline]
    pub const fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        if self.0 >= earlier.0 {
            Some(SimDuration(self.0 - earlier.0))
        } else {
            None
        }
    }

    /// The duration since an earlier instant, clamped to zero if `earlier`
    /// is later than `self`.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Saturating addition of a duration.
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    pub const fn mul_u64(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// Multiplies the duration by a floating-point factor (rounding to the
    /// nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio of two durations as an `f64`.
    ///
    /// Returns `f64::INFINITY` if `other` is zero and `self` is not, and
    /// `1.0` if both are zero (a degenerate but harmless convention for
    /// RTT ratios on the very first sample).
    #[inline]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeds u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_duration_since`] when out-of-order timestamps
    /// are possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.checked_duration_since(rhs)
            .expect("SimTime subtraction: right operand is later than left operand")
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: duration larger than instant"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Formats durations with an automatically chosen unit, e.g. `1.5ms`.
fn format_nanos(nanos: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if nanos == 0 {
        write!(f, "0s")
    } else if nanos < NANOS_PER_MICRO {
        write!(f, "{nanos}ns")
    } else if nanos < NANOS_PER_MILLI {
        write!(f, "{:.3}us", nanos as f64 / NANOS_PER_MICRO as f64)
    } else if nanos < NANOS_PER_SEC {
        write!(f, "{:.3}ms", nanos as f64 / NANOS_PER_MILLI as f64)
    } else {
        write!(f, "{:.6}s", nanos as f64 / NANOS_PER_SEC as f64)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime(")?;
        format_nanos(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration(")?;
        format_nanos(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2 * NANOS_PER_SEC)
        );
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_nanos(), 10_250_000);
    }

    #[test]
    fn time_minus_time_is_duration() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(10);
        assert_eq!(b - a, SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "right operand is later")]
    fn time_subtraction_panics_when_reversed() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(10);
        let _ = a - b;
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(10);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_millis(7));
    }

    #[test]
    fn checked_duration_since() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(
            b.checked_duration_since(a),
            Some(SimDuration::from_nanos(4))
        );
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_secs_f64(0.001_234_567);
        assert!((d.as_secs_f64() - 0.001_234_567).abs() < 1e-12);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_millis(), 1_500);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!(a + b, SimDuration::from_millis(5));
        assert_eq!(b - a, SimDuration::from_millis(1));
        assert_eq!(a * 4, SimDuration::from_millis(8));
        assert_eq!(b / 3, SimDuration::from_millis(1));
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_nanos(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ratio_conventions() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert!((a.ratio(b) - 1.5).abs() < 1e-12);
        assert_eq!(a.ratio(SimDuration::ZERO), f64::INFINITY);
        assert_eq!(SimDuration::ZERO.ratio(SimDuration::ZERO), 1.0);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn ordering_is_by_instant() {
        let mut v = vec![
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_millis(5)
            ]
        );
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(1).to_string(), "1.000us");
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimTime::from_millis(250).to_string(), "250.000ms");
    }

    #[test]
    fn debug_wraps_display() {
        assert_eq!(format!("{:?}", SimTime::from_millis(1)), "SimTime(1.000ms)");
        assert_eq!(
            format!("{:?}", SimDuration::from_nanos(7)),
            "SimDuration(7ns)"
        );
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(5)),
            SimTime::MAX
        );
    }

    #[test]
    fn millis_f64_accessors() {
        let t = SimTime::from_micros(1_500);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_micros(2_500);
        assert!((d.as_millis_f64() - 2.5).abs() < 1e-12);
    }
}
