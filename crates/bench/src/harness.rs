//! A minimal benchmark harness (the container image carries no criterion,
//! so the bench targets are plain `harness = false` binaries built on
//! `std::time::Instant`).
//!
//! Protocol per benchmark: calibrate an iteration count that runs for
//! roughly [`TARGET_SAMPLE`], then take [`SAMPLES`] timed samples and
//! report the median, minimum, and mean time per iteration (median is the
//! headline — robust to scheduler noise). `CS_BENCH_FAST=1` cuts the
//! sample count for smoke runs in CI.
//!
//! Benchmarks register with a [`Report`], which collects every
//! [`Measurement`] (including derived rates such as events/s or cells/s)
//! and, when the binary is invoked with `--json <path>`, writes the whole
//! run as a flat JSON document — the per-PR performance trajectory the
//! `BENCH_*.json` files at the repo root record.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Wall-clock budget per timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Timed samples per benchmark.
const SAMPLES: usize = 11;

fn samples() -> usize {
    if std::env::var_os("CS_BENCH_FAST").is_some() {
        3
    } else {
        SAMPLES
    }
}

/// Formats a per-iteration duration with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The measured result of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

impl Measurement {
    /// Units per second for a benchmark whose iteration processes
    /// `units_per_iter` units (events, cells, bytes, …), based on the
    /// median sample.
    pub fn rate(&self, units_per_iter: f64) -> f64 {
        units_per_iter / (self.median_ns / 1e9)
    }
}

/// One collected benchmark: its measurement plus any derived rates.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark name (slash-separated path, stable across PRs).
    pub name: String,
    /// The timing measurement.
    pub measurement: Measurement,
    /// Derived rates as `(unit, value)` pairs, e.g. `("events/s", 2.4e7)`.
    pub rates: Vec<(String, f64)>,
}

/// Collects every measurement of one bench binary and exports JSON when
/// `--json <path>` is on the command line.
#[derive(Default)]
pub struct Report {
    records: Vec<Record>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Runs `f` under the measurement protocol, prints one report line,
    /// and records the measurement.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> Measurement {
        let m = bench(name, f);
        self.records.push(Record {
            name: name.to_string(),
            measurement: m,
            rates: Vec::new(),
        });
        m
    }

    /// Like [`Report::bench`], additionally deriving and printing a rate:
    /// one iteration processes `units_per_iter` units of `unit` (for
    /// example `100_000.0` and `"events/s"`). The rate rides on the same
    /// labelled report block and lands in the JSON export.
    pub fn bench_with_rate<F: FnMut()>(
        &mut self,
        name: &str,
        units_per_iter: f64,
        unit: &str,
        f: F,
    ) -> Measurement {
        let m = bench(name, f);
        let rate = m.rate(units_per_iter);
        println!("{name:<44} rate {rate:>14.0} {unit}");
        self.records.push(Record {
            name: name.to_string(),
            measurement: m,
            rates: vec![(unit.to_string(), rate)],
        });
        m
    }

    /// Attaches an additional derived rate to the most recent benchmark.
    ///
    /// # Panics
    ///
    /// Panics if no benchmark has been recorded yet.
    pub fn rate(&mut self, unit: &str, value: f64) {
        let rec = self.records.last_mut().expect("no benchmark recorded");
        println!("{:<44} rate {value:>14.0} {unit}", rec.name);
        rec.rates.push((unit.to_string(), value));
    }

    /// The records collected so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self, bench_name: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(bench_name)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!(
                "\"median_ns\": {}, ",
                json_num(r.measurement.median_ns)
            ));
            out.push_str(&format!("\"min_ns\": {}, ", json_num(r.measurement.min_ns)));
            out.push_str(&format!(
                "\"mean_ns\": {}, ",
                json_num(r.measurement.mean_ns)
            ));
            out.push_str(&format!(
                "\"iters_per_sample\": {}",
                r.measurement.iters_per_sample
            ));
            for (unit, value) in &r.rates {
                out.push_str(&format!(", {}: {}", json_str(unit), json_num(*value)));
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path` as JSON.
    pub fn write_json(&self, bench_name: &str, path: &std::path::Path) {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        f.write_all(self.to_json(bench_name).as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("  wrote {}", path.display());
    }

    /// Honors a `--json <path>` command-line option: writes the report
    /// there if present, does nothing otherwise. Call at the end of every
    /// bench `main`.
    pub fn finish(&self, bench_name: &str) {
        let opts = crate::Options::from_env();
        if let Some(path) = opts.get_opt::<String>("json") {
            self.write_json(bench_name, std::path::Path::new(&path));
        }
    }
}

/// JSON string literal (the names used here never need exotic escapes,
/// but quote and backslash are handled for safety).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats only (benchmarks cannot produce NaN/inf
/// from positive durations, but guard anyway).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Runs `f` under the measurement protocol and prints one report line.
///
/// Returns the measurement so callers can compute derived figures
/// (throughput, events/s).
pub fn bench<F: FnMut()>(name: &str, f: F) -> Measurement {
    bench_with_samples(name, samples(), f)
}

/// [`bench`] with an explicit sample count (the env-independent core;
/// also what the self-test uses so it never mutates process state).
fn bench_with_samples<F: FnMut()>(name: &str, samples: usize, mut f: F) -> Measurement {
    // Calibration: double the iteration count until one batch fills the
    // target sample duration.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        // Jump close to the target in one step once we have a signal.
        if elapsed > Duration::from_micros(100) {
            let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64();
            iters = ((iters as f64 * scale).ceil() as u64).clamp(iters + 1, iters * 128);
        } else {
            iters *= 16;
        }
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let m = Measurement {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        iters_per_sample: iters,
    };
    println!(
        "{name:<44} median {:>12}   min {:>12}   ({} iters/sample)",
        fmt_ns(m.median_ns),
        fmt_ns(m.min_ns),
        m.iters_per_sample
    );
    m
}

/// Like [`bench`], additionally reporting throughput for `bytes` of
/// payload processed per iteration.
pub fn bench_throughput<F: FnMut()>(name: &str, bytes: u64, f: F) -> Measurement {
    let m = bench(name, f);
    let gib_s = bytes as f64 / m.median_ns; // bytes/ns == GB/s
    println!("{:<44} throughput {gib_s:>10.3} GB/s", "");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with(" s"));
    }

    #[test]
    fn bench_measures_something() {
        let mut acc = 0u64;
        let m = bench_with_samples("selftest/noop", 3, || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
    }

    #[test]
    fn report_collects_and_serializes() {
        let mut report = Report::new();
        report.records.push(Record {
            name: "a/b".to_string(),
            measurement: Measurement {
                median_ns: 10.0,
                min_ns: 9.0,
                mean_ns: 10.5,
                iters_per_sample: 100,
            },
            rates: vec![("events/s".to_string(), 1e8)],
        });
        let json = report.to_json("selftest");
        assert!(json.contains("\"bench\": \"selftest\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"median_ns\": 10.0"));
        assert!(json.contains("\"events/s\": 100000000.0"));
    }

    #[test]
    fn measurement_rate() {
        let m = Measurement {
            median_ns: 1e9, // one second per iteration
            min_ns: 1e9,
            mean_ns: 1e9,
            iters_per_sample: 1,
        };
        assert_eq!(m.rate(100_000.0), 100_000.0);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_num(f64::NAN), "null");
    }
}
