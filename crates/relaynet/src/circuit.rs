//! Global circuit records and per-circuit experiment results.

use simcore::time::{SimDuration, SimTime};

use crate::ids::{CircId, OverlayId};
use crate::workload::CircuitWorkload;

/// Static description of one circuit (simulator bookkeeping; nodes learn
/// their role through the CREATE/EXTEND walk, not from this record).
/// Churn creates one record per incarnation — the workload's flows are
/// the durable identity, circuits come and go.
#[derive(Clone, Debug)]
pub struct CircuitInfo {
    /// Full path: `[client, relay…, server]`.
    pub path: Vec<OverlayId>,
    /// Payload bytes the client transfers (sum across streams).
    pub file_bytes: u64,
    /// When the build was kicked off, once started.
    pub started_at: Option<SimTime>,
    /// The resolved workload this incarnation carries.
    pub workload: CircuitWorkload,
    /// Which rebuild cycle this incarnation is (0 = original build).
    pub incarnation: u32,
    /// Whether this incarnation currently holds a +1 in the placement
    /// load ledger (set when placed, cleared exactly once at reclaim —
    /// the flag that lets epoch churn and the ledger verifier reason
    /// about torn-down-but-not-yet-rebuilt circuits).
    pub accounted: bool,
    /// Consecutive timeout-driven abandons charged against this flow
    /// lineage (carried across incarnations; reset when a rebuild
    /// completes its transfer or a parked lineage resumes). Drives the
    /// exponential backoff law and the retry cap.
    pub retries: u32,
}

/// Measured outcome of one circuit's transfer.
#[derive(Clone, Copy, Debug)]
pub struct CircuitResult {
    /// Which circuit.
    pub circ: CircId,
    /// When the client began building the circuit.
    pub started_at: Option<SimTime>,
    /// When the stream was established (CONNECTED consumed by the client).
    pub connected_at: Option<SimTime>,
    /// When the client sent the first DATA cell.
    pub first_data_at: Option<SimTime>,
    /// When the last DATA cell reached the server application.
    pub last_byte_at: Option<SimTime>,
    /// Whether the server consumed the trailing END (transfer complete).
    pub completed: bool,
    /// Payload bytes delivered to the server.
    pub bytes_delivered: u64,
    /// DATA cells delivered to the server.
    pub cells_delivered: u64,
    /// Payload-verification failures observed by the server (must be 0).
    pub payload_errors: u64,
}

impl CircuitResult {
    /// Time to last byte measured from the first DATA cell sent — the
    /// transfer-time metric used for the Figure 1c CDF (isolates transport
    /// ramp-up from circuit-build latency).
    pub fn transfer_time(&self) -> Option<SimDuration> {
        match (self.first_data_at, self.last_byte_at) {
            (Some(a), Some(b)) => b.checked_duration_since(a),
            _ => None,
        }
    }

    /// Time to last byte measured from the start of the circuit build —
    /// the full user-perceived download time.
    pub fn download_time(&self) -> Option<SimDuration> {
        match (self.started_at, self.last_byte_at) {
            (Some(a), Some(b)) => b.checked_duration_since(a),
            _ => None,
        }
    }

    /// Mean goodput over the transfer, bits per second.
    pub fn goodput_bps(&self) -> Option<f64> {
        let t = self.transfer_time()?;
        if t.is_zero() {
            return None;
        }
        Some(self.bytes_delivered as f64 * 8.0 / t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> CircuitResult {
        CircuitResult {
            circ: CircId(0),
            started_at: Some(SimTime::from_millis(10)),
            connected_at: Some(SimTime::from_millis(60)),
            first_data_at: Some(SimTime::from_millis(70)),
            last_byte_at: Some(SimTime::from_millis(570)),
            completed: true,
            bytes_delivered: 1_000_000,
            cells_delivered: 2_017,
            payload_errors: 0,
        }
    }

    #[test]
    fn transfer_and_download_times() {
        let r = result();
        assert_eq!(r.transfer_time(), Some(SimDuration::from_millis(500)));
        assert_eq!(r.download_time(), Some(SimDuration::from_millis(560)));
    }

    #[test]
    fn goodput() {
        let r = result();
        let g = r.goodput_bps().unwrap();
        assert!(
            (g - 16_000_000.0).abs() < 1.0,
            "8 Mbit / 0.5 s = 16 Mbit/s, got {g}"
        );
    }

    #[test]
    fn incomplete_result_yields_none() {
        let r = CircuitResult {
            circ: CircId(1),
            started_at: Some(SimTime::ZERO),
            connected_at: None,
            first_data_at: None,
            last_byte_at: None,
            completed: false,
            bytes_delivered: 0,
            cells_delivered: 0,
            payload_errors: 0,
        };
        assert_eq!(r.transfer_time(), None);
        assert_eq!(r.download_time(), None);
        assert_eq!(r.goodput_bps(), None);
    }
}
