//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the CircuitStart reproduction: a small, strictly
//! deterministic discrete-event simulator in the spirit of ns-3's core,
//! designed around the event-driven philosophy of smoltcp — simple,
//! robust, no clever type machinery.
//!
//! ## Pieces
//!
//! * [`time`] — fixed-point nanosecond [`SimTime`](time::SimTime) /
//!   [`SimDuration`](time::SimDuration).
//! * [`event`] — a *stable* (FIFO for equal timestamps) priority queue of
//!   pending events.
//! * [`sim`] — the [`Simulator`](sim::Simulator) event loop and the
//!   [`World`](sim::World) trait implemented by models.
//! * [`rng`] — seeded, labelled-stream random numbers so experiments are
//!   reproducible bit-for-bit.
//! * [`exec`] — the runtime seam: an [`Executor`](exec::Executor) runs
//!   independent deterministic worlds either sequentially (the oracle)
//!   or across a work-stealing thread pool, with outputs re-ordered so
//!   the choice is unobservable.
//! * [`chan`] — bounded, instrumented channels (SPSC/MPSC) the threaded
//!   runtime communicates through; a full channel blocks the producer,
//!   the analogue of link serialization.
//!
//! ## Design rules
//!
//! 1. **Single ownership root.** All model state lives in one `World`
//!    value; events carry ids, not references.
//! 2. **Stable ordering.** Same-timestamp events fire in schedule order.
//! 3. **No wall clock, no threads, no global state — inside one world.**
//!    The event loop is strictly single-threaded: two runs with the same
//!    seed produce identical traces, byte for byte. Parallelism lives
//!    only *above* the loop ([`exec`]), across independent worlds, and
//!    is differentially tested to leave every output bit unchanged.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! struct Counter { fired: u32 }
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(SimDuration::from_micros(100), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter { fired: 0 });
//! sim.schedule_at(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_micros(200));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chan;
pub mod event;
pub mod exec;
pub mod rng;
pub mod sim;
pub mod time;

/// Convenience re-exports of the items almost every user needs.
pub mod prelude {
    pub use crate::event::{EventId, QueueKind};
    pub use crate::exec::{DeterministicExecutor, Executor, ThreadedExecutor};
    pub use crate::rng::SimRng;
    pub use crate::sim::{Context, RunLimits, RunReport, Simulator, StopReason, World};
    pub use crate::time::{SimDuration, SimTime};
}

pub use chan::{ChannelStats, Receiver, RecvError, SendError, Sender, TryRecvError};
pub use event::{CalendarQueue, EventId, EventQueue, HeapQueue, PendingEvents, QueueKind};
pub use exec::{execute_typed, DeterministicExecutor, Executor, ThreadedExecutor};
pub use rng::SimRng;
pub use sim::{Context, RunLimits, RunReport, Simulator, StopReason, World};
pub use time::{SimDuration, SimTime};
