//! Per-link circuit scheduling.
//!
//! Tor relays do not serve their outgoing connection first-come-first-
//! served across circuits: they pick the next *circuit* to send from
//! (classically round-robin, later EWMA-weighted). This matters for
//! congestion experiments — under FIFO, a sender that overshoots its
//! window grabs queue positions and is rewarded with earlier service;
//! under round-robin, overshooting only delays the sender's own cells.
//! BackTap inherits the round-robin model, so this reproduction does too.
//!
//! Mechanically: each overlay node hands its egress link **one frame at a
//! time**. While the link serializes, further frames wait here, in
//! per-circuit queues; on `TxComplete` the overlay pulls the next frame —
//! feedback frames first (they are the transport's control signal, like
//! ACKs), then data cells round-robin across circuits.
//!
//! The per-circuit queues live in a dense slab (the PR 2 pattern the
//! rest of the hot path uses): a `Vec` of slots indexed by a small
//! integer, a LIFO free list recycling vacated slots — and their
//! `VecDeque` buffers with them — and the rotation ring carrying slot
//! indices. A small `BTreeMap` maps the circuit id to its slot, so the
//! per-cell lookup stays `O(log active)` (as it was before the slab)
//! while the queue-buffer allocation that used to happen on every
//! circuit activation is gone. The rotation order is bit-identical to
//! the historical map-of-queues implementation — the queue-equivalence
//! fingerprints guard the swap.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::CircId;
use crate::wire::WireFrame;

/// Slab sentinel: the slot holds no circuit.
const VACANT: CircId = CircId(u32::MAX);

/// One slab slot: a circuit with queued cells (or a vacated slot whose
/// queue allocation is waiting to be reused).
struct CircSlot {
    circ: CircId,
    queue: VecDeque<WireFrame>,
}

/// Round-robin frame scheduler for one egress link (see module docs).
#[derive(Default)]
pub struct LinkScheduler {
    /// Control frames (feedback): strict priority, FIFO among themselves.
    feedback: VecDeque<WireFrame>,
    /// Dense slab of per-circuit queues; `rotation` and the free list
    /// hold indices into it.
    slots: Vec<CircSlot>,
    /// Active circuit → slab slot (maintained on activation/vacation).
    index: BTreeMap<CircId, u32>,
    /// Vacated slot indices awaiting reuse (LIFO for determinism).
    free: Vec<u32>,
    /// Rotation order over slots with queued cells.
    rotation: VecDeque<u32>,
    /// Telemetry: largest number of frames ever waiting here.
    hwm: usize,
    /// Current number of frames waiting.
    len: usize,
}

impl LinkScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> LinkScheduler {
        LinkScheduler::default()
    }

    /// Queues a feedback frame (strict priority over data).
    pub fn push_feedback(&mut self, frame: WireFrame) {
        self.feedback.push_back(frame);
        self.bump();
    }

    /// Queues a data cell on `circ`'s queue, activating the circuit in
    /// the rotation if it had nothing queued.
    pub fn push_cell(&mut self, circ: CircId, frame: WireFrame) {
        debug_assert!(circ != VACANT, "cannot schedule the vacant sentinel");
        let slot = match self.index.get(&circ) {
            Some(&slot) => slot,
            None => {
                let slot = match self.free.pop() {
                    Some(slot) => {
                        let s = &mut self.slots[slot as usize];
                        debug_assert!(s.circ == VACANT && s.queue.is_empty());
                        s.circ = circ;
                        slot
                    }
                    None => {
                        self.slots.push(CircSlot {
                            circ,
                            queue: VecDeque::new(),
                        });
                        u32::try_from(self.slots.len() - 1).expect("too many scheduled circuits")
                    }
                };
                self.index.insert(circ, slot);
                self.rotation.push_back(slot);
                slot
            }
        };
        debug_assert_eq!(self.slots[slot as usize].circ, circ, "index out of sync");
        self.slots[slot as usize].queue.push_back(frame);
        self.bump();
    }

    /// Picks the next frame: feedback first, then the next circuit in the
    /// rotation (which moves to the back if it still has cells).
    pub fn pop(&mut self) -> Option<WireFrame> {
        if let Some(fb) = self.feedback.pop_front() {
            self.len -= 1;
            return Some(fb);
        }
        let slot = self.rotation.pop_front()?;
        let s = &mut self.slots[slot as usize];
        let frame = s.queue.pop_front().expect("queued circuits are non-empty");
        if s.queue.is_empty() {
            let circ = std::mem::replace(&mut s.circ, VACANT);
            self.index.remove(&circ);
            self.free.push(slot);
        } else {
            self.rotation.push_back(slot);
        }
        self.len -= 1;
        Some(frame)
    }

    /// Removes **every** queued data cell of `circ`, returning the frames
    /// in queue order, and drops the circuit from the rotation. Used at
    /// teardown: cells of a closed circuit must not occupy link time just
    /// to be discarded at the receiver — the caller pays their owed
    /// feedback and reclaims their payload buffers instead. Feedback
    /// frames are never drained (they are control traffic for the
    /// *neighbour's* transport and must flow regardless).
    pub fn drain_circuit(&mut self, circ: CircId) -> VecDeque<WireFrame> {
        let Some(slot) = self.index.remove(&circ) else {
            return VecDeque::new();
        };
        let s = &mut self.slots[slot as usize];
        s.circ = VACANT;
        let drained = std::mem::take(&mut s.queue);
        self.free.push(slot);
        self.rotation.retain(|&r| r != slot);
        self.len -= drained.len();
        drained
    }

    /// Frames currently waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest backlog ever observed (telemetry).
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Number of distinct circuits currently queued.
    pub fn queued_circuits(&self) -> usize {
        self.rotation.len()
    }

    /// Slab capacity: live plus vacated slots. Stays flat across churn
    /// once the free list primes (telemetry for the slab-flat property
    /// tests).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    fn bump(&mut self) {
        self.len += 1;
        self.hwm = self.hwm.max(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::net::Net;
    use torcell::cell::{Cell, Feedback};
    use torcell::ids::CircuitId;

    fn frames() -> (WireFrame, WireFrame) {
        let mut net: Net<WireFrame> = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let cell = WireFrame {
            src: a,
            dst: b,
            payload: crate::wire::FramePayload::Cell {
                cell: Cell::destroy(CircuitId(1), 0),
                hop_seq: 0,
            },
            confirm: None,
        };
        let fb = WireFrame {
            src: a,
            dst: b,
            payload: crate::wire::FramePayload::Feedback(Feedback {
                circ: CircuitId(1),
                seq: 0,
            }),
            confirm: None,
        };
        (cell, fb)
    }

    fn tag_of(frame: &WireFrame) -> u64 {
        match &frame.payload {
            crate::wire::FramePayload::Cell { hop_seq, .. } => *hop_seq,
            crate::wire::FramePayload::Feedback(fb) => 1_000 + fb.seq,
        }
    }

    fn cell_with_seq(seq: u64) -> WireFrame {
        let (mut cell, _) = frames();
        if let crate::wire::FramePayload::Cell { hop_seq, .. } = &mut cell.payload {
            *hop_seq = seq;
        }
        cell
    }

    #[test]
    fn empty_scheduler() {
        let mut s = LinkScheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.pop().is_none());
        assert_eq!(s.high_water_mark(), 0);
    }

    #[test]
    fn feedback_has_strict_priority() {
        let (_, fb) = frames();
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_feedback(fb);
        assert_eq!(tag_of(&s.pop().unwrap()), 1_000, "feedback first");
        assert_eq!(tag_of(&s.pop().unwrap()), 1);
    }

    #[test]
    fn round_robin_across_circuits() {
        let mut s = LinkScheduler::new();
        // Circuit 0 queues three cells before circuit 1 queues two.
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_cell(CircId(0), cell_with_seq(2));
        s.push_cell(CircId(0), cell_with_seq(3));
        s.push_cell(CircId(1), cell_with_seq(11));
        s.push_cell(CircId(1), cell_with_seq(12));
        assert_eq!(s.queued_circuits(), 2);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|f| tag_of(&f))).collect();
        // FIFO would give 1,2,3,11,12; round-robin interleaves.
        assert_eq!(order, vec![1, 11, 2, 12, 3]);
    }

    #[test]
    fn per_circuit_order_is_fifo() {
        let mut s = LinkScheduler::new();
        for seq in 1..=4 {
            s.push_cell(CircId(7), cell_with_seq(seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|f| tag_of(&f))).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn rotation_survives_emptying_and_refilling() {
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        assert_eq!(tag_of(&s.pop().unwrap()), 1);
        assert!(s.is_empty());
        s.push_cell(CircId(0), cell_with_seq(2));
        s.push_cell(CircId(1), cell_with_seq(11));
        assert_eq!(tag_of(&s.pop().unwrap()), 2);
        assert_eq!(tag_of(&s.pop().unwrap()), 11);
    }

    #[test]
    fn high_water_mark_counts_all_classes() {
        let (_, fb) = frames();
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_feedback(fb);
        s.push_cell(CircId(1), cell_with_seq(2));
        assert_eq!(s.high_water_mark(), 3);
        s.pop();
        s.pop();
        s.pop();
        assert_eq!(s.high_water_mark(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn slab_slots_are_reused_across_activations() {
        let mut s = LinkScheduler::new();
        // Three circuits activate and fully drain, several times over:
        // the slab must stop growing after the first wave.
        for round in 0..5u64 {
            for c in 0..3u32 {
                s.push_cell(CircId(c + round as u32 * 100), cell_with_seq(round * 10));
            }
            while s.pop().is_some() {}
        }
        assert!(s.is_empty());
        assert_eq!(s.slot_capacity(), 3, "slab grew under churn");
        assert_eq!(s.queued_circuits(), 0);
    }

    #[test]
    fn drain_circuit_removes_only_that_circuit() {
        let mut s = LinkScheduler::new();
        let (_, fb) = frames();
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_cell(CircId(1), cell_with_seq(11));
        s.push_cell(CircId(0), cell_with_seq(2));
        s.push_feedback(fb);
        let drained = s.drain_circuit(CircId(0));
        assert_eq!(
            drained.iter().map(tag_of).collect::<Vec<_>>(),
            vec![1, 2],
            "drain returns the circuit's frames in queue order"
        );
        assert_eq!(s.len(), 2, "the other circuit and the feedback remain");
        assert_eq!(s.queued_circuits(), 1);
        // Feedback still has priority, then the surviving circuit.
        assert_eq!(tag_of(&s.pop().unwrap()), 1_000);
        assert_eq!(tag_of(&s.pop().unwrap()), 11);
        assert!(s.is_empty());
        // Draining an unknown circuit is a no-op.
        assert!(s.drain_circuit(CircId(42)).is_empty());
    }

    #[test]
    fn drain_then_requeue_reuses_the_slot() {
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(3), cell_with_seq(1));
        let _ = s.drain_circuit(CircId(3));
        s.push_cell(CircId(4), cell_with_seq(2));
        assert_eq!(s.slot_capacity(), 1, "vacated slot must be reused");
        assert_eq!(tag_of(&s.pop().unwrap()), 2);
    }
}
