//! The experiment harness: runs the paper's scenarios end to end and
//! produces the exact series the figures plot.

use backtap::config::CcConfig;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::builder::{PathScenario, StarScenario};
use relaynet::circuit::CircuitResult;
use relaynet::network::{TorNetwork, WorldConfig};
use simcore::sim::{RunLimits, Simulator, StopReason};
use simcore::time::SimDuration;
use simstats::cdf::Cdf;
use simstats::export::Table;
use simstats::sketch::QuantileSketch;
use simstats::timeseries::TimeSeries;
use torcell::cell::CELL_LEN;

use crate::algorithm::Algorithm;
use crate::optimal::PathModel;

/// Hard safety limits for experiment runs; a healthy scenario quiesces
/// long before hitting either.
const MAX_EVENTS: u64 = 2_000_000_000;
const MAX_SIM_TIME_S: u64 = 3_600;

/// Runs a built overlay simulation until natural quiescence.
///
/// # Panics
///
/// Panics if the simulation hits the safety limits — that means a
/// protocol deadlock or runaway loop, which must never be silently
/// reported as a result.
pub fn run_to_completion(sim: &mut Simulator<TorNetwork>) {
    let report = sim.run_with_limits(RunLimits {
        until: Some(simcore::time::SimTime::from_secs(MAX_SIM_TIME_S)),
        max_events: Some(MAX_EVENTS),
    });
    assert_eq!(
        report.reason,
        StopReason::QueueEmpty,
        "simulation did not quiesce: {report:?}"
    );
}

// ---------------------------------------------------------------------
// Figure 1 (upper): source cwnd traces
// ---------------------------------------------------------------------

/// Configuration of a single-circuit cwnd-trace run (Figure 1a/1b).
#[derive(Clone, Debug)]
pub struct TraceScenarioConfig {
    /// Number of relays on the circuit (paper: 3).
    pub relays: usize,
    /// Rate of all non-bottleneck links.
    pub fast: Bandwidth,
    /// Rate of the bottleneck link.
    pub bottleneck: Bandwidth,
    /// Which link is the bottleneck: `0` = the client's own access link,
    /// `1` = one hop away (Figure 1a), `relays` = the exit→server link
    /// (Figure 1b's "distance 3" for a 3-relay circuit).
    pub bottleneck_link: usize,
    /// One-way propagation delay of every link.
    pub hop_delay: SimDuration,
    /// Transfer size.
    pub file_bytes: u64,
    /// The sender algorithm under test.
    pub algorithm: Algorithm,
    /// Congestion-control parameters.
    pub cc: CcConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceScenarioConfig {
    fn default() -> Self {
        TraceScenarioConfig {
            relays: 3,
            fast: Bandwidth::from_mbps(100),
            bottleneck: Bandwidth::from_mbps(20),
            bottleneck_link: 1,
            hop_delay: SimDuration::from_millis(5),
            file_bytes: 1 << 20,
            algorithm: Algorithm::CircuitStart,
            cc: CcConfig::default(),
            seed: 1,
        }
    }
}

impl TraceScenarioConfig {
    /// The per-hop link configurations this scenario implies.
    pub fn hops(&self) -> Vec<LinkConfig> {
        let n = self.relays + 1;
        assert!(
            self.bottleneck_link < n,
            "bottleneck link {} out of range ({} links)",
            self.bottleneck_link,
            n
        );
        (0..n)
            .map(|i| {
                let rate = if i == self.bottleneck_link {
                    self.bottleneck
                } else {
                    self.fast
                };
                LinkConfig::new(rate, self.hop_delay)
            })
            .collect()
    }

    /// The analytical model of this scenario's path.
    pub fn model(&self) -> PathModel {
        PathModel::from_hops(&self.hops())
    }
}

/// Outcome of a trace run: the source's window over time plus the model
/// optimum — one panel of the paper's Figure 1 (upper).
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Algorithm identifier.
    pub algorithm_key: String,
    /// Bottleneck link index ("distance").
    pub bottleneck_link: usize,
    /// `(time ms, cwnd cells)` — every change of the source window.
    pub cwnd_cells: Vec<(f64, u32)>,
    /// The model-optimal source window, cells.
    pub optimal_cells: f64,
    /// Transfer outcome.
    pub result: CircuitResult,
}

impl TraceReport {
    /// The trace in the paper's units: `(ms, KiB)`.
    pub fn cwnd_kib_series(&self) -> Vec<(f64, f64)> {
        self.cwnd_cells
            .iter()
            .map(|&(t, c)| (t, f64::from(c) * CELL_LEN as f64 / 1024.0))
            .collect()
    }

    /// The model optimum in KiB.
    pub fn optimal_kib(&self) -> f64 {
        self.optimal_cells * CELL_LEN as f64 / 1024.0
    }

    /// Largest window reached (the overshoot peak), cells.
    pub fn peak_cwnd_cells(&self) -> u32 {
        self.cwnd_cells.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// The window as a step-function time series (seconds / cells).
    pub fn as_timeseries(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(ms, c) in &self.cwnd_cells {
            ts.push(ms / 1e3, f64::from(c));
        }
        ts
    }

    /// First time (ms) after which the window stays within
    /// `±tolerance·optimal` of the model optimum, if it ever settles.
    pub fn settling_time_ms(&self, tolerance: f64) -> Option<f64> {
        let lo = self.optimal_cells * (1.0 - tolerance);
        let hi = self.optimal_cells * (1.0 + tolerance);
        self.as_timeseries().settling_time(lo, hi).map(|s| s * 1e3)
    }

    /// Export table: `time_ms, cwnd_kib, optimal_kib` (gnuplot-ready).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["time_ms", "cwnd_kib", "optimal_kib"]);
        let opt = self.optimal_kib();
        for (ms, kib) in self.cwnd_kib_series() {
            t.push_row(&[ms, kib, opt]);
        }
        t
    }
}

/// Runs one cwnd-trace scenario (one curve of Figure 1a/1b).
pub fn run_trace(cfg: &TraceScenarioConfig) -> TraceReport {
    let hops = cfg.hops();
    let model = PathModel::from_hops(&hops);
    let scenario = PathScenario {
        hops,
        file_bytes: cfg.file_bytes,
        world: WorldConfig {
            verify_payload: true,
            trace_client_cwnd: true,
        },
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(cfg.algorithm.factory(cfg.cc), cfg.seed);
    run_to_completion(&mut sim);
    let world = sim.world();
    assert_eq!(
        world.stats().protocol_errors,
        0,
        "protocol errors during trace run"
    );
    let result = world.result_of(handles.circ);
    assert!(result.completed, "trace transfer did not complete");
    assert_eq!(result.payload_errors, 0);
    let trace = world
        .source_cwnd_trace(handles.circ)
        .expect("tracing enabled")
        .iter()
        .map(|&(t, c)| (t.as_millis_f64(), c))
        .collect();
    TraceReport {
        algorithm_key: cfg.algorithm.key(),
        bottleneck_link: cfg.bottleneck_link,
        cwnd_cells: trace,
        optimal_cells: model.optimal_source_cwnd_cells(),
        result,
    }
}

// ---------------------------------------------------------------------
// Figure 1 (lower): time-to-last-byte CDFs
// ---------------------------------------------------------------------

/// Configuration of the concurrent-circuits CDF experiment (Figure 1c).
#[derive(Clone, Debug)]
pub struct CdfScenarioConfig {
    /// The star network and workload.
    pub star: StarScenario,
    /// Algorithms to compare (run over identical seeds/topologies).
    pub algorithms: Vec<Algorithm>,
    /// Congestion-control parameters.
    pub cc: CcConfig,
    /// Master seed of the first repetition.
    pub seed: u64,
    /// Repetitions; TTLB samples aggregate across them.
    pub repetitions: u32,
}

/// One algorithm's aggregated TTLB distribution.
#[derive(Clone, Debug)]
pub struct CdfSeries {
    /// Algorithm identifier.
    pub algorithm_key: String,
    /// Transfer times, seconds, across all circuits and repetitions.
    pub cdf: Cdf,
    /// The streaming twin of `cdf`: the same samples folded into a
    /// fixed-size sketch, so examples can print sketch-vs-exact
    /// quantiles side by side (DESIGN.md §13).
    pub sketch: QuantileSketch,
    /// Circuits that failed to complete (must be 0).
    pub incomplete: u64,
}

/// Outcome of the CDF experiment.
#[derive(Clone, Debug)]
pub struct CdfReport {
    /// One series per algorithm, in the order configured.
    pub series: Vec<CdfSeries>,
}

impl CdfReport {
    /// The series of a given algorithm key.
    pub fn get(&self, key: &str) -> Option<&CdfSeries> {
        self.series.iter().find(|s| s.algorithm_key == key)
    }

    /// Export table: `ttlb_s, F(x)` pairs for every algorithm
    /// (column pairs, gnuplot-ready; rows padded per series length).
    pub fn to_table(&self, series_index: usize) -> Table {
        let s = &self.series[series_index];
        Table::from_pairs("ttlb_s", "cum_fraction", &s.cdf.points())
    }
}

/// Runs the CDF experiment: every algorithm over the identical set of
/// topologies/workloads (paired seeds).
pub fn run_cdf(cfg: &CdfScenarioConfig) -> CdfReport {
    assert!(!cfg.algorithms.is_empty(), "need at least one algorithm");
    assert!(cfg.repetitions >= 1, "need at least one repetition");
    let mut series = Vec::with_capacity(cfg.algorithms.len());
    for algo in &cfg.algorithms {
        let mut samples: Vec<f64> = Vec::new();
        let mut sketch = QuantileSketch::default();
        let mut incomplete = 0u64;
        for rep in 0..cfg.repetitions {
            let seed = cfg.seed.wrapping_add(u64::from(rep));
            let (mut sim, circuits) = cfg.star.build(algo.factory(cfg.cc), seed);
            run_to_completion(&mut sim);
            let world = sim.world();
            assert_eq!(
                world.stats().protocol_errors,
                0,
                "protocol errors in CDF run ({})",
                algo.key()
            );
            for c in circuits {
                let r = world.result_of(c);
                match (r.completed, r.transfer_time()) {
                    (true, Some(t)) => {
                        let secs = t.as_secs_f64();
                        samples.push(secs);
                        sketch.record(secs);
                    }
                    _ => incomplete += 1,
                }
            }
        }
        series.push(CdfSeries {
            algorithm_key: algo.key(),
            cdf: Cdf::from_samples(samples).expect("at least one completed circuit"),
            sketch,
            incomplete,
        });
    }
    CdfReport { series }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, assertion-friendly downscale of the Figure 1a geometry.
    fn small_trace(algorithm: Algorithm) -> TraceScenarioConfig {
        TraceScenarioConfig {
            file_bytes: 200_000,
            algorithm,
            ..Default::default()
        }
    }

    #[test]
    fn trace_starts_at_init_cwnd_and_completes() {
        let report = run_trace(&small_trace(Algorithm::CircuitStart));
        assert_eq!(report.cwnd_cells[0].1, 2, "initial window is 2 cells");
        assert!(report.result.completed);
        assert!(report.peak_cwnd_cells() >= 4, "some ramping must happen");
        assert!(report.optimal_cells > 10.0);
    }

    #[test]
    fn circuitstart_compensates_into_the_optimal_band() {
        let report = run_trace(&small_trace(Algorithm::CircuitStart));
        // The window must overshoot above the optimum during doubling …
        assert!(
            f64::from(report.peak_cwnd_cells()) > report.optimal_cells,
            "peak {} should exceed optimal {}",
            report.peak_cwnd_cells(),
            report.optimal_cells
        );
        // … and then settle within ±35% of the model optimum.
        let settle = report.settling_time_ms(0.35);
        assert!(
            settle.is_some(),
            "CircuitStart must settle near the optimum; trace: {:?}",
            report.cwnd_cells
        );
    }

    #[test]
    fn trace_units_are_consistent() {
        let report = run_trace(&small_trace(Algorithm::CircuitStart));
        let kib = report.cwnd_kib_series();
        assert_eq!(kib.len(), report.cwnd_cells.len());
        // 2 cells = 1 KiB.
        assert!((kib[0].1 - 1.0).abs() < 1e-9);
        let table = report.to_table();
        assert_eq!(table.headers(), &["time_ms", "cwnd_kib", "optimal_kib"]);
        assert_eq!(table.row_count(), kib.len());
    }

    #[test]
    fn classic_baseline_also_completes() {
        let report = run_trace(&small_trace(Algorithm::ClassicBacktap));
        assert!(report.result.completed);
        assert_eq!(report.algorithm_key, "classic");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bottleneck_out_of_range_rejected() {
        let cfg = TraceScenarioConfig {
            bottleneck_link: 9,
            ..Default::default()
        };
        let _ = cfg.hops();
    }

    #[test]
    fn cdf_experiment_pairs_algorithms() {
        let cfg = CdfScenarioConfig {
            star: StarScenario {
                circuits: 6,
                file_bytes: 60_000,
                directory: relaynet::directory::DirectoryConfig {
                    relays: 8,
                    bandwidth_mbps: (20.0, 60.0),
                    delay_ms: (3.0, 8.0),
                },
                ..Default::default()
            },
            algorithms: vec![Algorithm::CircuitStart, Algorithm::ClassicBacktap],
            cc: CcConfig::default(),
            seed: 5,
            repetitions: 2,
        };
        let report = run_cdf(&cfg);
        assert_eq!(report.series.len(), 2);
        for s in &report.series {
            assert_eq!(s.cdf.len(), 12, "6 circuits × 2 reps");
            assert_eq!(s.incomplete, 0);
            // The streaming twin saw exactly the same samples.
            assert_eq!(s.sketch.len(), 12);
            for q in [0.5, 0.9, 0.99] {
                let exact = s.cdf.quantile(q);
                assert!(
                    (s.sketch.quantile(q) - exact).abs() <= s.sketch.alpha() * exact,
                    "sketch q={q} outside the error bound for {}",
                    s.algorithm_key
                );
            }
        }
        assert!(report.get("circuitstart").is_some());
        assert!(report.get("classic").is_some());
        assert!(report.get("nope").is_none());
        let t = report.to_table(0);
        assert_eq!(t.row_count(), 12);
    }
}
