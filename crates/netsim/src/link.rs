//! Point-to-point link internals: configuration, queueing, statistics.
//!
//! A link is **simplex** (one direction); duplex connectivity is modelled
//! as two independent links. Each link owns a drop-tail egress queue, a
//! single "transmitter" slot (the frame currently being serialized), and a
//! FIFO of frames in flight across the propagation delay:
//!
//! ```text
//!   send() ──► [egress queue] ──► (serializing, rate-limited)
//!                                        │ TxComplete
//!                                        ▼
//!                              [in flight, delay d] ──► Deliver
//! ```
//!
//! Store-and-forward: a frame exists at exactly one place at a time, and
//! the receiver sees it only after serialization *and* propagation.

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};

use crate::bandwidth::Bandwidth;

/// Identifies a link within one [`crate::net::Net`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Egress-queue capacity policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueLimit {
    /// No limit; the queue grows as needed. The hop-by-hop transport keeps
    /// queues bounded by flow control, and tests assert zero drops, so this
    /// is the default for protocol experiments.
    #[default]
    Unbounded,
    /// At most this many frames may wait (the serializing frame does not
    /// count).
    Frames(usize),
    /// At most this many bytes may wait.
    Bytes(u64),
}

/// Static link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Serialization rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Egress queue capacity.
    pub queue: QueueLimit,
}

impl LinkConfig {
    /// Convenience constructor with an unbounded queue.
    pub fn new(rate: Bandwidth, delay: SimDuration) -> Self {
        LinkConfig {
            rate,
            delay,
            queue: QueueLimit::Unbounded,
        }
    }
}

/// Per-link counters, updated by [`crate::net::Net`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Frames handed to `send` that were accepted (queued or transmitted).
    pub frames_accepted: u64,
    /// Frames rejected by the queue limit.
    pub frames_dropped: u64,
    /// Bytes rejected by the queue limit.
    pub bytes_dropped: u64,
    /// Frames whose serialization completed.
    pub frames_sent: u64,
    /// Bytes whose serialization completed.
    pub bytes_sent: u64,
    /// Frames delivered to the far end.
    pub frames_delivered: u64,
    /// Greatest number of frames ever waiting in the egress queue.
    pub queue_hwm_frames: usize,
    /// Greatest number of bytes ever waiting in the egress queue.
    pub queue_hwm_bytes: u64,
    /// Total time the transmitter was busy, for utilization.
    pub busy_time: SimDuration,
    /// Sum of per-frame queue waiting times (enqueue → serialization
    /// start), for mean queue-delay telemetry.
    pub queue_wait_total: SimDuration,
    /// Largest single queue waiting time.
    pub queue_wait_max: SimDuration,
}

impl LinkStats {
    /// Mean queueing delay over all frames that started serialization.
    pub fn mean_queue_wait(&self) -> SimDuration {
        if self.frames_sent == 0 {
            SimDuration::ZERO
        } else {
            self.queue_wait_total / self.frames_sent
        }
    }

    /// Fraction of `[0, now]` the transmitter spent serializing.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy_time.as_secs_f64() / now.as_secs_f64()
        }
    }
}

/// A frame waiting in the egress queue, stamped with its arrival time.
pub(crate) struct Queued<F> {
    pub frame: F,
    pub enqueued_at: SimTime,
}

/// Full runtime state of one link.
pub(crate) struct LinkState<F> {
    pub cfg: LinkConfig,
    /// Frames waiting for the transmitter.
    pub queue: VecDeque<Queued<F>>,
    /// Bytes currently waiting in `queue`.
    pub queue_bytes: u64,
    /// The frame being serialized right now, if any.
    pub transmitting: Option<F>,
    /// Frames that finished serialization and are propagating. Constant
    /// per-link delay + FIFO serialization ⇒ delivery order == push order.
    pub in_flight: VecDeque<F>,
    pub stats: LinkStats,
}

impl<F> LinkState<F> {
    pub fn new(cfg: LinkConfig) -> Self {
        LinkState {
            cfg,
            queue: VecDeque::new(),
            queue_bytes: 0,
            transmitting: None,
            in_flight: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// Whether the egress queue can accept another `bytes`-sized frame.
    pub fn queue_has_room(&self, bytes: u32) -> bool {
        match self.cfg.queue {
            QueueLimit::Unbounded => true,
            QueueLimit::Frames(max) => self.queue.len() < max,
            QueueLimit::Bytes(max) => self.queue_bytes + u64::from(bytes) <= max,
        }
    }

    /// Number of frames waiting (not counting the one serializing).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Bytes waiting (not counting the one serializing).
    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes
    }

    /// Whether the transmitter slot is occupied.
    pub fn is_busy(&self) -> bool {
        self.transmitting.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_limit_frames() {
        let mut st: LinkState<u8> = LinkState::new(LinkConfig {
            rate: Bandwidth::from_mbps(1),
            delay: SimDuration::ZERO,
            queue: QueueLimit::Frames(2),
        });
        assert!(st.queue_has_room(100));
        st.queue.push_back(Queued {
            frame: 1,
            enqueued_at: SimTime::ZERO,
        });
        st.queue.push_back(Queued {
            frame: 2,
            enqueued_at: SimTime::ZERO,
        });
        assert!(!st.queue_has_room(100));
    }

    #[test]
    fn queue_limit_bytes() {
        let mut st: LinkState<u8> = LinkState::new(LinkConfig {
            rate: Bandwidth::from_mbps(1),
            delay: SimDuration::ZERO,
            queue: QueueLimit::Bytes(1000),
        });
        st.queue_bytes = 600;
        assert!(st.queue_has_room(400));
        assert!(!st.queue_has_room(401));
    }

    #[test]
    fn unbounded_always_has_room() {
        let st: LinkState<u8> =
            LinkState::new(LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO));
        assert!(st.queue_has_room(u32::MAX));
    }

    #[test]
    fn stats_mean_queue_wait() {
        let mut s = LinkStats::default();
        assert_eq!(s.mean_queue_wait(), SimDuration::ZERO);
        s.frames_sent = 4;
        s.queue_wait_total = SimDuration::from_millis(8);
        assert_eq!(s.mean_queue_wait(), SimDuration::from_millis(2));
    }

    #[test]
    fn stats_utilization() {
        let mut s = LinkStats::default();
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
        s.busy_time = SimDuration::from_millis(250);
        assert!((s.utilization(SimTime::from_secs(1)) - 0.25).abs() < 1e-12);
    }
}
