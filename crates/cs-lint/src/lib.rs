//! `cs-lint` — the workspace's determinism-and-invariant lint
//! (DESIGN.md §14).
//!
//! Every guarantee this reproduction makes — bit-exact
//! `WorldFingerprint` equality across queue/sampler/executor seams,
//! merge-order-invariant telemetry, derivation-rooted RNG streams — is
//! otherwise enforced only at runtime by differential suites, which
//! means a nondeterminism leak survives until a test happens to take
//! the path that exposes it (PR 8's f64 merge-sum drift did exactly
//! that). This crate catches the known hazard classes at the *source*
//! level instead:
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `nondeterministic-iteration` | no unseeded `HashMap`/`HashSet` order in fingerprint-visible crates |
//! | `wall-clock` | results are a function of the seed, not the host clock |
//! | `stray-threads` | all parallelism goes through the `simcore::exec` seam |
//! | `float-accumulation-in-merge` | shard merges are bit-exact in any order |
//! | `rng-discipline` | every stream derives from the master seed in a builder |
//! | `no-println-in-lib` | library telemetry goes through `simstats` |
//! | `no-bare-unwrap-in-lib` | library panics name their invariant |
//! | `transitive-wall-clock` | no helper-laundered clock reads (call-graph closure) |
//! | `transitive-threads` | no helper-laundered thread spawns (call-graph closure) |
//! | `rng-stream-collision` | no two sites share one (parent, label) RNG stream |
//! | `exhaustive-destructure` | merge/export/fingerprint fns bind every struct field |
//!
//! The first seven are token-local. The last four are *semantic*: they
//! run on an item-level parse ([`items`]) and a conservative workspace
//! call graph ([`graph`]) built over the same token stream, so a
//! wall-clock read hidden behind two layers of helpers in another crate
//! still fires at the call site that reaches it. The engine also
//! reports two rules of its own that no annotation can silence:
//! `malformed-annotation` (an unparseable `cs-lint:` comment) and
//! `unused-allow` (a suppression whose rule no longer fires on its
//! bound line — annotation debt is pruned, never accumulated).
//!
//! Violations are suppressed one line at a time with an annotation on
//! the preceding line:
//!
//! ```text
//! // cs-lint: allow(nondeterministic-iteration, reason = "membership-only, never iterated")
//! ```
//!
//! The crate is **dependency-free** (hand-rolled lexer, same discipline
//! as the local xoshiro RNG and bench harness) so the CI gate never
//! depends on code it cannot itself vouch for.

pub mod engine;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
