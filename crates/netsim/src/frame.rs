//! The unit of transmission.

/// Anything that can be sent over a [`crate::net::Net`] link.
///
/// The network model only needs to know how many bytes a frame occupies on
/// the wire; higher layers (the Tor overlay) define the actual frame types
/// and routing.
pub trait Frame {
    /// Size on the wire in bytes, **including all headers**.
    fn wire_size(&self) -> u32;
}

/// A minimal frame carrying only its size — handy for unit tests and
/// raw-throughput benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RawFrame {
    /// Size on the wire in bytes.
    pub bytes: u32,
    /// Free-form tag for test assertions.
    pub tag: u64,
}

impl Frame for RawFrame {
    fn wire_size(&self) -> u32 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_frame_reports_size() {
        let f = RawFrame { bytes: 512, tag: 7 };
        assert_eq!(f.wire_size(), 512);
    }
}
