//! The runtime seam: deterministic or threaded execution of simulation
//! jobs.
//!
//! The event loop itself ([`crate::sim::Simulator`]) stays strictly
//! single-threaded — that is what makes a `World` bit-for-bit
//! reproducible and lets it serve as a correctness oracle. Scale comes
//! from *above* the loop: production-size experiments are decomposed
//! into independent deterministic worlds (shards), and an [`Executor`]
//! decides whether those run one after another on the calling thread or
//! spread across a work-stealing pool. The seam mirrors the other
//! swap-points of the stack (`PendingEvents`, `CcFactory`,
//! `PathSelection`): callers program against the trait, differential
//! tests drive both implementations and assert bit-identical outputs.
//!
//! * [`DeterministicExecutor`] — runs jobs in submission order on the
//!   calling thread. The oracle: zero concurrency, zero ambiguity.
//! * [`ThreadedExecutor`] — a work-stealing pool of OS threads. Jobs are
//!   pre-distributed round-robin across per-worker deques; an idle
//!   worker steals the back half of the fullest other deque. Finished
//!   outputs stream back through a **bounded** [`crate::chan`] channel
//!   (the collector applies backpressure like any other consumer) and
//!   are re-ordered by job index, so the caller observes exactly the
//!   deterministic executor's output sequence — scheduling interleaving
//!   can never leak into results.
//!
//! # Contract
//!
//! Jobs must be independent **unless** the caller guarantees that every
//! member of a communicating set (tasks blocking on each other through
//! channels) is claimed by a distinct worker — i.e. the set is no larger
//! than [`Executor::workers`]. `relaynet`'s stage-task pipeline asserts
//! exactly that. Under the deterministic executor, communicating jobs
//! would deadlock (there is one thread); it is for independent jobs
//! only.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::chan;

/// A type-erased job output (see [`execute_typed`] for the typed view).
pub type JobOutput = Box<dyn Any + Send>;

/// A type-erased job: runs once on some worker, produces an output.
pub type Job = Box<dyn FnOnce() -> JobOutput + Send>;

/// Where simulation jobs run — see the [module docs](self).
pub trait Executor: Sync {
    /// Stable identifier for logs and bench keys.
    fn name(&self) -> &'static str;

    /// Number of OS threads that can make progress concurrently (1 for
    /// the deterministic executor). Communicating job sets must not
    /// exceed this.
    fn workers(&self) -> usize;

    /// Runs every job, returning outputs **in job order** regardless of
    /// completion order.
    fn execute(&self, jobs: Vec<Job>) -> Vec<JobOutput>;
}

/// Typed front-end over [`Executor::execute`]: boxes the closures up,
/// downcasts the outputs back.
///
/// # Panics
///
/// Panics if the executor returns a wrong-typed or missing output —
/// both indicate a broken `Executor` implementation, not a caller error.
pub fn execute_typed<T: Send + 'static>(
    exec: &dyn Executor,
    jobs: Vec<Box<dyn FnOnce() -> T + Send>>,
) -> Vec<T> {
    let boxed: Vec<Job> = jobs
        .into_iter()
        .map(|job| -> Job { Box::new(move || Box::new(job()) as JobOutput) })
        .collect();
    exec.execute(boxed)
        .into_iter()
        .map(|out| *out.downcast::<T>().expect("executor preserved job types"))
        .collect()
}

/// Runs jobs in submission order on the calling thread — the oracle
/// every threaded run is differentially tested against.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeterministicExecutor;

impl Executor for DeterministicExecutor {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn workers(&self) -> usize {
        1
    }

    fn execute(&self, jobs: Vec<Job>) -> Vec<JobOutput> {
        jobs.into_iter().map(|job| job()).collect()
    }
}

/// A work-stealing pool of OS threads (see the [module docs](self)).
///
/// Threads are scoped to one [`Executor::execute`] call: the pool holds
/// no global state between calls and cannot leak threads.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedExecutor {
    workers: usize,
}

impl ThreadedExecutor {
    /// Creates a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> ThreadedExecutor {
        ThreadedExecutor {
            workers: workers.max(1),
        }
    }
}

/// One worker's share of the job indices, stealable by the others.
struct WorkerDeque {
    queue: Mutex<VecDeque<usize>>,
}

impl WorkerDeque {
    /// Takes the next index from the front of the own deque.
    fn pop_front(&self) -> Option<usize> {
        self.queue
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
    }

    /// Snapshot of the deque's length (victim selection only — may be
    /// stale by the time a steal runs).
    fn len(&self) -> usize {
        self.queue.lock().expect("worker deque poisoned").len()
    }

    /// Steals roughly the back half of a victim's deque, returning the
    /// first stolen index and pushing the rest onto `into`.
    fn steal_into(&self, into: &WorkerDeque) -> Option<usize> {
        let mut victim = self.queue.lock().expect("worker deque poisoned");
        let n = victim.len();
        if n == 0 {
            return None;
        }
        let take = n.div_ceil(2);
        let mut stolen: Vec<usize> = (0..take).filter_map(|_| victim.pop_back()).collect();
        drop(victim);
        // pop_back reversed the order; restore it so stolen work runs
        // oldest-first like everything else.
        stolen.reverse();
        let first = stolen.first().copied();
        if stolen.len() > 1 {
            let mut own = into.queue.lock().expect("worker deque poisoned");
            own.extend(stolen.drain(1..));
        }
        first
    }
}

impl Executor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn execute(&self, jobs: Vec<Job>) -> Vec<JobOutput> {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        // Job slots: each claimed exactly once by whichever worker pops
        // (or steals) its index.
        let slots: Vec<Mutex<Option<Job>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let deques: Vec<WorkerDeque> = (0..self.workers)
            .map(|w| WorkerDeque {
                queue: Mutex::new((w..total).step_by(self.workers).collect()),
            })
            .collect();
        let claimed = AtomicUsize::new(0);
        // Bounded result stream: finished outputs flow back through
        // backpressured channel like any other produced value.
        let (tx, rx) = chan::bounded::<(usize, JobOutput)>(self.workers * 2);

        let mut outputs: Vec<Option<JobOutput>> = (0..total).map(|_| None).collect();
        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let tx = tx.clone();
                let deques = &deques;
                let slots = &slots;
                let claimed = &claimed;
                scope.spawn(move || loop {
                    let mut idx = deques[w].pop_front();
                    if idx.is_none() {
                        // Steal, trying every victim fullest-first: one
                        // racy failed steal (another thief won the same
                        // victim) must not retire this worker while
                        // other deques still hold jobs.
                        let mut victims: Vec<usize> =
                            (0..deques.len()).filter(|&v| v != w).collect();
                        victims.sort_by_key(|&v| std::cmp::Reverse(deques[v].len()));
                        for v in victims {
                            if let Some(stolen) = deques[v].steal_into(&deques[w]) {
                                idx = Some(stolen);
                                break;
                            }
                        }
                    }
                    let Some(idx) = idx else {
                        // Nothing visible anywhere. Only retire once every
                        // index is provably claimed; below that, an index
                        // may be transiently in another thief's hands
                        // (between its victim pop and its own push), so
                        // yield and rescan. A stale low read just retries;
                        // claimed == total is only ever written once all
                        // jobs are claimed, so exit cannot be premature.
                        if claimed.load(Ordering::Relaxed) == total {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    claimed.fetch_add(1, Ordering::Relaxed);
                    let job = slots[idx]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    if tx.send((idx, job())).is_err() {
                        break; // collector gone: abandon ship
                    }
                });
            }
            drop(tx);
            for _ in 0..total {
                let (idx, out) = rx
                    .recv()
                    .expect("a worker panicked before delivering its job output");
                outputs[idx] = Some(out);
            }
        });
        debug_assert_eq!(claimed.load(Ordering::Relaxed), total);
        outputs
            .into_iter()
            .map(|o| o.expect("every job delivered exactly one output"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares_job(i: u64) -> Box<dyn FnOnce() -> u64 + Send> {
        Box::new(move || i * i)
    }

    #[test]
    fn deterministic_runs_in_order() {
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let order = order.clone();
                Box::new(move || {
                    order.lock().unwrap().push(i);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = execute_typed(&DeterministicExecutor, jobs);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_preserves_job_order_in_outputs() {
        for workers in [1, 2, 4, 8] {
            let exec = ThreadedExecutor::new(workers);
            assert_eq!(exec.workers(), workers);
            let jobs: Vec<_> = (0..50u64).map(squares_job).collect();
            let out = execute_typed(&exec, jobs);
            assert_eq!(
                out,
                (0..50u64).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn threaded_matches_deterministic_bit_for_bit() {
        // The seam's core promise: for independent deterministic jobs the
        // executor choice is unobservable in the outputs.
        let make_jobs = || -> Vec<Box<dyn FnOnce() -> Vec<u64> + Send>> {
            (0..16u64)
                .map(|i| {
                    Box::new(move || {
                        // A deterministic per-job computation with state.
                        let mut acc = Vec::new();
                        let mut x = i + 1;
                        for _ in 0..100 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            acc.push(x);
                        }
                        acc
                    }) as Box<dyn FnOnce() -> Vec<u64> + Send>
                })
                .collect()
        };
        let oracle = execute_typed(&DeterministicExecutor, make_jobs());
        for workers in [2, 4, 8] {
            let threaded = execute_typed(&ThreadedExecutor::new(workers), make_jobs());
            assert_eq!(oracle, threaded, "{workers} workers diverged from oracle");
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Worker 0's deque holds one huge job followed by many small
        // ones; with stealing the wall time is bounded by the huge job,
        // and — observable without timing — every job still completes.
        let exec = ThreadedExecutor::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..40u64)
            .map(|i| {
                Box::new(move || {
                    let spins = if i == 0 { 2_000_000 } else { 1_000 };
                    let mut x = i;
                    for _ in 0..spins {
                        x = x.wrapping_mul(31).wrapping_add(7);
                    }
                    std::hint::black_box(x);
                    i
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = execute_typed(&exec, jobs);
        assert_eq!(out, (0..40u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list() {
        assert!(ThreadedExecutor::new(4).execute(Vec::new()).is_empty());
        assert!(DeterministicExecutor.execute(Vec::new()).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = execute_typed(
            &ThreadedExecutor::new(8),
            (0..2u64).map(squares_job).collect(),
        );
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_worker_request_clamps_to_one() {
        let exec = ThreadedExecutor::new(0);
        assert_eq!(exec.workers(), 1);
        let out = execute_typed(&exec, (0..3u64).map(squares_job).collect());
        assert_eq!(out, vec![0, 1, 4]);
    }
}
