//! Named metric registry: monotonic counters and gauges behind cheap
//! integer handles, with order-independent merge and Prometheus export.
//!
//! Each shard of a sharded run owns its own [`MetricsRegistry`] and bumps
//! metrics through [`MetricId`] handles — a `Copy` index into a flat
//! array, so the hot path is one bounds-checked add with no hashing. At
//! aggregation time registries [`merge`](MetricsRegistry::merge) **by
//! name**: counters and gauges both add (a gauge here is a merged
//! population level, e.g. "flows in flight", not a last-write-wins
//! instantaneous reading), so the merge is associative and commutative
//! regardless of shard order. [`crate::export::prometheus_text`] renders
//! the result in the Prometheus text exposition format.
//!
//! # Naming rules
//!
//! Names are validated at registration (DESIGN.md §13): lowercase
//! `snake_case` from `[a-z0-9_]`, starting with a letter; counter names
//! must end in `_total` (the Prometheus convention) and gauge names must
//! not. Violations panic at registration — a misnamed metric is a bug in
//! the instrumentation, not in the run.

use std::collections::BTreeMap;
use std::fmt;

/// Whether a metric only ever goes up (counter) or tracks a level
/// (gauge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing; name must end `_total`.
    Counter,
    /// A level that merges by summation across shards.
    Gauge,
}

/// A cheap `Copy` handle to a registered metric — valid only for the
/// registry (or a [`clone_zeroed`](MetricsRegistry::clone_zeroed) twin
/// of the registry) that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

#[derive(Clone, Debug, PartialEq)]
struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
    value: u64,
}

/// A registry of named counters and gauges (see the [module docs](self)
/// for merge and naming semantics).
///
/// # Examples
///
/// ```
/// use simstats::registry::{MetricsRegistry, MetricKind};
///
/// let mut reg = MetricsRegistry::new();
/// let sent = reg.counter("cells_sent_total", "cells put on the wire");
/// reg.add(sent, 3);
/// reg.add(sent, 2);
/// assert_eq!(reg.value(sent), 5);
///
/// let mut other = MetricsRegistry::new();
/// let sent2 = other.counter("cells_sent_total", "cells put on the wire");
/// other.add(sent2, 10);
/// reg.merge(&other);
/// assert_eq!(reg.value(sent), 15);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    by_name: BTreeMap<String, usize>,
}

pub(crate) fn validate_name(name: &str, kind: MetricKind) {
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
    let tail_ok = chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    assert!(
        head_ok && tail_ok,
        "metric name {name:?} must be lowercase snake_case starting with a letter"
    );
    match kind {
        MetricKind::Counter => assert!(
            name.ends_with("_total"),
            "counter name {name:?} must end in _total"
        ),
        MetricKind::Gauge => assert!(
            !name.ends_with("_total"),
            "gauge name {name:?} must not end in _total (that suffix marks counters)"
        ),
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, help: &str, kind: MetricKind) -> MetricId {
        // Idempotency check first: an existing name was validated when it
        // was created, and checking kind here gives the precise
        // "already registered as" diagnostic on conflicts.
        if let Some(&idx) = self.by_name.get(name) {
            let existing = &self.metrics[idx];
            assert!(
                existing.kind == kind,
                "metric {name:?} already registered as {:?}",
                existing.kind
            );
            return MetricId(idx);
        }
        validate_name(name, kind);
        let idx = self.metrics.len();
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            value: 0,
        });
        self.by_name.insert(name.to_string(), idx);
        MetricId(idx)
    }

    /// Registers (or re-fetches) a monotonic counter. Idempotent by name.
    ///
    /// # Panics
    ///
    /// Panics on a name violating the naming rules, or if the name is
    /// already registered as a gauge.
    pub fn counter(&mut self, name: &str, help: &str) -> MetricId {
        self.register(name, help, MetricKind::Counter)
    }

    /// Registers (or re-fetches) a gauge. Idempotent by name.
    ///
    /// # Panics
    ///
    /// Panics on a name violating the naming rules, or if the name is
    /// already registered as a counter.
    pub fn gauge(&mut self, name: &str, help: &str) -> MetricId {
        self.register(name, help, MetricKind::Gauge)
    }

    /// Adds `delta` to the metric — the hot-path operation, one array
    /// index away.
    pub fn add(&mut self, id: MetricId, delta: u64) {
        self.metrics[id.0].value += delta;
    }

    /// Overwrites the metric's value — for gauges snapshotted at end of
    /// run (queue depths, live-flow counts).
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a counter: counters only go up.
    pub fn set(&mut self, id: MetricId, value: u64) {
        let m = &mut self.metrics[id.0];
        assert!(
            m.kind == MetricKind::Gauge,
            "set() on counter {:?}; counters are add-only",
            m.name
        );
        m.value = value;
    }

    /// Current value of a metric.
    pub fn value(&self, id: MetricId) -> u64 {
        self.metrics[id.0].value
    }

    /// Looks a metric up by name (for tests and exporters).
    pub fn value_of(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).map(|&idx| self.metrics[idx].value)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` if no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// A twin registry with the same metric set and all values zeroed —
    /// hand one to each shard so their [`MetricId`]s line up and the
    /// shards merge field-for-field.
    pub fn clone_zeroed(&self) -> MetricsRegistry {
        let mut twin = self.clone();
        for m in &mut twin.metrics {
            m.value = 0;
        }
        twin
    }

    /// Folds `other` into `self` by metric **name**: matching names add
    /// (counters and gauges alike — see the module docs), names unique
    /// to `other` are adopted. Addition is associative and commutative,
    /// so any merge order yields the same registry.
    ///
    /// # Panics
    ///
    /// Panics if a name is a counter on one side and a gauge on the
    /// other.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        // Exhaustive binding: `by_name` is the name→index cache over
        // `metrics`, rebuilt on our side by `register`, so folding the
        // metrics list alone covers the whole struct.
        let MetricsRegistry {
            metrics,
            by_name: _,
        } = other;
        for m in metrics {
            let id = self.register(&m.name, &m.help, m.kind);
            self.add(id, m.value);
        }
    }

    /// All metrics sorted by name, for export: `(name, help, kind,
    /// value)`.
    pub fn sorted_entries(&self) -> impl Iterator<Item = (&str, &str, MetricKind, u64)> {
        self.by_name.values().map(|&idx| {
            let m = &self.metrics[idx];
            (m.name.as_str(), m.help.as_str(), m.kind, m.value)
        })
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.metrics.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ops_total", "operations");
        assert_eq!(reg.value(c), 0);
        reg.add(c, 7);
        reg.add(c, 3);
        assert_eq!(reg.value(c), 10);
        assert_eq!(reg.value_of("ops_total"), Some(10));
        assert_eq!(reg.value_of("missing"), None);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("ops_total", "operations");
        let b = reg.counter("ops_total", "operations");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("flows_live", "live flows");
        // The _total suffix rule makes a public-API collision impossible
        // to express without also violating naming, so exercise the
        // conflict guard through the internal path.
        reg.register("flows_live", "live flows", MetricKind::Counter);
    }

    #[test]
    #[should_panic(expected = "must end in _total")]
    fn counter_requires_total_suffix() {
        MetricsRegistry::new().counter("ops", "operations");
    }

    #[test]
    #[should_panic(expected = "must not end in _total")]
    fn gauge_rejects_total_suffix() {
        MetricsRegistry::new().gauge("flows_total", "flows");
    }

    #[test]
    #[should_panic(expected = "lowercase snake_case")]
    fn name_must_be_snake_case() {
        MetricsRegistry::new().counter("OpsTotal", "operations");
    }

    #[test]
    #[should_panic(expected = "add-only")]
    fn set_on_counter_panics() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ops_total", "operations");
        reg.set(c, 5);
    }

    #[test]
    fn gauges_can_be_set_and_merge_by_sum() {
        let mut a = MetricsRegistry::new();
        let live = a.gauge("flows_live", "flows in flight");
        a.set(live, 4);
        let mut b = a.clone_zeroed();
        let live_b = b.gauge("flows_live", "flows in flight");
        b.set(live_b, 6);
        a.merge(&b);
        assert_eq!(a.value(live), 10, "gauges are population levels: sum");
    }

    #[test]
    fn merge_adopts_unknown_names_and_is_order_independent() {
        let mut a = MetricsRegistry::new();
        let ac = a.counter("a_total", "a");
        a.add(ac, 1);
        let mut b = MetricsRegistry::new();
        let bc = b.counter("b_total", "b");
        b.add(bc, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Internal insertion order differs; the exported view must not.
        let ab_view: Vec<_> = ab
            .sorted_entries()
            .map(|(n, _, k, v)| (n.to_string(), k, v))
            .collect();
        let ba_view: Vec<_> = ba
            .sorted_entries()
            .map(|(n, _, k, v)| (n.to_string(), k, v))
            .collect();
        assert_eq!(ab_view, ba_view);
        assert_eq!(ab.value_of("a_total"), Some(1));
        assert_eq!(ab.value_of("b_total"), Some(2));
    }

    #[test]
    fn clone_zeroed_preserves_handles() {
        let mut template = MetricsRegistry::new();
        let c = template.counter("ops_total", "operations");
        template.add(c, 99);
        let mut shard = template.clone_zeroed();
        assert_eq!(shard.value(c), 0, "values reset");
        shard.add(c, 1);
        assert_eq!(shard.value(c), 1);
        assert_eq!(template.value(c), 99, "template untouched");
    }
}
