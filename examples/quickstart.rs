//! Quickstart: one CircuitStart transfer over a 3-relay circuit.
//!
//! Builds the paper's Figure 1a geometry (100 Mbit/s links, a 20 Mbit/s
//! bottleneck one hop from the source, 5 ms per-link delay), transfers
//! 1 MiB, and prints what happened — the whole public API in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use circuitstart::prelude::*;

fn main() {
    // The preset returns the full experiment description; everything is a
    // plain struct you can edit before running.
    let mut config = fig1_trace(1, Algorithm::CircuitStart);
    config.seed = 7;

    println!("circuit: client → 3 relays → server");
    println!(
        "links:   {} fast, bottleneck {} at link {}",
        config.fast, config.bottleneck, config.bottleneck_link
    );
    let model = config.model();
    println!(
        "model:   optimal source window = {:.1} cells ({:.1} KiB), ideal transfer ≥ {}",
        model.optimal_source_cwnd_cells(),
        model.optimal_source_cwnd_kib(),
        model.ideal_transfer_time(config.file_bytes),
    );

    let report = run_trace(&config);

    println!("\nresults:");
    println!("  algorithm        : {}", report.algorithm_key);
    println!("  completed        : {}", report.result.completed);
    println!(
        "  bytes delivered  : {} ({} cells, {} payload errors)",
        report.result.bytes_delivered, report.result.cells_delivered, report.result.payload_errors
    );
    println!(
        "  transfer time    : {}",
        report.result.transfer_time().expect("completed")
    );
    println!(
        "  goodput          : {:.2} Mbit/s",
        report.result.goodput_bps().expect("completed") / 1e6
    );
    println!("  peak window      : {} cells", report.peak_cwnd_cells());
    println!(
        "  settled at ±35%  : {}",
        report
            .settling_time_ms(0.35)
            .map(|ms| format!("{ms:.0} ms"))
            .unwrap_or_else(|| "never".to_string())
    );

    println!("\nwindow trace (time, cells):");
    for &(ms, cells) in &report.cwnd_cells {
        println!("  {ms:8.1} ms  {cells:4} cells");
    }
}
