// cs-lint-fixture: path = "crates/simcore/src/rng.rs"
// Collision keying is (enclosing fn, parent chain, label, literal
// index): the same label in SIBLING fns, on DIFFERENT parents, behind
// runtime indexes, or built dynamically never collides. ZERO findings.

fn shard_a(master: &SimRng) -> u64 {
    let mut s = master.derive("shard-seed");
    s.u64()
}

fn shard_b(master: &SimRng) -> u64 {
    // Same label as shard_a, different enclosing fn: each call site is
    // handed its own parent in practice, so per-fn keying is the
    // conservative line.
    let mut s = master.derive("shard-seed");
    s.u64()
}

fn two_parents(left: &SimRng, right: &SimRng) -> u64 {
    let mut a = left.derive("edge");
    let mut b = right.derive("edge");
    a.u64() ^ b.u64()
}

fn runtime_indexed(master: &SimRng, n: u64) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        // The runtime index IS the disambiguator: exempt.
        let mut s = master.derive_indexed("relay", i);
        acc ^= s.u64();
    }
    let mut again = master.derive_indexed("relay", n);
    acc ^ again.u64()
}

fn dynamic_label(master: &SimRng, name: &str) -> u64 {
    // Non-literal labels are opaque, even when textually identical.
    let mut a = master.derive(name);
    let mut b = master.derive(name);
    a.u64() ^ b.u64()
}
