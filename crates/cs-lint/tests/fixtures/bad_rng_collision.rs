// cs-lint-fixture: path = "crates/relaynet/src/builder.rs"
// Duplicate (parent, label) pairs alias one RNG stream bit-for-bit.
// The builder file may MINT streams (rng-discipline exempts it), but
// collisions are a bug wherever they happen.
use simcore::rng::SimRng;

fn build_world(master: &SimRng) {
    let churn = master.derive("churn");
    let faults = master.derive("faults");
    let dup = master.derive("churn"); //~ rng-stream-collision
    let _ = (churn, faults, dup);
}

fn build_shards(master: &SimRng) {
    let a = master.derive_indexed("shard", 0);
    let b = master.derive_indexed("shard", 0); //~ rng-stream-collision
    let _ = (a, b);
}

fn nested_parents(cfg: &Config) {
    // The receiver chain is the parent key: `cfg.rng` twice collides.
    let a = cfg.rng.derive("alpha");
    let b = cfg.rng.derive("alpha"); //~ rng-stream-collision
    let _ = (a, b);
}
