//! The paper's future work, demonstrated: responding to changing network
//! conditions *during* congestion avoidance.
//!
//! A 3-relay circuit starts with a 10 Mbit/s bottleneck; half a second in,
//! the bottleneck link is upgraded to 40 Mbit/s. Plain CircuitStart only
//! grows by one cell per RTT after its ramp ended; the adaptive variant
//! (`Algorithm::AdaptiveCircuitStart`) notices the persistent spare
//! capacity and re-enters the ramp from its current window, reaching the
//! new operating point in logarithmically many rounds.
//!
//! Watch the traces, not just the totals: the adaptive controller
//! *detects* the change and jumps, but each probe is a burst-and-
//! compensate cycle with real cost — at this moderate (×4) upgrade plain
//! Vegas creep wins on transfer time (EXPERIMENTS.md A6 quantifies this
//! honestly). That trade-off is exactly why mid-flow adaptation is the
//! paper's *future work* rather than part of the algorithm.
//!
//! ```text
//! cargo run --release --example midflow_adaptation
//! ```

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use relaynet::{PathScenario, TorEvent, WorldConfig};
use simcore::time::SimTime;
use simstats::ascii::{plot_lines, PlotConfig};

fn run_one(algorithm: Algorithm) -> (Vec<(f64, f64)>, f64) {
    let base = fig1_trace(1, algorithm);
    let mut hops = base.hops();
    hops[1].rate = Bandwidth::from_mbps(10); // initial bottleneck
    let scenario = PathScenario {
        hops,
        file_bytes: 4 << 20, // 4 MiB: plenty of post-change runtime
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(algorithm.factory(base.cc), 3);
    // Upgrade the bottleneck mid-flow.
    sim.schedule_at(
        SimTime::from_millis(500),
        TorEvent::SetLinkRate {
            link: handles.fwd_links[1],
            rate: Bandwidth::from_mbps(40),
        },
    );
    run_to_completion(&mut sim);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    let result = world.result_of(handles.circ);
    assert!(result.completed);
    let trace: Vec<(f64, f64)> = world
        .source_cwnd_trace(handles.circ)
        .expect("tracing on")
        .iter()
        .map(|&(t, c)| (t.as_millis_f64(), f64::from(c)))
        .collect();
    let ttlb = result.transfer_time().expect("completed").as_secs_f64();
    (trace, ttlb)
}

fn main() {
    println!("bottleneck: 10 Mbit/s until t = 500 ms, then 40 Mbit/s\n");
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for (label, algorithm) in [
        ("adaptive circuitstart", Algorithm::AdaptiveCircuitStart),
        ("plain circuitstart", Algorithm::CircuitStart),
    ] {
        let (trace, ttlb) = run_one(algorithm);
        let peak_after = trace
            .iter()
            .filter(|&&(t, _)| t > 500.0)
            .map(|&(_, c)| c)
            .fold(0.0f64, f64::max);
        println!(
            "{label:>22}: transfer {ttlb:.3} s, max window after upgrade {peak_after:.0} cells"
        );
        series.push((label, trace));
    }

    let plot = plot_lines(
        &series,
        &PlotConfig {
            width: 90,
            height: 22,
            title: "source cwnd [cells] vs time [ms] — bandwidth upgrade at 500 ms".to_string(),
            x_label: "time [ms]".to_string(),
            y_label: "cwnd [cells]".to_string(),
        },
    );
    println!("\n{plot}");
}
