//! Crate/module policy: which rule applies where (DESIGN.md §14).
//!
//! Scoping is **deny by default**: a rule exempts named crates, files,
//! or regions, so a crate added to the workspace tomorrow is fully
//! lint-scoped without anyone editing this table (ROADMAP standing
//! rule). Paths are workspace-relative with `/` separators.

/// What kind of compilation target a file belongs to, derived from its
/// path by Cargo's layout conventions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` of a package — the library surface other code links.
    Lib,
    /// `src/main.rs` or `src/bin/**` — a binary entry point.
    Bin,
    /// `tests/**` — an integration-test target.
    TestFile,
    /// `benches/**` — a bench target.
    BenchFile,
    /// `examples/**` — a runnable example.
    ExampleFile,
}

/// Where a file sits in the workspace.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Cargo package name (directory name mapped through the rename
    /// table: `crates/bench` → `cs-bench`, `crates/core` →
    /// `circuitstart`; the workspace root is `circuitstart-repro`).
    pub krate: String,
    pub kind: TargetKind,
}

/// Package renames: crate directory → package name.
const CRATE_RENAMES: &[(&str, &str)] = &[("bench", "cs-bench"), ("core", "circuitstart")];

/// Classifies a workspace-relative `.rs` path.
pub fn classify(rel_path: &str) -> FileCtx {
    let (krate, within) = match rel_path.strip_prefix("crates/") {
        Some(rest) => {
            let (dir, within) = rest.split_once('/').unwrap_or((rest, ""));
            let name = CRATE_RENAMES
                .iter()
                .find(|(d, _)| *d == dir)
                .map(|(_, n)| *n)
                .unwrap_or(dir);
            (name.to_string(), within.to_string())
        }
        None => ("circuitstart-repro".to_string(), rel_path.to_string()),
    };
    let kind = if within.starts_with("tests/") {
        TargetKind::TestFile
    } else if within.starts_with("benches/") {
        TargetKind::BenchFile
    } else if within.starts_with("examples/") {
        TargetKind::ExampleFile
    } else if within.starts_with("src/bin/") || within == "src/main.rs" {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    };
    FileCtx {
        rel_path: rel_path.to_string(),
        krate,
        kind,
    }
}

/// Crates whose state is *not* fingerprint-visible, and therefore exempt
/// from `nondeterministic-iteration`:
/// * `netsim` / `circuitstart` (core) — pure functions of their inputs,
///   no keyed collections feed `WorldFingerprint`;
/// * `cs-bench` / `cs-lint` — tooling, never inside a simulated world;
/// * `circuitstart-repro` — the root package (integration tests pin
///   fingerprints but do not produce them).
///
/// Every other crate — present or future — is in scope.
const HASH_EXEMPT_CRATES: &[&str] = &[
    "netsim",
    "circuitstart",
    "cs-bench",
    "cs-lint",
    "circuitstart-repro",
];

/// Files allowed to create or derive RNG streams outside tests: the RNG
/// home module and the scenario builders, where every stream is minted
/// from the master seed with a stable label (DESIGN.md §14).
const RNG_BUILDER_FILES: &[&str] = &[
    "crates/simcore/src/rng.rs",
    "crates/relaynet/src/builder.rs",
    "crates/relaynet/src/runtime.rs",
];

/// The one module allowed to spawn threads: the executor seam.
const THREAD_HOME: &str = "crates/simcore/src/exec.rs";

/// Decides whether `rule` applies at a site.
///
/// `test_code` is true for integration-test files and for `#[cfg(test)]`
/// / `#[test]` regions inside any file.
pub fn rule_applies(rule: crate::rules::Rule, ctx: &FileCtx, test_code: bool) -> bool {
    use crate::rules::Rule::*;
    match rule {
        // Fingerprint-visible crates must not touch unordered maps even
        // in tests: a test asserting over HashMap iteration order flakes
        // across std versions exactly like production code would.
        NondetIteration => !HASH_EXEMPT_CRATES.contains(&ctx.krate.as_str()),
        // Results must be a function of the seed everywhere but the
        // bench harness, whose whole job is reading the host clock.
        WallClock => ctx.krate != "cs-bench",
        // Hidden parallelism is banned outside the executor seam; test
        // code is exempt so watchdog threads in differential suites stay
        // annotation-free (they never touch world state).
        StrayThreads => !test_code && ctx.rel_path != THREAD_HOME,
        // The PR 8 bug class: order-sensitive f64 accumulation in merge
        // functions. No exemptions — a test merging floats is as
        // order-sensitive as a shard aggregator.
        FloatAccumulationInMerge => true,
        // Streams are minted by scenario builders and tests only;
        // everything else must take a stream it was handed. Bench
        // targets are top-level experiment drivers: the pinned seed in a
        // bench *is* that experiment's master seed, so minting there is
        // the rooted case, not a leak.
        RngDiscipline => {
            !test_code
                && ctx.kind != TargetKind::BenchFile
                && !RNG_BUILDER_FILES.contains(&ctx.rel_path.as_str())
        }
        // Library code reports through simstats, not stdout. Binaries,
        // examples, benches, and the bench harness print by design.
        NoPrintlnInLib => ctx.kind == TargetKind::Lib && !test_code && ctx.krate != "cs-bench",
        // Library panics must name their invariant.
        NoBareUnwrapInLib => ctx.kind == TargetKind::Lib && !test_code,
        // The transitive closures mirror their token-level rules'
        // crate/file exemptions but additionally skip test code: the
        // direct rules already police test files where policy wants
        // them to, and a test calling a timing/watchdog helper is not a
        // determinism leak (world state never flows through it).
        TransitiveWallClock => !test_code && ctx.krate != "cs-bench",
        TransitiveThreads => !test_code && ctx.rel_path != THREAD_HOME,
        // Aliased RNG streams are a bug wherever they happen — builder
        // files and tests included: two sites consuming one stream
        // break bit-identity pins no matter who minted the parent.
        RngStreamCollision => true,
        // Exhaustive binding is enforced exactly where unordered-map
        // iteration is: crates whose state feeds `WorldFingerprint` or
        // mergeable telemetry. Tooling crates keep ad-hoc merges.
        ExhaustiveDestructure => !HASH_EXEMPT_CRATES.contains(&ctx.krate.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn classification_by_layout() {
        let c = classify("crates/relaynet/src/network/mod.rs");
        assert_eq!((c.krate.as_str(), c.kind), ("relaynet", TargetKind::Lib));
        let c = classify("crates/bench/src/bin/ablations.rs");
        assert_eq!((c.krate.as_str(), c.kind), ("cs-bench", TargetKind::Bin));
        let c = classify("crates/core/src/lib.rs");
        assert_eq!(
            (c.krate.as_str(), c.kind),
            ("circuitstart", TargetKind::Lib)
        );
        let c = classify("tests/queue_equivalence.rs");
        assert_eq!(
            (c.krate.as_str(), c.kind),
            ("circuitstart-repro", TargetKind::TestFile)
        );
        let c = classify("examples/quickstart.rs");
        assert_eq!(c.kind, TargetKind::ExampleFile);
        let c = classify("crates/cs-lint/src/main.rs");
        assert_eq!((c.krate.as_str(), c.kind), ("cs-lint", TargetKind::Bin));
        let c = classify("crates/simcore/benches/x.rs");
        assert_eq!(c.kind, TargetKind::BenchFile);
    }

    #[test]
    fn unknown_crates_are_scoped_by_default() {
        let c = classify("crates/newcrate/src/lib.rs");
        assert!(rule_applies(Rule::NondetIteration, &c, false));
        assert!(rule_applies(Rule::WallClock, &c, false));
        assert!(rule_applies(Rule::NoBareUnwrapInLib, &c, false));
    }

    #[test]
    fn scoping_edges() {
        let exec = classify("crates/simcore/src/exec.rs");
        assert!(!rule_applies(Rule::StrayThreads, &exec, false));
        let chan = classify("crates/simcore/src/chan.rs");
        assert!(rule_applies(Rule::StrayThreads, &chan, false));
        assert!(!rule_applies(Rule::StrayThreads, &chan, true));

        let bench = classify("crates/bench/src/harness.rs");
        assert!(!rule_applies(Rule::WallClock, &bench, false));
        assert!(!rule_applies(Rule::NoPrintlnInLib, &bench, false));
        assert!(rule_applies(Rule::NoBareUnwrapInLib, &bench, false));

        let builder = classify("crates/relaynet/src/builder.rs");
        assert!(!rule_applies(Rule::RngDiscipline, &builder, false));
        let bench_target = classify("crates/bench/benches/bench_overlay.rs");
        assert!(!rule_applies(Rule::RngDiscipline, &bench_target, false));
        let sel = classify("crates/relaynet/src/selection.rs");
        assert!(rule_applies(Rule::RngDiscipline, &sel, false));
        assert!(!rule_applies(Rule::RngDiscipline, &sel, true));

        // Hash rule reaches tests of fingerprint-visible crates…
        let ids = classify("crates/torcell/src/ids.rs");
        assert!(rule_applies(Rule::NondetIteration, &ids, true));
        // …but not the exempt crates.
        let net = classify("crates/netsim/src/lib.rs");
        assert!(!rule_applies(Rule::NondetIteration, &net, false));
    }

    #[test]
    fn semantic_rule_scoping() {
        let sel = classify("crates/relaynet/src/selection.rs");
        assert!(rule_applies(Rule::TransitiveWallClock, &sel, false));
        assert!(!rule_applies(Rule::TransitiveWallClock, &sel, true));
        assert!(rule_applies(Rule::TransitiveThreads, &sel, false));
        let bench = classify("crates/bench/src/harness.rs");
        assert!(!rule_applies(Rule::TransitiveWallClock, &bench, false));
        assert!(rule_applies(Rule::TransitiveThreads, &bench, false));
        let exec = classify("crates/simcore/src/exec.rs");
        assert!(!rule_applies(Rule::TransitiveThreads, &exec, false));
        assert!(rule_applies(Rule::TransitiveWallClock, &exec, false));

        // Collisions have no exemptions at all — builders and tests
        // included.
        let builder = classify("crates/relaynet/src/builder.rs");
        assert!(rule_applies(Rule::RngStreamCollision, &builder, false));
        assert!(rule_applies(Rule::RngStreamCollision, &builder, true));

        // Exhaustive destructure follows the fingerprint-visibility set.
        let stats = classify("crates/simstats/src/summary.rs");
        assert!(rule_applies(Rule::ExhaustiveDestructure, &stats, false));
        let lint = classify("crates/cs-lint/src/report.rs");
        assert!(!rule_applies(Rule::ExhaustiveDestructure, &lint, false));
    }
}
