//! The delay-based controller: discrete-round ramp-up + Vegas avoidance.
//!
//! [`DelayCc`] implements the window dynamics that both the paper's
//! contribution and its baseline share (see DESIGN.md §4):
//!
//! * **Ramp-up** (slow start) happens in *discrete rounds*. A round sends a
//!   back-to-back train of `cwnd` cells, then waits for the per-hop
//!   feedback of every cell in the train. If the round completes without a
//!   delay signal, the window doubles and the next train goes out.
//! * On each feedback the controller evaluates the Vegas backlog estimate
//!   `diff = cwnd · (currentRtt / baseRtt − 1)` with `currentRtt` = that
//!   cell's RTT. When `diff > γ`, the ramp ends **immediately,
//!   mid-round**, and the window is set by the pluggable [`RampExit`]
//!   policy — `HalvingExit` for the traditional baseline, the
//!   CircuitStart overshoot compensation in the `circuitstart` crate.
//! * **Congestion avoidance** is per-round Vegas: once per RTT, compare
//!   `diff` (using the round's minimum RTT) against `α`/`β` and move the
//!   window by ±1 cell.
//!
//! The controller deliberately contains no timers: rounds are delimited by
//! sequence numbers, so behaviour is driven purely by feedback arrival.

use simcore::time::{SimDuration, SimTime};

use crate::cc::{CongestionControl, Phase, RampExit};
use crate::config::CcConfig;

/// State of the train currently in flight during ramp-up.
#[derive(Clone, Copy, Debug)]
struct Train {
    /// Sequence number of the first cell of the train.
    first_seq: u64,
    /// Cells this train is allowed to contain (= cwnd at train start).
    target: u32,
    /// Cells of this train sent so far.
    sent: u32,
    /// Cells of this train already fed back.
    acked: u32,
    /// When the round opened (first send of the train).
    started_at: SimTime,
}

/// Vegas measurement-round state for congestion avoidance.
#[derive(Clone, Copy, Debug, Default)]
struct VegasRound {
    /// Evaluate when feedback for a sequence `>= mark` arrives; `None`
    /// until the first send after the previous evaluation.
    mark: Option<u64>,
    /// Minimum RTT observed in the current round.
    round_min: Option<SimDuration>,
}

/// Counters exposed for tests, traces, and the ablation benches.
#[derive(Clone, Copy, Debug, Default)]
pub struct DelayCcStats {
    /// Number of window doublings performed during ramp-up.
    pub doublings: u32,
    /// Number of times the ramp was exited on a delay signal.
    pub ramp_exits: u32,
    /// The window chosen by the exit policy at the last ramp exit.
    pub last_exit_cwnd: Option<u32>,
    /// The (possibly overshot) window at the moment of the last exit.
    pub last_overshoot_cwnd: Option<u32>,
    /// +1 window adjustments made in congestion avoidance.
    pub ca_increments: u64,
    /// −1 window adjustments made in congestion avoidance.
    pub ca_decrements: u64,
    /// Multiplicative re-compensations performed in congestion avoidance
    /// (CircuitStart's backpropagation rule).
    pub ca_recompensations: u64,
    /// Congestion-avoidance evaluations performed (one per RTT round,
    /// counting holds as well as adjustments).
    pub ca_rounds: u64,
}

/// Delay-based per-hop congestion controller (see module docs).
pub struct DelayCc {
    algorithm_name: &'static str,
    cfg: CcConfig,
    exit: Box<dyn RampExit + Send>,
    cwnd: u32,
    phase: Phase,
    train: Option<Train>,
    vegas: VegasRound,
    /// CircuitStart's backpropagation rule (paper §2): when congestion
    /// avoidance sees a persistent backlog (`diff > β`), set the window to
    /// the amount the successor demonstrably forwards per base RTT —
    /// `cwnd·baseRtt/currentRtt` — instead of creeping down by 1. This is
    /// how a far-away bottleneck's compensation reaches the source one hop
    /// at a time ("setting its cwnd to the same value").
    ///
    /// Scope: the rule is armed for a bounded number of rounds after each
    /// ramp exit (the time the backpropagation wave needs to arrive) and
    /// then hands over to plain Vegas. Left unbounded it misreads
    /// *shared*-queue delay under cross traffic as own backlog and
    /// collapses the window — the startup algorithm must stay a startup
    /// algorithm, exactly as the paper's future-work section implies.
    ca_recompensate: bool,
    /// How many CA evaluations after a ramp exit the rule stays armed.
    ca_recompensation_window: u32,
    /// Armed evaluations remaining.
    ca_recompensation_left: u32,
    stats: DelayCcStats,
}

impl DelayCc {
    /// Creates a controller that starts in ramp-up with `cfg.init_cwnd`,
    /// leaving the ramp via `exit`.
    pub fn with_ramp(
        algorithm_name: &'static str,
        cfg: CcConfig,
        exit: Box<dyn RampExit + Send>,
    ) -> DelayCc {
        cfg.validate();
        DelayCc {
            algorithm_name,
            cfg,
            exit,
            cwnd: cfg.init_cwnd,
            phase: Phase::SlowStart,
            train: None,
            vegas: VegasRound::default(),
            ca_recompensate: false,
            ca_recompensation_window: 0,
            ca_recompensation_left: 0,
            stats: DelayCcStats::default(),
        }
    }

    /// Enables CircuitStart's backpropagation rule in congestion
    /// avoidance for `window` evaluations after every ramp exit (see the
    /// field documentation; it also arms immediately). The classic
    /// baseline leaves this off and adjusts by ±1 per round, as plain
    /// Vegas does.
    pub fn enable_ca_recompensation(&mut self, window: u32) {
        assert!(window > 0, "recompensation window must be positive");
        self.ca_recompensate = true;
        self.ca_recompensation_window = window;
        self.ca_recompensation_left = window;
    }

    /// Creates a controller with **no ramp-up**: it enters congestion
    /// avoidance immediately with window `cwnd0`. With a large `cwnd0`
    /// this models JumpStart-style "no startup phase" senders; with a
    /// small one, the no-slow-start ablation.
    pub fn without_ramp(algorithm_name: &'static str, cfg: CcConfig, cwnd0: u32) -> DelayCc {
        cfg.validate();
        let mut cc = DelayCc::with_ramp(algorithm_name, cfg, Box::new(crate::cc::HalvingExit));
        cc.cwnd = cfg.clamp_cwnd(cwnd0);
        cc.phase = Phase::CongestionAvoidance;
        cc
    }

    /// The configuration in use.
    pub fn config(&self) -> &CcConfig {
        &self.cfg
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> &DelayCcStats {
        &self.stats
    }

    /// Cells of the current ramp-up round already fed back (0 outside
    /// ramp-up). This is the "amount of data acknowledged within the
    /// current round so far" that overshoot compensation uses.
    pub fn acked_in_current_round(&self) -> u32 {
        self.train.map_or(0, |t| t.acked)
    }

    /// Re-enters ramp-up (the paper's future-work extension uses this to
    /// re-probe after a detected bandwidth change). The window restarts at
    /// `cwnd0` (clamped), or `init_cwnd` if `None`.
    pub fn restart_ramp(&mut self, cwnd0: Option<u32>) {
        self.cwnd = self.cfg.clamp_cwnd(cwnd0.unwrap_or(self.cfg.init_cwnd));
        self.phase = Phase::SlowStart;
        self.train = None;
        self.vegas = VegasRound::default();
    }

    /// Ends the ramp on a delay signal observed at `acked_in_round`
    /// feedbacks into the current round.
    fn exit_ramp(&mut self, acked_in_round: u32) {
        let overshoot = self.cwnd;
        let chosen = self.exit.exit_cwnd(overshoot, acked_in_round);
        self.cwnd = self.cfg.clamp_cwnd(chosen);
        self.phase = Phase::CongestionAvoidance;
        self.train = None;
        self.vegas = VegasRound::default();
        // Arm the backpropagation rule for the post-exit settling period.
        self.ca_recompensation_left = self.ca_recompensation_window;
        self.stats.ramp_exits += 1;
        self.stats.last_exit_cwnd = Some(self.cwnd);
        self.stats.last_overshoot_cwnd = Some(overshoot);
    }

    fn vegas_diff(&self, current: SimDuration, base: SimDuration) -> f64 {
        // diff = cwnd · currentRtt/baseRtt − cwnd  (paper, after TCP Vegas)
        f64::from(self.cwnd) * (current.ratio(base) - 1.0)
    }
}

impl CongestionControl for DelayCc {
    fn name(&self) -> &'static str {
        self.algorithm_name
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn allow_send(&self, outstanding: u32) -> bool {
        match self.phase {
            Phase::SlowStart => match &self.train {
                // A train in progress may grow up to its target.
                Some(t) => t.sent < t.target,
                // No active train: the next send opens one.
                None => true,
            },
            Phase::CongestionAvoidance => outstanding < self.cwnd,
        }
    }

    fn on_sent(&mut self, seq: u64, now: SimTime) {
        match self.phase {
            Phase::SlowStart => match &mut self.train {
                Some(t) => {
                    debug_assert!(t.sent < t.target, "train overfilled");
                    t.sent += 1;
                }
                None => {
                    self.train = Some(Train {
                        first_seq: seq,
                        target: self.cwnd,
                        sent: 1,
                        acked: 0,
                        started_at: now,
                    });
                }
            },
            Phase::CongestionAvoidance => {
                // First send after an evaluation opens a measurement round.
                if self.vegas.mark.is_none() {
                    self.vegas.mark = Some(seq);
                    self.vegas.round_min = None;
                }
            }
        }
    }

    fn on_feedback(&mut self, seq: u64, rtt: SimDuration, base_rtt: SimDuration, now: SimTime) {
        match self.phase {
            Phase::SlowStart => {
                let Some(train) = &mut self.train else {
                    // Feedback for a cell sent before the ramp (re)started
                    // — e.g. cells still outstanding when an adaptive
                    // restart re-entered slow start. There is no round to
                    // account it to; the transport already took the RTT
                    // sample.
                    return;
                };
                if seq < train.first_seq {
                    // Same situation, with a fresh train already open.
                    return;
                }
                train.acked += 1;
                let acked = train.acked;
                let sent = train.sent;
                let target = train.target;
                let started_at = train.started_at;

                // The exit test (DESIGN.md §4): the paper's Vegas estimate
                // `diff = cwnd·(currentRtt/baseRtt − 1) > γ`, evaluated on
                // **round-level timing** — `currentRtt` is the time the
                // round has been outstanding. Per-cell RTTs inside a
                // back-to-back train measure self-inflicted serialization
                // queueing and would fire long before the path saturates;
                // the round clock is the noise-free signal. The threshold
                // generalizes the poster's fixed γ with a window-
                // proportional floor `cwnd·θ`: a round within the path's
                // capacity feeds back within ≈ one extra baseRtt (the pipe
                // drains while the train serializes), so overrunning
                // `(1+θ)·baseRtt` (θ = 1) marks the cells confirmed so far
                // as exactly the sustainable train.
                let _ = rtt; // per-cell RTT drives CA, not the ramp exit
                let elapsed = now.saturating_duration_since(started_at);
                let diff_round = f64::from(self.cwnd) * (elapsed.ratio(base_rtt) - 1.0);
                let threshold = self.cfg.gamma.max(f64::from(self.cwnd) * self.cfg.theta);
                if diff_round > threshold {
                    self.exit_ramp(acked);
                    return;
                }

                if acked == sent {
                    // Train fully fed back without a delay signal.
                    if sent >= target {
                        // Full round: double, as in the paper.
                        self.cwnd = self.cfg.clamp_cwnd(self.cwnd.saturating_mul(2));
                        self.stats.doublings += 1;
                    }
                    // (Partial, application-limited trains keep the window:
                    // there is no evidence the path sustains more.)
                    self.train = None;
                }
            }
            Phase::CongestionAvoidance => {
                self.vegas.round_min = Some(match self.vegas.round_min {
                    Some(m) => m.min(rtt),
                    None => rtt,
                });
                if let Some(mark) = self.vegas.mark {
                    if seq >= mark {
                        // One RTT has elapsed since the round opened.
                        self.stats.ca_rounds += 1;
                        let current = self.vegas.round_min.expect("round with no samples");
                        let diff = self.vegas_diff(current, base_rtt);
                        if diff < self.cfg.alpha {
                            let next = self.cfg.clamp_cwnd(self.cwnd + 1);
                            if next > self.cwnd {
                                self.stats.ca_increments += 1;
                            }
                            self.cwnd = next;
                        } else if diff > self.cfg.beta {
                            let armed = self.ca_recompensate && self.ca_recompensation_left > 0;
                            let next = if armed {
                                // Backpropagation: the successor forwarded
                                // cwnd·base/current cells per base RTT —
                                // adopt that as the window.
                                let target = f64::from(self.cwnd) * base_rtt.ratio(current);
                                self.cfg.clamp_cwnd(target.floor() as u32)
                            } else {
                                self.cfg.clamp_cwnd(self.cwnd.saturating_sub(1))
                            };
                            if next < self.cwnd {
                                if armed && self.cwnd - next > 1 {
                                    self.stats.ca_recompensations += 1;
                                } else {
                                    self.stats.ca_decrements += 1;
                                }
                            }
                            self.cwnd = next;
                        }
                        self.ca_recompensation_left = self.ca_recompensation_left.saturating_sub(1);
                        self.vegas.mark = None;
                        self.vegas.round_min = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::HalvingExit;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn cc() -> DelayCc {
        DelayCc::with_ramp("test-halving", CcConfig::default(), Box::new(HalvingExit))
    }

    /// Sends a full train at the current window and feeds every cell back
    /// with the given flat RTT. Returns the sequence after the train.
    fn run_flat_round(cc: &mut DelayCc, mut seq: u64, rtt: SimDuration) -> u64 {
        let n = cc.cwnd();
        let first = seq;
        for _ in 0..n {
            assert!(cc.allow_send(0), "train must accept its own cells");
            cc.on_sent(seq, t(0));
            seq += 1;
        }
        assert!(!cc.allow_send(0), "train must close at target");
        for s in first..seq {
            cc.on_feedback(s, rtt, ms(10).min(rtt), t(1));
        }
        seq
    }

    #[test]
    fn starts_in_slow_start_with_init_cwnd() {
        let cc = cc();
        assert_eq!(cc.cwnd(), 2);
        assert_eq!(cc.phase(), Phase::SlowStart);
        assert_eq!(cc.name(), "test-halving");
        assert!(cc.allow_send(0));
    }

    #[test]
    fn doubles_per_clean_round() {
        let mut c = cc();
        let mut seq = 0;
        for expected in [2u32, 4, 8, 16, 32] {
            assert_eq!(c.cwnd(), expected);
            seq = run_flat_round(&mut c, seq, ms(10));
        }
        assert_eq!(c.cwnd(), 64);
        assert_eq!(c.stats().doublings, 5);
        assert_eq!(c.phase(), Phase::SlowStart);
    }

    #[test]
    fn round_overrun_exits_and_counts_acked() {
        // The key ramp-exit path: a train bigger than the path sustains
        // keeps feeding back past the (1+θ)·baseRtt budget; the exit fires
        // on the first feedback beyond it, with `acked_in_round` = the
        // sustainable train length.
        /// Exit policy that simply installs the measured count.
        struct CaptureExit;
        impl crate::cc::RampExit for CaptureExit {
            fn name(&self) -> &'static str {
                "capture"
            }
            fn exit_cwnd(&self, _cwnd: u32, acked: u32) -> u32 {
                acked
            }
        }
        let mut c = DelayCc::with_ramp("t", CcConfig::default(), Box::new(CaptureExit));
        let mut seq = 0;
        seq = run_flat_round(&mut c, seq, ms(10)); // 2 → 4
        seq = run_flat_round(&mut c, seq, ms(10)); // 4 → 8
        assert_eq!(c.cwnd(), 8);
        // Train of 8 at t=100; base 10 ms ⇒ budget 20 ms. Feedback arrives
        // bottleneck-paced every 4 ms: t=110, 114, 118, 122 — the fourth
        // lands 22 ms after the round opened → overrun, acked = 4.
        for _ in 0..8 {
            c.on_sent(seq, t(100));
            seq += 1;
        }
        for (i, s) in (seq - 8..seq).enumerate() {
            let now = t(110 + 4 * i as u64);
            c.on_feedback(s, now - t(100), ms(10), now);
            if c.phase() == Phase::CongestionAvoidance {
                break;
            }
        }
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        assert_eq!(c.cwnd(), 4, "compensation = cells fed back in budget");
        assert_eq!(c.stats().ramp_exits, 1);
        assert_eq!(c.stats().last_overshoot_cwnd, Some(8));
        assert_eq!(c.stats().last_exit_cwnd, Some(4));
    }

    #[test]
    fn round_within_budget_does_not_exit() {
        let mut c = cc();
        let mut seq = 0;
        seq = run_flat_round(&mut c, seq, ms(10)); // 2 → 4

        // Train of 4 whose last feedback arrives at exactly the budget
        // boundary (elapsed == 2·base is NOT an overrun: strict >).
        for _ in 0..4 {
            c.on_sent(seq, t(100));
            seq += 1;
        }
        for (i, s) in (seq - 4..seq).enumerate() {
            let now = t(105 + 5 * i as u64); // 105, 110, 115, 120
            c.on_feedback(s, now - t(100), ms(10), now);
        }
        assert_eq!(c.phase(), Phase::SlowStart);
        assert_eq!(c.cwnd(), 8, "clean round must double");
    }

    #[test]
    fn small_window_standing_queue_exit_via_gamma() {
        let mut c = cc();
        // First round, cwnd 2: threshold = max(γ, cwnd·θ) = 4, so the
        // round may stay outstanding up to 3·base = 30 ms. A feedback at
        // 35 ms (standing queue ahead of us) exits the ramp; halving
        // 2/2 = 1 clamps to min_cwnd 2.
        c.on_sent(0, t(0));
        c.on_sent(1, t(0));
        c.on_feedback(0, ms(35), ms(10), t(35));
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        assert_eq!(c.cwnd(), 2);
    }

    #[test]
    fn bad_rtt_samples_within_budget_do_not_exit() {
        let mut c = cc();
        c.on_sent(0, t(0));
        c.on_sent(1, t(0));
        // Inflated per-cell RTT *samples* (self-queueing inside the train)
        // arriving within the round budget must not end the ramp — only
        // round-level timing counts.
        c.on_feedback(0, ms(10), ms(10), t(10));
        c.on_feedback(1, ms(15), ms(10), t(15));
        assert_eq!(c.phase(), Phase::SlowStart);
        assert_eq!(c.cwnd(), 4, "round completed and doubled");
    }

    #[test]
    fn boundary_diff_equal_threshold_does_not_exit() {
        // cwnd 2: diff = 2·(elapsed/base − 1) = 4 ⇔ elapsed = 3·base.
        // Exactly the threshold must NOT exit (strict inequality in the
        // paper: "if diff > γ"); just above must.
        let mut at_gamma = cc();
        at_gamma.on_sent(0, t(0));
        at_gamma.on_sent(1, t(0));
        at_gamma.on_feedback(0, ms(30), ms(10), t(30));
        assert_eq!(at_gamma.phase(), Phase::SlowStart);

        let mut above_gamma = cc();
        above_gamma.on_sent(0, t(0));
        above_gamma.on_sent(1, t(0));
        let just_over = SimTime::from_nanos(30_000_001);
        above_gamma.on_feedback(0, ms(30), ms(10), just_over);
        assert_eq!(above_gamma.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn gamma_floor_dominates_small_windows_theta_large_ones() {
        // cwnd 2 with γ = 4: budget 3·base. cwnd 16: budget 2·base (θ).
        let cfg = CcConfig::default();
        assert_eq!(cfg.gamma, 4.0);
        assert_eq!(cfg.theta, 1.0);
        // Small window: elapsed 2.5·base within budget.
        let mut small = cc();
        small.on_sent(0, t(0));
        small.on_sent(1, t(0));
        small.on_feedback(0, ms(25), ms(10), t(25));
        assert_eq!(small.phase(), Phase::SlowStart, "2.5·base ok at cwnd 2");
        // Large window: elapsed 2.5·base exceeds the θ budget.
        let mut big = cc();
        let mut seq = 0;
        seq = run_flat_round(&mut big, seq, ms(10)); // 2 → 4
        seq = run_flat_round(&mut big, seq, ms(10)); // 4 → 8
        assert_eq!(big.cwnd(), 8);
        for _ in 0..8 {
            big.on_sent(seq, t(100));
            seq += 1;
        }
        big.on_feedback(seq - 8, ms(25), ms(10), t(125));
        assert_eq!(
            big.phase(),
            Phase::CongestionAvoidance,
            "2.5·base exits at cwnd 8"
        );
    }

    #[test]
    fn partial_train_keeps_window() {
        let mut c = cc();
        let _ = run_flat_round(&mut c, 0, ms(10)); // cwnd → 4
        assert_eq!(c.cwnd(), 4);
        // Application-limited: only 2 of 4 cells available.
        c.on_sent(2, t(0));
        c.on_sent(3, t(0));
        c.on_feedback(2, ms(10), ms(10), t(1));
        c.on_feedback(3, ms(10), ms(10), t(1));
        assert_eq!(c.cwnd(), 4, "partial train must not double");
        assert_eq!(c.phase(), Phase::SlowStart);
        assert!(c.allow_send(0), "a new train may start");
    }

    #[test]
    fn acked_in_current_round_tracks_train() {
        let mut c = cc();
        c.on_sent(0, t(0));
        c.on_sent(1, t(0));
        assert_eq!(c.acked_in_current_round(), 0);
        c.on_feedback(0, ms(10), ms(10), t(1));
        assert_eq!(c.acked_in_current_round(), 1);
        c.on_feedback(1, ms(10), ms(10), t(1));
        assert_eq!(c.acked_in_current_round(), 0, "train closed");
    }

    #[test]
    fn ca_sliding_window_gates_on_outstanding() {
        let mut c = DelayCc::without_ramp("jump", CcConfig::default(), 5);
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        assert_eq!(c.cwnd(), 5);
        assert!(c.allow_send(4));
        assert!(!c.allow_send(5));
        c.on_sent(0, t(0));
        assert!(!c.allow_send(5));
    }

    #[test]
    fn ca_increments_when_diff_below_alpha() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 10);
        c.on_sent(0, t(0)); // opens round, mark = 0
        c.on_feedback(0, ms(10), ms(10), t(1)); // diff = 0 < α → +1
        assert_eq!(c.cwnd(), 11);
        assert_eq!(c.stats().ca_increments, 1);
    }

    #[test]
    fn ca_decrements_when_diff_above_beta() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 10);
        c.on_sent(0, t(0));
        // diff = 10·(15/10 − 1) = 5 > β = 4 → −1
        c.on_feedback(0, ms(15), ms(10), t(1));
        assert_eq!(c.cwnd(), 9);
        assert_eq!(c.stats().ca_decrements, 1);
    }

    #[test]
    fn ca_holds_between_alpha_and_beta() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 10);
        c.on_sent(0, t(0));
        // diff = 10·(13/10 − 1) = 3 ∈ [α, β] → hold
        c.on_feedback(0, ms(13), ms(10), t(1));
        assert_eq!(c.cwnd(), 10);
    }

    #[test]
    fn ca_evaluates_once_per_round() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 10);
        c.on_sent(0, t(0));
        c.on_sent(1, t(0));
        c.on_sent(2, t(0));
        c.on_feedback(0, ms(10), ms(10), t(1)); // evaluates (seq 0 >= mark 0), +1
        c.on_feedback(1, ms(10), ms(10), t(1)); // same round... mark cleared, no eval
        c.on_feedback(2, ms(10), ms(10), t(1));
        assert_eq!(c.cwnd(), 11, "only one adjustment per round");
        // A new send re-opens a round.
        c.on_sent(3, t(2));
        c.on_feedback(3, ms(10), ms(10), t(3));
        assert_eq!(c.cwnd(), 12);
    }

    #[test]
    fn ca_round_uses_min_rtt() {
        let cfg = CcConfig {
            alpha: 1.0,
            ..CcConfig::default()
        };
        let mut c = DelayCc::without_ramp("t", cfg, 10);
        c.on_sent(0, t(0));
        c.on_sent(1, t(0));
        c.on_sent(2, t(0));
        // Feedback out of round order: high RTTs for earlier cells, low for
        // the marked one. Evaluation at seq 2... wait, mark = 0: first
        // feedback evaluates immediately. Open the round with spread
        // samples instead: feed seq 1 and 2 only after 0 cleared the mark.
        c.on_feedback(0, ms(20), ms(10), t(1)); // eval: diff=10 > β → 9
        assert_eq!(c.cwnd(), 9);
        // Next round: samples 1 (high) then 3 (low, marked).
        c.on_sent(3, t(2)); // mark = 3
        c.on_feedback(1, ms(30), ms(10), t(3)); // round_min = 30
        c.on_feedback(2, ms(12), ms(10), t(3)); // round_min = 12
        c.on_feedback(3, ms(11), ms(10), t(3)); // round_min = 11 → diff = 0.9 < α → +1
        assert_eq!(c.cwnd(), 10);
    }

    #[test]
    fn cwnd_never_exceeds_bounds_under_random_feedback() {
        let cfg = CcConfig {
            max_cwnd: 32,
            ..Default::default()
        };
        let mut c = DelayCc::with_ramp("t", cfg, Box::new(HalvingExit));
        let mut seq = 0u64;
        let mut x: u64 = 0x12345;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if c.allow_send(0) {
                c.on_sent(seq, t(0));
                seq += 1;
            } else {
                // Feed back the oldest unacked; RTT pseudo-random 10..30 ms.
                let rtt = ms(10 + x % 20);
                let target = seq - 1;
                c.on_feedback(target, rtt, ms(10), t(1));
            }
            assert!(c.cwnd() >= cfg.min_cwnd && c.cwnd() <= cfg.max_cwnd);
        }
    }

    #[test]
    fn ca_recompensation_snaps_to_forwarded_rate() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 118);
        c.enable_ca_recompensation(8);
        c.on_sent(0, t(0));
        // Persistent backlog: min RTT of the round is 24 ms vs base 10.25.
        // The successor forwards 118·10.25/24 ≈ 50 cells per base RTT.
        c.on_feedback(
            0,
            SimDuration::from_micros(24_000),
            SimDuration::from_micros(10_250),
            t(24),
        );
        assert_eq!(c.cwnd(), 50);
        assert_eq!(c.stats().ca_recompensations, 1);
        assert_eq!(c.stats().ca_decrements, 0);
    }

    #[test]
    fn ca_without_recompensation_creeps_down() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 118);
        c.on_sent(0, t(0));
        c.on_feedback(
            0,
            SimDuration::from_micros(24_000),
            SimDuration::from_micros(10_250),
            t(24),
        );
        assert_eq!(c.cwnd(), 117, "plain Vegas decrements by one");
        assert_eq!(c.stats().ca_decrements, 1);
    }

    #[test]
    fn ca_recompensation_near_band_behaves_like_vegas() {
        // Mild backlog (diff just over β): the multiplicative target is
        // within 1 cell of a plain decrement; stats count it as one.
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 10);
        c.enable_ca_recompensation(8);
        c.on_sent(0, t(0));
        // diff = 10·(15/10−1) = 5 > β; target = 10·10/15 = 6.67 → 6.
        c.on_feedback(0, ms(15), ms(10), t(15));
        assert_eq!(c.cwnd(), 6);
        assert_eq!(c.stats().ca_recompensations, 1);
    }

    #[test]
    fn restart_ramp_reenters_slow_start() {
        let mut c = DelayCc::without_ramp("t", CcConfig::default(), 40);
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        c.restart_ramp(None);
        assert_eq!(c.phase(), Phase::SlowStart);
        assert_eq!(c.cwnd(), 2);
        c.restart_ramp(Some(16));
        assert_eq!(c.cwnd(), 16);
        assert_eq!(c.phase(), Phase::SlowStart);
    }

    #[test]
    fn without_ramp_clamps_cwnd0() {
        let cfg = CcConfig {
            max_cwnd: 64,
            ..Default::default()
        };
        let c = DelayCc::without_ramp("jump", cfg, 1_000);
        assert_eq!(c.cwnd(), 64);
    }
}
