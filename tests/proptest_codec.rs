//! Property tests for the wire codec and onion layering: round-trips for
//! *every* representable cell, and detection of corruption. These
//! properties license the simulator's structured-cell fast path.

use proptest::prelude::*;
use torcell::prelude::*;

fn arb_relay_command() -> impl Strategy<Value = RelayCommand> {
    prop_oneof![
        Just(RelayCommand::Begin),
        Just(RelayCommand::Data),
        Just(RelayCommand::End),
        Just(RelayCommand::Connected),
        Just(RelayCommand::Sendme),
        Just(RelayCommand::Extend),
        Just(RelayCommand::Extended),
    ]
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    let create = (any::<u32>(), any::<[u8; HANDSHAKE_LEN]>())
        .prop_map(|(c, hs)| Cell::create(CircuitId(c), hs));
    let created = (any::<u32>(), any::<[u8; HANDSHAKE_LEN]>())
        .prop_map(|(c, hs)| Cell::created(CircuitId(c), hs));
    let destroy =
        (any::<u32>(), any::<u8>()).prop_map(|(c, r)| Cell::destroy(CircuitId(c), r));
    let padding = any::<u32>().prop_map(|c| Cell {
        circ: CircuitId(c),
        body: CellBody::Padding,
    });
    let relay = (
        any::<u32>(),
        arb_relay_command(),
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..=RELAY_DATA_MAX),
    )
        .prop_map(|(c, cmd, stream, data)| Cell {
            circ: CircuitId(c),
            body: CellBody::Relay(RelayCell {
                cmd,
                stream: StreamId(stream),
                digest: payload_digest(&data),
                data,
            }),
        });
    prop_oneof![create, created, destroy, padding, relay]
}

proptest! {
    #[test]
    fn cell_round_trip(cell in arb_cell()) {
        let wire = encode_cell(&cell);
        prop_assert_eq!(wire.len(), CELL_LEN);
        let decoded = decode_cell(&wire).expect("decode");
        prop_assert_eq!(decoded, cell);
    }

    #[test]
    fn encoding_is_injective_on_distinct_cells(a in arb_cell(), b in arb_cell()) {
        let ea = encode_cell(&a);
        let eb = encode_cell(&b);
        if a == b {
            prop_assert_eq!(ea, eb);
        } else {
            prop_assert_ne!(ea, eb, "distinct cells must encode differently");
        }
    }

    #[test]
    fn feedback_round_trip(circ in any::<u32>(), seq in any::<u64>()) {
        let fb = Feedback { circ: CircuitId(circ), seq };
        let wire = encode_feedback(&fb);
        prop_assert_eq!(wire.len(), FEEDBACK_WIRE_LEN);
        prop_assert_eq!(decode_feedback(&wire), Ok(fb));
    }

    #[test]
    fn feedback_corruption_is_detected(
        circ in any::<u32>(),
        seq in any::<u64>(),
        flip_byte in 0usize..FEEDBACK_WIRE_LEN,
        flip_bits in 1u8..=255,
    ) {
        let mut wire = encode_feedback(&Feedback { circ: CircuitId(circ), seq }).to_vec();
        wire[flip_byte] ^= flip_bits;
        // Any single-byte corruption must not decode to the same frame
        // (magic, checksum, or value changes).
        match decode_feedback(&wire) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, Feedback { circ: CircuitId(circ), seq }),
        }
    }

    #[test]
    fn truncated_cells_never_decode(
        cell in arb_cell(),
        cut in 0usize..CELL_LEN,
    ) {
        let wire = encode_cell(&cell);
        prop_assert!(decode_cell(&wire[..cut]).is_err());
    }

    #[test]
    fn layer_cipher_is_involutive(
        key in any::<u64>(),
        nonce in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let cipher = LayerCipher::new(LayerKey(key));
        let mut buf = data.clone();
        cipher.apply(nonce, &mut buf);
        cipher.apply(nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn onion_route_recognizes_exactly_the_target_hop(
        hops in 1usize..=5,
        target_offset in 0usize..5,
        payload in proptest::collection::vec(any::<u8>(), 8..=RELAY_DATA_MAX),
        key_seed in any::<u64>(),
    ) {
        let target = target_offset % hops;
        let mut route = OnionRoute::new();
        let mut relays: Vec<RelayCrypt> = Vec::new();
        for i in 0..hops {
            let key = LayerKey(key_seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1);
            route.push_layer(key);
            relays.push(RelayCrypt::new(key));
        }
        let mut cell = RelayCell::data(StreamId(1), payload.clone());
        route.wrap_for_hop(target, &mut cell);
        let mut recognized_at = None;
        for (i, relay) in relays.iter_mut().enumerate().take(target + 1) {
            if relay.strip_forward(&mut cell) {
                recognized_at = Some(i);
                break;
            }
        }
        prop_assert_eq!(recognized_at, Some(target));
        prop_assert_eq!(cell.data, payload);
    }

    #[test]
    fn digest_mismatch_detected_after_tamper(
        payload in proptest::collection::vec(any::<u8>(), 1..=64),
        idx in 0usize..64,
        bits in 1u8..=255,
    ) {
        let mut cell = RelayCell::data(StreamId(1), payload.clone());
        let i = idx % cell.data.len();
        cell.data[i] ^= bits;
        prop_assert!(!cell.digest_ok());
    }
}
