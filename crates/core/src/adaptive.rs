//! The paper's future-work extension: re-probing after network changes.
//!
//! The poster's conclusion proposes "expanding the scope of the algorithm
//! to not only the initial phase of a circuit, but to enable it to quickly
//! respond to changing network conditions during the congestion avoidance
//! phase". This module implements the natural reading of that sentence:
//!
//! * In congestion avoidance, Vegas grows the window by at most one cell
//!   per RTT. If the path's capacity rises mid-flow (a competing circuit
//!   finished, a relay got faster), convergence takes `Δcwnd` RTTs.
//! * [`AdaptiveCc`] watches for **persistent spare capacity**: `k`
//!   consecutive +1 rounds (diff stayed below α every time). That pattern
//!   is what a capacity increase looks like from the endpoint.
//! * When detected, it re-enters the CircuitStart ramp *from the current
//!   window* — doubling per round with overshoot compensation — reaching
//!   the new operating point in `log₂` rounds instead of linearly many.
//!
//! The mid-flow ablation bench (`ablations -- midflow`) measures the
//! effect against plain CircuitStart.

use backtap::cc::{CongestionControl, Phase};
use backtap::delay_cc::DelayCc;
use simcore::time::{SimDuration, SimTime};

/// Tuning for [`AdaptiveCc`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Re-probe after this many consecutive window-raising rounds.
    pub underuse_rounds: u32,
    /// Never re-probe more often than this many ramp re-entries total
    /// (safety rail for pathological oscillation).
    pub max_restarts: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            underuse_rounds: 4,
            max_restarts: 16,
        }
    }
}

/// CircuitStart plus mid-flow re-probing (see module docs).
pub struct AdaptiveCc {
    inner: DelayCc,
    cfg: AdaptiveConfig,
    last_cwnd: u32,
    /// `ca_rounds` counter value at the last detector update, so the
    /// detector reacts once per Vegas evaluation, not once per feedback.
    last_rounds: u64,
    consecutive_raises: u32,
    /// Evidence currently required before the next probe. Starts at
    /// `cfg.underuse_rounds`; doubles after every probe that found no
    /// capacity (so steady-state contention cannot make the controller
    /// thrash) and resets after a successful one.
    required_raises: u32,
    /// Window at the moment the last probe fired, used to judge whether
    /// the probe found anything.
    probe_base: Option<u32>,
    restarts: u32,
}

impl AdaptiveCc {
    /// Wraps a delay-based controller (normally
    /// [`crate::algorithm::circuit_start_cc`]).
    pub fn new(inner: DelayCc, cfg: AdaptiveConfig) -> AdaptiveCc {
        assert!(
            cfg.underuse_rounds >= 2,
            "need at least 2 rounds of evidence"
        );
        let last_cwnd = inner.cwnd();
        let last_rounds = inner.stats().ca_rounds;
        AdaptiveCc {
            inner,
            cfg,
            last_cwnd,
            last_rounds,
            consecutive_raises: 0,
            required_raises: cfg.underuse_rounds,
            probe_base: None,
            restarts: 0,
        }
    }

    /// Evidence (consecutive raising rounds) currently required before the
    /// next probe; doubles after unproductive probes.
    pub fn required_raises(&self) -> u32 {
        self.required_raises
    }

    /// How many times the ramp was re-entered.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &DelayCc {
        &self.inner
    }
}

impl CongestionControl for AdaptiveCc {
    fn name(&self) -> &'static str {
        "adaptive-circuitstart"
    }

    fn cwnd(&self) -> u32 {
        self.inner.cwnd()
    }

    fn phase(&self) -> Phase {
        self.inner.phase()
    }

    fn allow_send(&self, outstanding: u32) -> bool {
        self.inner.allow_send(outstanding)
    }

    fn on_sent(&mut self, seq: u64, now: SimTime) {
        self.inner.on_sent(seq, now);
    }

    fn on_feedback(&mut self, seq: u64, rtt: SimDuration, base_rtt: SimDuration, now: SimTime) {
        let phase_before = self.inner.phase();
        self.inner.on_feedback(seq, rtt, base_rtt, now);
        if phase_before != Phase::CongestionAvoidance {
            if self.inner.phase() == Phase::CongestionAvoidance {
                // A ramp just ended. If it was one of our probes, judge it:
                // a probe that did not grow the window found no capacity,
                // so demand twice the evidence before the next one —
                // otherwise steady-state contention makes probing thrash.
                if let Some(base) = self.probe_base.take() {
                    let grew = f64::from(self.inner.cwnd()) > f64::from(base) * 1.25;
                    self.required_raises = if grew {
                        self.cfg.underuse_rounds
                    } else {
                        (self.required_raises * 2).min(256)
                    };
                }
            }
            // Ramp in progress (or just ended); reset the detector.
            self.last_cwnd = self.inner.cwnd();
            self.last_rounds = self.inner.stats().ca_rounds;
            self.consecutive_raises = 0;
            return;
        }
        // Only react when a Vegas evaluation actually happened — cwnd is
        // constant between evaluations and must not clear the streak.
        let rounds = self.inner.stats().ca_rounds;
        if rounds == self.last_rounds {
            return;
        }
        self.last_rounds = rounds;
        let cwnd = self.inner.cwnd();
        if cwnd > self.last_cwnd {
            self.consecutive_raises += 1;
            if self.consecutive_raises >= self.required_raises
                && self.restarts < self.cfg.max_restarts
            {
                // Persistent spare capacity: probe geometrically from the
                // current window instead of creeping by +1 per RTT.
                self.probe_base = Some(cwnd);
                self.inner.restart_ramp(Some(cwnd));
                self.restarts += 1;
                self.consecutive_raises = 0;
            }
        } else {
            // A hold (diff ≥ α) or a decrement: the path is not
            // underutilized, so the evidence streak restarts.
            self.consecutive_raises = 0;
        }
        self.last_cwnd = cwnd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::circuit_start_cc;
    use backtap::config::CcConfig;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn t(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Drives the controller through CA rounds with flat (uncongested)
    /// RTTs: every round raises the window by one.
    fn run_flat_ca_round(cc: &mut AdaptiveCc, seq: &mut u64) {
        cc.on_sent(*seq, t(0));
        cc.on_feedback(*seq, ms(10), ms(10), t(1));
        *seq += 1;
    }

    fn into_ca(cc: &mut AdaptiveCc, seq: &mut u64) {
        // Force a ramp exit: the round stays outstanding past the budget
        // (3·base at cwnd 2), dropping into congestion avoidance.
        cc.on_sent(*seq, t(0));
        *seq += 1;
        cc.on_sent(*seq, t(0));
        *seq += 1;
        cc.on_feedback(*seq - 2, ms(35), ms(10), t(35));
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        // Drain the second outstanding cell (now handled by Vegas).
        cc.on_feedback(*seq - 1, ms(10), ms(10), t(36));
    }

    #[test]
    #[should_panic(expected = "at least 2 rounds")]
    fn rejects_hair_trigger_config() {
        let _ = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 1,
                max_restarts: 1,
            },
        );
    }

    #[test]
    fn reprobes_after_persistent_raises() {
        let mut cc = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 3,
                max_restarts: 16,
            },
        );
        let mut seq = 0;
        into_ca(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 0);
        // Three consecutive +1 rounds → re-probe.
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 0);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 1);
        assert_eq!(cc.phase(), Phase::SlowStart, "ramp re-entered");
    }

    #[test]
    fn congestion_resets_the_detector() {
        let mut cc = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 3,
                max_restarts: 16,
            },
        );
        let mut seq = 0;
        into_ca(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        // A congested round (diff > β → −1) must clear the streak.
        cc.on_sent(seq, t(0));
        cc.on_feedback(seq, ms(20), ms(10), t(1));
        seq += 1;
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 0, "streak must restart after congestion");
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 1);
    }

    #[test]
    fn restart_cap_is_honoured() {
        let mut cc = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 2,
                max_restarts: 1,
            },
        );
        let mut seq = 0;
        into_ca(&mut cc, &mut seq);
        for _ in 0..2 {
            run_flat_ca_round(&mut cc, &mut seq);
        }
        assert_eq!(cc.restarts(), 1);
        // Ramp re-entered; finish it again and pile up more raises.
        into_ca(&mut cc, &mut seq);
        for _ in 0..10 {
            run_flat_ca_round(&mut cc, &mut seq);
        }
        assert_eq!(cc.restarts(), 1, "capped");
    }

    #[test]
    fn failed_probe_backs_off() {
        let mut cc = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 2,
                max_restarts: 16,
            },
        );
        let mut seq = 0;
        into_ca(&mut cc, &mut seq); // cwnd 2
        assert_eq!(cc.required_raises(), 2);
        // Two raises → probe fires from cwnd 4.
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 1);
        // The probe immediately hits congestion: exits at ~the same window
        // → unproductive → evidence requirement doubles.
        into_ca(&mut cc, &mut seq);
        assert_eq!(cc.required_raises(), 4, "failed probe must back off");
        // Two raises are no longer enough.
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 1);
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq);
        assert_eq!(cc.restarts(), 2, "doubled evidence reached");
    }

    #[test]
    fn successful_probe_resets_backoff() {
        let mut cc = AdaptiveCc::new(
            circuit_start_cc(CcConfig::default()),
            AdaptiveConfig {
                underuse_rounds: 2,
                max_restarts: 16,
            },
        );
        let mut seq = 0;
        into_ca(&mut cc, &mut seq); // cwnd 2
        run_flat_ca_round(&mut cc, &mut seq);
        run_flat_ca_round(&mut cc, &mut seq); // probe from 4
        assert_eq!(cc.restarts(), 1);
        // Let the probe's ramp double twice (4 → 8 → 16) then exit on a
        // late round: the window grew ≫ 1.25× → success, requirement
        // stays at the configured 2.
        for _ in 0..2 {
            let first = seq;
            let n = cc.cwnd();
            for _ in 0..n {
                cc.on_sent(seq, t(0));
                seq += 1;
            }
            for s in first..seq {
                cc.on_feedback(s, ms(10), ms(10), t(5));
            }
        }
        assert_eq!(cc.cwnd(), 16);
        // Overrun exit after 11 cells fed back: compensation lands at 11,
        // clearly above the probe base of 4 → the probe found capacity.
        let n = cc.cwnd();
        let first = seq;
        for _ in 0..n {
            cc.on_sent(seq, t(100));
            seq += 1;
        }
        for s in first..first + 10 {
            cc.on_feedback(s, ms(15), ms(10), t(115));
        }
        cc.on_feedback(first + 10, ms(25), ms(10), t(125));
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        assert_eq!(cc.cwnd(), 11, "compensation = acked in budget");
        assert_eq!(
            cc.required_raises(),
            2,
            "successful probe keeps fast trigger"
        );
    }

    #[test]
    fn delegates_basic_interface() {
        let cc = AdaptiveCc::new(circuit_start_cc(CcConfig::default()), Default::default());
        assert_eq!(cc.name(), "adaptive-circuitstart");
        assert_eq!(cc.cwnd(), 2);
        assert!(cc.allow_send(0));
        assert_eq!(cc.inner().cwnd(), 2);
    }
}
