//! The path-selection seam, end to end: pinned pick fingerprints (the
//! API migration must reproduce the historical hard-wired selection bit
//! for bit), SimRng-driven property loops over random directories and
//! loads (proptest-style, as in `proptest_workload.rs`), and the load-
//! accounting ledger under full churn teardown.

use std::sync::Arc;

use circuitstart::prelude::*;
use relaynet::directory::{Directory, DirectoryConfig};
use relaynet::selection::{
    all_policies, BandwidthWeighted, CongestionAware, LatencyAware, PathSelection, Uniform,
};
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{CircId, StarScenario, TorEvent};
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Replays the exact derivation chain `StarScenario::build` uses for
/// placement: the directory from `derive("directory")`, picks from
/// `derive("paths")`, zero load at build time.
fn first_picks(policy: &dyn PathSelection, seed: u64, n: usize) -> Vec<Vec<usize>> {
    let master = SimRng::seed_from(seed);
    let dir = Directory::generate(&DirectoryConfig::default(), &master.derive("directory"));
    let load = vec![0u32; dir.len()];
    let mut rng = master.derive("paths");
    (0..n)
        .map(|_| policy.select(&dir.view(&load), &mut rng, 3))
        .collect()
}

/// The picks the pre-seam `Directory::select_path_uniform` /
/// `select_path_weighted` implementations produced on these seeds,
/// recorded before the migration. `Uniform` and `BandwidthWeighted`
/// must reproduce them bit for bit — the acceptance criterion that the
/// redesign changed the API, not the experiments.
#[test]
fn uniform_and_bandwidth_picks_are_pinned_to_the_pre_seam_behaviour() {
    let pinned_uniform: [(u64, [[usize; 3]; 8]); 3] = [
        (
            1,
            [
                [28, 3, 2],
                [26, 10, 22],
                [18, 10, 28],
                [2, 5, 7],
                [28, 3, 25],
                [12, 21, 19],
                [26, 16, 23],
                [14, 27, 15],
            ],
        ),
        (
            7,
            [
                [8, 18, 5],
                [23, 6, 2],
                [22, 1, 18],
                [7, 25, 17],
                [13, 16, 7],
                [22, 1, 11],
                [13, 12, 25],
                [17, 27, 8],
            ],
        ),
        (
            42,
            [
                [27, 1, 6],
                [10, 11, 21],
                [16, 13, 28],
                [20, 18, 21],
                [2, 10, 21],
                [2, 16, 13],
                [4, 18, 5],
                [11, 19, 15],
            ],
        ),
    ];
    let pinned_weighted: [(u64, [[usize; 3]; 8]); 3] = [
        (
            1,
            [
                [20, 29, 23],
                [23, 5, 26],
                [3, 19, 26],
                [29, 22, 5],
                [16, 22, 17],
                [1, 10, 22],
                [13, 22, 1],
                [6, 3, 21],
            ],
        ),
        (
            7,
            [
                [14, 25, 0],
                [8, 16, 14],
                [2, 23, 4],
                [5, 9, 16],
                [26, 20, 8],
                [17, 26, 2],
                [6, 3, 4],
                [14, 26, 23],
            ],
        ),
        (
            42,
            [
                [3, 6, 11],
                [20, 1, 18],
                [8, 19, 12],
                [0, 15, 3],
                [18, 8, 20],
                [8, 13, 14],
                [6, 4, 21],
                [25, 10, 22],
            ],
        ),
    ];
    for (seed, expected) in pinned_uniform {
        let got = first_picks(&Uniform, seed, 8);
        for (g, e) in got.iter().zip(expected) {
            assert_eq!(g[..], e[..], "uniform seed {seed}");
        }
    }
    for (seed, expected) in pinned_weighted {
        let got = first_picks(&BandwidthWeighted, seed, 8);
        for (g, e) in got.iter().zip(expected) {
            assert_eq!(g[..], e[..], "bandwidth-weighted seed {seed}");
        }
    }
}

/// The same pin, through the whole builder: on seed 1 the first star
/// circuits must route over exactly the relays the pre-seam builder
/// picked (relay overlay ids coincide with directory indices because
/// relays are registered first).
#[test]
fn star_builder_routes_over_the_pinned_picks() {
    let scenario = StarScenario {
        circuits: 2,
        file_bytes: 10_000,
        ..Default::default()
    };
    let (sim, circuits) = scenario.build(relaynet::builder::unlimited_factory(), 1);
    let world = sim.world();
    let relay_ids = |c: CircId| -> Vec<u32> {
        let p = &world.circuit_info(c).path;
        p[1..p.len() - 1].iter().map(|o| o.0).collect()
    };
    assert_eq!(relay_ids(circuits[0]), vec![28, 3, 2]);
    assert_eq!(relay_ids(circuits[1]), vec![26, 10, 22]);
}

/// Property: every policy returns exactly `path_len` distinct in-range
/// indices, over random directories, random (possibly heavy) load
/// views, and random path lengths.
#[test]
fn every_policy_returns_distinct_in_range_indices_on_random_views() {
    let mut rng = SimRng::seed_from(0x5E1EC7);
    for case in 0..60 {
        let cfg = DirectoryConfig {
            relays: rng.range_usize(1, 40),
            bandwidth_mbps: (rng.range_f64(1.0, 20.0), rng.range_f64(20.0, 200.0)),
            delay_ms: (rng.range_f64(0.0, 5.0), rng.range_f64(5.0, 30.0)),
        };
        let dir = Directory::generate(&cfg, &rng.derive_indexed("dir", case));
        let load: Vec<u32> = (0..dir.len())
            .map(|_| rng.range_u64(0, 100) as u32)
            .collect();
        let path_len = rng.range_usize(1, dir.len().min(6) + 1);
        for policy in all_policies() {
            let mut draw = rng.derive_indexed("draw", case);
            let picks = policy.select(&dir.view(&load), &mut draw, path_len);
            assert_eq!(picks.len(), path_len, "case {case} {}", policy.name());
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                path_len,
                "case {case} {} repeated a relay: {picks:?}",
                policy.name()
            );
            assert!(
                picks.iter().all(|&i| i < dir.len()),
                "case {case} {} out of range: {picks:?}",
                policy.name()
            );
        }
    }
}

/// The four policies are genuinely different selectors: on a shared
/// directory, seed, and non-trivial load view, no two of them produce
/// the same pick sequence.
#[test]
fn policies_diverge_on_a_shared_view() {
    let dir = Directory::generate(&DirectoryConfig::default(), &SimRng::seed_from(9));
    // Uneven load so CongestionAware separates from BandwidthWeighted
    // (at zero load it reduces to it by construction).
    let load: Vec<u32> = (0..dir.len() as u32).map(|i| (i * 7) % 23).collect();
    let sequences: Vec<(String, Vec<Vec<usize>>)> = all_policies()
        .iter()
        .map(|p| {
            let mut rng = SimRng::seed_from(77);
            let picks = (0..12)
                .map(|_| p.select(&dir.view(&load), &mut rng, 3))
                .collect();
            (p.name().to_string(), picks)
        })
        .collect();
    for i in 0..sequences.len() {
        for j in i + 1..sequences.len() {
            assert_ne!(
                sequences[i].1, sequences[j].1,
                "{} and {} selected identically",
                sequences[i].0, sequences[j].0
            );
        }
    }
}

/// Property: `CongestionAware` load accounting is a ledger — after the
/// workload completes, the live view holds exactly one count per relay
/// participation of the surviving incarnations; after tearing every
/// circuit down, every counter returns to zero. Random star and churn
/// configurations throughout.
#[test]
fn congestion_load_accounting_returns_to_zero_after_full_churn_teardown() {
    let mut rng = SimRng::seed_from(0x10AD);
    for case in 0..6 {
        let circuits = rng.range_usize(2, 5);
        let relays_per_circuit = rng.range_usize(1, 4);
        let scenario = StarScenario {
            circuits,
            relays_per_circuit,
            file_bytes: rng.range_u64(30_000, 90_000),
            directory: DirectoryConfig {
                relays: rng.range_usize(relays_per_circuit.max(3), 9),
                bandwidth_mbps: (15.0, 70.0),
                delay_ms: (2.0, 8.0),
            },
            workload: WorkloadSpec {
                streams_per_circuit: rng.range_usize(1, 4),
                arrival: ArrivalSpec::UniformJitter {
                    max_ms: rng.range_f64(1.0, 25.0),
                },
                churn: Some(ChurnSpec {
                    teardown_after_ms: (rng.range_f64(10.0, 30.0), rng.range_f64(30.0, 80.0)),
                    rebuild_delay_ms: rng.range_f64(0.0, 8.0),
                    cycles: rng.range_usize(1, 3) as u32,
                }),
            },
            selection: Arc::new(CongestionAware),
            ..Default::default()
        };
        let (mut sim, _) = scenario.build(
            Algorithm::CircuitStart.factory(CcConfig::default()),
            1000 + case,
        );
        run_to_completion(&mut sim);
        {
            let world = sim.world();
            assert_eq!(world.stats().protocol_errors, 0, "case {case}");
            assert!(world.stats().rebuilds >= 1, "case {case}: churn must churn");
            let loads = world.relay_loads().expect("placement installed");
            // Only the surviving (final) incarnations are live: one per
            // original circuit, each crossing `relays_per_circuit`
            // distinct relays.
            assert_eq!(
                loads.iter().map(|&l| u64::from(l)).sum::<u64>(),
                (circuits * relays_per_circuit) as u64,
                "case {case}: live view must hold exactly the surviving incarnations"
            );
        }
        // Tear everything down (stale ids no-op); the ledger must zero.
        // (`run_to_completion` parked the clock at its horizon, so drive
        // the teardown wave with an unlimited run.)
        for c in 0..sim.world().circuit_count() {
            sim.schedule_in(
                SimDuration::from_millis(1),
                TorEvent::Teardown(CircId(c as u32)),
            );
        }
        let report = sim.run();
        assert_eq!(
            report.reason,
            simcore::sim::StopReason::QueueEmpty,
            "case {case}"
        );
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0, "case {case}");
        let loads = world.relay_loads().expect("placement installed");
        assert!(
            loads.iter().all(|&l| l == 0),
            "case {case}: teardown must return every load counter to zero, got {loads:?}"
        );
    }
}

/// Live-load snapshots actually move: a congestion-aware run must at
/// some point have selected under non-zero load (the rebuilds), which
/// shows up as rebuilt paths that differ from their first incarnation.
#[test]
fn churn_rebuilds_reselect_through_the_policy() {
    let scenario = StarScenario {
        circuits: 4,
        relays_per_circuit: 3,
        file_bytes: 120_000,
        directory: DirectoryConfig {
            relays: 12,
            bandwidth_mbps: (15.0, 70.0),
            delay_ms: (2.0, 8.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::Immediate,
            churn: Some(ChurnSpec {
                teardown_after_ms: (20.0, 40.0),
                rebuild_delay_ms: 3.0,
                cycles: 2,
            }),
        },
        selection: Arc::new(CongestionAware),
        ..Default::default()
    };
    let (mut sim, originals) =
        scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 6);
    run_to_completion(&mut sim);
    let world = sim.world();
    assert!(
        world.stats().rebuilds >= 4,
        "both cycles × several circuits"
    );
    assert!(world.circuit_count() > originals.len());
    // Endpoints survive re-selection; at least one rebuilt incarnation
    // picked a different relay set than the first incarnation did.
    let mut any_reselected = false;
    for c in originals.len()..world.circuit_count() {
        let info = world.circuit_info(CircId(c as u32));
        assert_eq!(info.path.len(), 5, "client + 3 relays + server");
    }
    for &orig in &originals {
        let orig_path = world.circuit_info(orig).path.clone();
        for c in originals.len()..world.circuit_count() {
            let info = world.circuit_info(CircId(c as u32));
            if info.path[0] == orig_path[0] {
                // Same client ⇒ same flow chain.
                assert_eq!(
                    info.path.last(),
                    orig_path.last(),
                    "server endpoint must survive re-selection"
                );
                if info.path[1..info.path.len() - 1] != orig_path[1..orig_path.len() - 1] {
                    any_reselected = true;
                }
            }
        }
    }
    assert!(
        any_reselected,
        "with 12 relays and 8+ rebuilds some incarnation must re-route"
    );
}

/// `DirectoryView` exposes exactly what the network accounts: after a
/// plain (churn-free) build, every circuit is visible in the loads and
/// the per-relay counts match the built paths.
#[test]
fn load_view_matches_built_paths() {
    let scenario = StarScenario {
        circuits: 6,
        file_bytes: 20_000,
        directory: DirectoryConfig {
            relays: 9,
            bandwidth_mbps: (15.0, 70.0),
            delay_ms: (2.0, 8.0),
        },
        selection: Arc::new(LatencyAware),
        ..Default::default()
    };
    let (sim, circuits) = scenario.build(relaynet::builder::unlimited_factory(), 12);
    let world = sim.world();
    let loads = world.relay_loads().expect("placement installed");
    let mut expect = vec![0u32; 9];
    for &c in &circuits {
        let p = &world.circuit_info(c).path;
        for o in &p[1..p.len() - 1] {
            expect[o.index()] += 1;
        }
    }
    assert_eq!(loads, expect.as_slice());
}
