//! Fault injection and client-side recovery, end to end: relays crash
//! silently mid-transfer, clients detect the stall through build and
//! liveness timers, blame the dead hop, exclude it from selection, and
//! rebuild under exponential backoff — while every conservation law of
//! DESIGN.md §11/§12 keeps holding. The properties under test:
//!
//! * no panic and no lost or duplicated flow bytes under any fault
//!   schedule — survivors complete at exactly their requested size;
//! * full reclamation after quiescence: every pooled payload buffer
//!   back at rest, the placement ledger equal to the surviving
//!   accounted incarnations, slot slabs drained;
//! * determinism — fault schedules are bit-identical across event-queue
//!   implementations, sampler implementations, and the threaded runtime
//!   (3 seeds × 4 policies vs the single-threaded oracle);
//! * a zero-fault configuration is bit-identical to the pre-fault
//!   build, pinned by absolute event counts.
//!
//! Long matrix tests run under a watchdog (the async-runtime idiom): a
//! recovery bug that deadlocks the event loop must fail, not hang.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::builder::{baseline_factory, fixed_window_factory};
use relaynet::runtime::{fingerprint, ShardedStar, StatsKind};
use relaynet::sampler::SamplerKind;
use relaynet::selection::{all_policies, CongestionAware};
use relaynet::workload::{ArrivalSpec, EpochSpec, FaultSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, PathScenario, StarScenario, TorEvent, WorldConfig};
use simcore::event::QueueKind;
use simcore::exec::{DeterministicExecutor, ThreadedExecutor};
use simcore::sim::StopReason;
use simcore::time::SimDuration;

/// Runs `f` on a helper thread under a deadline: a hung event loop (the
/// classic recovery failure mode) becomes a test failure instead of a
/// stuck suite.
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("fault-recovery run deadlocked")
}

/// A star with enough bytes in flight that the crash window lands
/// mid-transfer on several circuits, but with links fast enough that a
/// healthy circuit comfortably beats its timers — timeouts in these
/// runs mean genuine failures, not congestion false-positives.
fn faulty_star(spec: FaultSpec) -> StarScenario {
    StarScenario {
        circuits: 8,
        relays_per_circuit: 3,
        file_bytes: 150_000,
        directory: DirectoryConfig {
            relays: 16,
            bandwidth_mbps: (40.0, 100.0),
            delay_ms: (1.0, 3.0),
        },
        selection: Arc::new(CongestionAware),
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::UniformJitter { max_ms: 15.0 },
            churn: None,
        },
        faults: Some(spec),
        ..Default::default()
    }
}

/// Timers generous enough that no healthy circuit in these scenarios
/// ever trips them: detection latency is not under test here, and a
/// congestion false-positive would turn a recovery test into a noise
/// test.
fn lenient() -> FaultSpec {
    FaultSpec {
        build_timeout_ms: 300.0,
        liveness_timeout_ms: 600.0,
        ..Default::default()
    }
}

fn assert_quiescent(world: &relaynet::TorNetwork) {
    assert_eq!(world.stats().protocol_errors, 0);
    let pool = world.payload_pool();
    assert_eq!(pool.returned(), pool.acquired(), "buffers leaked in flight");
    assert_eq!(pool.idle(), pool.stats().0 as usize, "buffers not at rest");
}

/// The tentpole loop end to end: crashes are injected, timers fire,
/// the dead relays are blamed and excluded, circuits rebuild around
/// them, and every flow still completes at exactly its requested size.
#[test]
fn relay_crashes_recover_and_conserve_bytes() {
    with_watchdog(|| {
        let scenario = faulty_star(FaultSpec {
            crashes: 2,
            crash_window_ms: (40.0, 120.0),
            ..lenient()
        });
        let (mut sim, circuits) = scenario.build(baseline_factory(Default::default()), 31);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        let stats = world.stats();
        assert_eq!(stats.crashes_injected, 2, "both crashes must land");
        assert!(stats.timeouts_fired > 0, "no client noticed the crash");
        assert!(stats.retries > 0, "no circuit retried");
        assert!(
            stats.blamed_exclusions >= 1,
            "a dead on-path relay must be blamed"
        );
        assert!(
            stats.crash_frames_dropped > 0,
            "a crashed relay must eat frames"
        );
        // Byte conservation across the crash: every flow completes
        // exactly once — dropped in-flight DATA is re-sent on the
        // rebuilt circuit, never duplicated.
        let total_requested = 150_000u64 * circuits.len() as u64;
        let mut delivered = 0u64;
        for f in world.flows() {
            assert!(f.complete(), "a crash stranded a flow");
            assert_eq!(f.delivered, f.requested, "over- or under-delivery");
            delivered += f.delivered;
        }
        assert_eq!(delivered, total_requested);
        assert_quiescent(world);
        assert!(world.verify_placement_ledger(), "ledger out of sync");
    });
}

/// A transient stall is survivable without scapegoats: the liveness
/// timer may abandon and rebuild, but with no dead hop on the path
/// nobody is excluded, and every byte still arrives.
#[test]
fn transient_stalls_recover_without_blame() {
    with_watchdog(|| {
        let scenario = faulty_star(FaultSpec {
            crashes: 0,
            stalls: 3,
            stall_window_ms: (30.0, 90.0),
            stall_duration_ms: 300.0,
            stall_factor: 200.0,
            ..lenient()
        });
        let (mut sim, _) = scenario.build(baseline_factory(Default::default()), 47);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        let stats = world.stats();
        assert_eq!(stats.crashes_injected, 0);
        assert_eq!(
            stats.blamed_exclusions, 0,
            "a stall must never cost a live relay its directory spot"
        );
        assert!(world.flows().iter().all(|f| f.complete()));
        assert_quiescent(world);
        assert!(world.verify_placement_ledger());
    });
}

/// Fault schedules are part of the deterministic experiment: the same
/// seed produces bit-identical runs across event-queue and sampler
/// implementations.
#[test]
fn fault_runs_are_queue_and_sampler_invariant() {
    with_watchdog(|| {
        let spec = FaultSpec {
            crashes: 2,
            stalls: 1,
            ..lenient()
        };
        for seed in [11u64, 67] {
            let run = |queue: QueueKind, sampler: SamplerKind| {
                let scenario = StarScenario {
                    sampler,
                    ..faulty_star(spec)
                };
                let (mut sim, _) =
                    scenario.build_with_queue(baseline_factory(Default::default()), seed, queue);
                let report = sim.run();
                fingerprint(sim.world(), report.events_processed)
            };
            let base = run(QueueKind::Calendar, SamplerKind::Linear);
            assert!(base.stats.crashes_injected > 0, "seed {seed}: no faults");
            for (queue, sampler) in [
                (QueueKind::Calendar, SamplerKind::Fenwick),
                (QueueKind::BinaryHeap, SamplerKind::Linear),
                (QueueKind::BinaryHeap, SamplerKind::Fenwick),
            ] {
                assert_eq!(
                    base,
                    run(queue, sampler),
                    "seed {seed}: {queue:?}/{sampler:?} diverged under faults"
                );
            }
        }
    });
}

/// The threaded runtime must reproduce the oracle under fault schedules
/// too — crash drops and stale-route drops are counted, not protocol
/// errors, so the sharded runner's strictness survives.
#[test]
fn threaded_runtime_reproduces_oracle_under_faults() {
    with_watchdog(|| {
        for policy in all_policies() {
            for seed in [5u64, 41, 83] {
                let exp = ShardedStar {
                    scenario: StarScenario {
                        selection: policy.clone(),
                        ..faulty_star(FaultSpec {
                            crashes: 1,
                            ..lenient()
                        })
                    },
                    shards: 2,
                    seed,
                    queue: QueueKind::default(),
                    stats: StatsKind::default(),
                };
                let maker: relaynet::runtime::FactoryMaker =
                    Arc::new(|| baseline_factory(Default::default()));
                let oracle = exp.run(&DeterministicExecutor, maker.clone());
                let threaded = exp.run(&ThreadedExecutor::new(4), maker);
                assert_eq!(
                    oracle.shards,
                    threaded.shards,
                    "{} seed {seed}: threaded diverged from oracle under faults",
                    policy.name()
                );
                assert_eq!(oracle.stats, threaded.stats);
                assert_eq!(oracle.bytes_delivered, threaded.bytes_delivered);
            }
        }
    });
}

/// On an explicit path there is no re-selection: a crashed middle relay
/// stays on every rebuilt path, so the lineage burns its retry cap and
/// parks its flows — deterministically, with the world still draining
/// to quiescence instead of hanging or panicking.
#[test]
fn retry_cap_parks_flows_on_an_unroutable_path() {
    with_watchdog(|| {
        let hop = |mbps, delay_ms| {
            LinkConfig::new(
                Bandwidth::from_mbps(mbps),
                SimDuration::from_millis(delay_ms),
            )
        };
        let scenario = PathScenario {
            hops: vec![hop(50, 2), hop(50, 2), hop(50, 2)],
            file_bytes: 2 << 20,
            workload: WorkloadSpec {
                streams_per_circuit: 2,
                arrival: ArrivalSpec::Immediate,
                churn: None,
            },
            faults: Some(FaultSpec {
                crashes: 1,
                crash_window_ms: (20.0, 30.0),
                max_retries: 2,
                backoff_base_ms: 5.0,
                backoff_cap_ms: 20.0,
                ..Default::default()
            }),
            world: WorldConfig::default(),
        };
        let (mut sim, _) = scenario.build(fixed_window_factory(16), 9);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty, "parking must drain");
        let world = sim.world();
        let stats = world.stats();
        assert_eq!(stats.crashes_injected, 1);
        assert!(stats.timeouts_fired > 0);
        assert!(
            stats.flows_parked > 0,
            "an unroutable lineage must park, not spin"
        );
        assert!(
            stats.retries <= u64::from(3u32),
            "retry cap of 2 must bound the lineage: {}",
            stats.retries
        );
        assert!(
            world.flows().iter().any(|f| !f.complete()),
            "a parked flow cannot have completed"
        );
        assert_quiescent(world);
    });
}

/// The teardown storm: explicit client teardowns, epoch departures, and
/// relay crashes all race on the same circuits at randomized offsets.
/// At every interleaving the placement ledger stays exact (each
/// incarnation un-accounted exactly once) and the pool fully reclaims.
#[test]
fn teardown_storm_keeps_ledger_and_pool_exact() {
    with_watchdog(|| {
        for (round, offset_ms) in [17u64, 49, 86, 131, 203].into_iter().enumerate() {
            let scenario = StarScenario {
                epochs: Some(EpochSpec {
                    interval_ms: 90.0,
                    epochs: 3,
                    churn: 3,
                    standby_fraction: 0.25,
                }),
                ..faulty_star(FaultSpec {
                    crashes: 2,
                    crash_window_ms: (30.0, 160.0),
                    ..lenient()
                })
            };
            let seed = 100 + round as u64;
            let (mut sim, circuits) = scenario.build(baseline_factory(Default::default()), seed);
            // The storm: every circuit is explicitly torn down at the
            // round's offset, racing whatever the epoch engine and the
            // fault schedule are doing to the same paths at that time.
            for (i, &c) in circuits.iter().enumerate() {
                sim.schedule_in(
                    SimDuration::from_millis(offset_ms + i as u64 % 7),
                    TorEvent::Teardown(c),
                );
            }
            let report = sim.run();
            assert_eq!(
                report.reason,
                StopReason::QueueEmpty,
                "storm at {offset_ms} ms did not drain"
            );
            let world = sim.world();
            assert!(
                world.verify_placement_ledger(),
                "storm at {offset_ms} ms broke the ledger"
            );
            assert_quiescent(world);
            // Final sweep: tearing down every incarnation ever created
            // must drain the load view to all-zero — exactly-once
            // accounting survived the three-way race.
            for i in 0..world.circuit_count() {
                sim.schedule_in(
                    SimDuration::from_millis(1),
                    TorEvent::Teardown(relaynet::CircId(i as u32)),
                );
            }
            sim.run();
            let world = sim.world();
            let loads = world.relay_loads().expect("placement installed");
            assert!(
                loads.iter().all(|&l| l == 0),
                "storm at {offset_ms} ms leaked load: {loads:?}"
            );
            assert!(world.verify_placement_ledger());
            assert_quiescent(world);
        }
    });
}

/// A scenario without faults must stay bit-identical to the pre-fault
/// build: no "faults" RNG stream is derived, no timers arm, no
/// recovery branch executes. Pinned by absolute event count and
/// delivery stats so later changes cannot silently shift the baseline.
#[test]
fn no_fault_config_means_no_behaviour_change() {
    let scenario = StarScenario {
        faults: None,
        ..faulty_star(FaultSpec::default())
    };
    let (mut sim, _) = scenario.build(baseline_factory(Default::default()), 31);
    let report = sim.run();
    let world = sim.world();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let stats = world.stats();
    assert_eq!(stats.crashes_injected, 0);
    assert_eq!(stats.timeouts_fired, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.crash_frames_dropped, 0);
    assert_eq!(stats.stale_frames_dropped, 0);
    assert!(world.flows().iter().all(|f| f.complete()));
    // Absolute pin (recorded from the pre-fault build of this
    // scenario): the fault seam must be free when unconfigured.
    assert_eq!(report.events_processed, 80_664);
    assert_eq!(stats.cells_sent, 10_080);
}
