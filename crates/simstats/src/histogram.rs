//! Fixed-bin histograms.
//!
//! Used for queue-depth and RTT distributions in the evaluation harness.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use simstats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5); // bins of width 2
/// h.record(1.0);
/// h.record(3.0);
/// h.record(3.5);
/// h.record(-1.0);  // underflow
/// h.record(42.0);  // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, either bound is not finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Histogram::record with NaN");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Guard against floating-point edge where value≈hi maps to len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// The half-open value range `[lo, hi)` covered by bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len(), "bin index {idx} out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Index of the fullest bin (first one on ties), or `None` if all bins
    /// are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.bins.iter().max()?;
        if max == 0 {
            return None;
        }
        self.bins.iter().position(|&c| c == max)
    }

    /// Iterates over `(bin_midpoint, count)`.
    pub fn iter_midpoints(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| {
            let (a, b) = self.bin_range(i);
            ((a + b) / 2.0, self.bins[i])
        })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram([{}, {}), bins={}, n={}, under={}, over={})",
            self.lo,
            self.hi,
            self.bins.len(),
            self.total(),
            self.underflow,
            self.overflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.0, 0.24, 0.25, 0.5, 0.75, 0.99] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn boundaries_are_half_open() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(10.0); // == hi → overflow
        assert_eq!(h.overflow(), 1);
        h.record(0.0); // == lo → bin 0
        assert_eq!(h.bin_count(0), 1);
    }

    #[test]
    fn bin_range_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
        let mids: Vec<f64> = h.iter_midpoints().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Histogram::new(0.0, 1.0, 1).record(f64::NAN);
    }

    #[test]
    fn display_mentions_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.5);
        assert!(h.to_string().contains("n=1"));
    }
}
