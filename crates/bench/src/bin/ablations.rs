//! Ablation sweeps (DESIGN.md §5, experiments A1–A6): the design choices
//! the 3-page poster could not explore, quantified.
//!
//! ```text
//! cargo run --release -p cs-bench --bin ablations              # all sweeps
//! cargo run --release -p cs-bench --bin ablations -- gamma     # one sweep
//! ```
//!
//! Sweeps: `gamma`, `theta`, `init-cwnd`, `compensation`, `distance`,
//! `load`, `midflow`, `policies`. Each prints a table and writes
//! `target/figures/ablation_<name>.dat`.

use circuitstart::prelude::*;
use cs_bench::{write_figure, Options};
use netsim::bandwidth::Bandwidth;
use relaynet::selection::all_policies;
use relaynet::{PathScenario, TorEvent, WorldConfig};
use simcore::time::SimTime;
use simstats::export::Table;

/// One row of a trace-based sweep.
struct TraceRow {
    x: f64,
    peak: u32,
    exit_cwnd: u32,
    settle_ms: Option<f64>,
    ttlb_s: f64,
}

fn trace_row(x: f64, cfg: &TraceScenarioConfig) -> TraceRow {
    let report = run_trace(cfg);
    let peak = report.peak_cwnd_cells();
    let exit_cwnd = report
        .cwnd_cells
        .iter()
        .skip_while(|&&(_, c)| c < peak)
        .nth(1)
        .map(|&(_, c)| c)
        .unwrap_or(peak);
    let t0 = report
        .result
        .first_data_at
        .expect("completed")
        .as_millis_f64();
    TraceRow {
        x,
        peak,
        exit_cwnd,
        settle_ms: report.settling_time_ms(0.35).map(|s| s - t0),
        ttlb_s: report
            .result
            .transfer_time()
            .expect("completed")
            .as_secs_f64(),
    }
}

fn print_rows(title: &str, x_name: &str, optimal: f64, rows: &[TraceRow]) -> Table {
    println!("\n━━━ {title} (model optimum ≈ {optimal:.1} cells) ━━━");
    println!(
        "  {x_name:>12}  {:>6}  {:>9}  {:>11}  {:>8}",
        "peak", "exit→cwnd", "settle [ms]", "ttlb [s]"
    );
    let mut table = Table::new(vec![
        x_name,
        "peak_cells",
        "exit_cwnd",
        "settle_ms",
        "ttlb_s",
    ]);
    for r in rows {
        println!(
            "  {:>12}  {:>6}  {:>9}  {:>11}  {:>8.3}",
            r.x,
            r.peak,
            r.exit_cwnd,
            r.settle_ms
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "never".into()),
            r.ttlb_s
        );
        table.push_row(&[
            r.x,
            f64::from(r.peak),
            f64::from(r.exit_cwnd),
            r.settle_ms.unwrap_or(-1.0),
            r.ttlb_s,
        ]);
    }
    table
}

/// A1: ramp-exit threshold γ (binds at small windows).
fn sweep_gamma() {
    let rows: Vec<TraceRow> = [1.0, 2.0, 4.0, 8.0, 16.0]
        .into_iter()
        .map(|gamma| {
            let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
            cfg.cc.gamma = gamma;
            trace_row(gamma, &cfg)
        })
        .collect();
    let optimal = fig1_trace(1, Algorithm::CircuitStart)
        .model()
        .optimal_source_cwnd_cells();
    let t = print_rows("A1: γ sweep (fig-1a geometry)", "gamma", optimal, &rows);
    write_figure("ablation_gamma", &t);
}

/// A1b: round-overrun threshold θ (the budget that times the
/// compensation measurement).
fn sweep_theta() {
    let rows: Vec<TraceRow> = [0.5, 0.75, 1.0, 1.5, 2.0]
        .into_iter()
        .map(|theta| {
            let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
            cfg.cc.theta = theta;
            trace_row(theta, &cfg)
        })
        .collect();
    let optimal = fig1_trace(1, Algorithm::CircuitStart)
        .model()
        .optimal_source_cwnd_cells();
    let t = print_rows("A1b: θ sweep (fig-1a geometry)", "theta", optimal, &rows);
    write_figure("ablation_theta", &t);
}

/// A2: initial window.
fn sweep_init_cwnd() {
    let rows: Vec<TraceRow> = [2u32, 4, 8, 16]
        .into_iter()
        .map(|w| {
            let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
            cfg.cc.init_cwnd = w;
            cfg.cc.min_cwnd = 2.min(w);
            trace_row(f64::from(w), &cfg)
        })
        .collect();
    let optimal = fig1_trace(1, Algorithm::CircuitStart)
        .model()
        .optimal_source_cwnd_cells();
    let t = print_rows("A2: initial-window sweep", "init_cwnd", optimal, &rows);
    write_figure("ablation_init_cwnd", &t);
}

/// A3: compensation variants — the heart of the paper, ablated.
fn sweep_compensation() {
    println!("\n━━━ A3: ramp-exit policy (fig-1a geometry, optimum ≈ 50 cells) ━━━");
    println!(
        "  {:<22}  {:>6}  {:>9}  {:>11}  {:>8}",
        "policy", "peak", "exit→cwnd", "settle [ms]", "ttlb [s]"
    );
    let mut table = Table::new(vec![
        "variant",
        "peak_cells",
        "exit_cwnd",
        "settle_ms",
        "ttlb_s",
    ]);
    for (i, (label, algorithm)) in [
        ("compensation (paper)", Algorithm::CircuitStart),
        ("halving (traditional)", Algorithm::ClassicBacktap),
        ("none: vegas only", Algorithm::NoSlowStart),
        ("none: jumpstart(100)", Algorithm::JumpStart(100)),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = fig1_trace(1, algorithm);
        let r = trace_row(i as f64, &cfg);
        println!(
            "  {label:<22}  {:>6}  {:>9}  {:>11}  {:>8.3}",
            r.peak,
            r.exit_cwnd,
            r.settle_ms
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "never".into()),
            r.ttlb_s
        );
        table.push_row(&[
            r.x,
            f64::from(r.peak),
            f64::from(r.exit_cwnd),
            r.settle_ms.unwrap_or(-1.0),
            r.ttlb_s,
        ]);
    }
    write_figure("ablation_compensation", &table);
}

/// A4: bottleneck distance.
fn sweep_distance() {
    let rows: Vec<TraceRow> = (0..=3)
        .map(|d| trace_row(d as f64, &fig1_trace(d, Algorithm::CircuitStart)))
        .collect();
    let optimal = fig1_trace(1, Algorithm::CircuitStart)
        .model()
        .optimal_source_cwnd_cells();
    let t = print_rows(
        "A4: bottleneck-distance sweep (CircuitStart)",
        "distance",
        optimal,
        &rows,
    );
    write_figure("ablation_distance", &t);
}

/// A5: concurrent-circuit load on the fig-1c topology.
fn sweep_load() {
    println!("\n━━━ A5: load sweep (fig-1c topology, 1 repetition) ━━━");
    println!(
        "  {:>8}  {:>22}  {:>22}",
        "circuits", "circuitstart p50/p90", "plain backtap p50/p90"
    );
    let mut table = Table::new(vec![
        "circuits",
        "cs_p50",
        "cs_p90",
        "backtap_p50",
        "backtap_p90",
    ]);
    for circuits in [10usize, 25, 50, 75] {
        let mut cfg = fig1_cdf();
        cfg.star.circuits = circuits;
        cfg.repetitions = 1;
        cfg.algorithms = vec![Algorithm::CircuitStart, Algorithm::NoSlowStart];
        let report = run_cdf(&cfg);
        let cs = &report.get("circuitstart").unwrap().cdf;
        let bt = &report.get("no-slow-start").unwrap().cdf;
        println!(
            "  {circuits:>8}  {:>10.3}/{:<10.3}  {:>10.3}/{:<10.3}",
            cs.median(),
            cs.quantile(0.9),
            bt.median(),
            bt.quantile(0.9)
        );
        table.push_row(&[
            circuits as f64,
            cs.median(),
            cs.quantile(0.9),
            bt.median(),
            bt.quantile(0.9),
        ]);
    }
    write_figure("ablation_load", &table);
}

/// A7: path-selection policy sweep on the fig-1c topology — the
/// placement axis the `PathSelection` seam opens (DESIGN.md §9). The
/// same relay population, workload, and controller (CircuitStart) under
/// each of the four shipped policies, paired seeds throughout.
fn sweep_policies() {
    println!("\n━━━ A7: path-selection policy sweep (fig-1c topology, 25 circuits) ━━━");
    println!(
        "  {:<12}  {:>9}  {:>9}  {:>9}",
        "policy", "p50 [s]", "p90 [s]", "worst [s]"
    );
    let mut table = Table::new(vec!["policy", "p50_s", "p90_s", "worst_s"]);
    for (i, policy) in all_policies().into_iter().enumerate() {
        let mut cfg = policy_cdf(policy.clone());
        cfg.star.circuits = 25;
        cfg.repetitions = 1;
        let report = run_cdf(&cfg);
        let cdf = &report.get("circuitstart").unwrap().cdf;
        println!(
            "  {:<12}  {:>9.3}  {:>9.3}  {:>9.3}",
            policy.name(),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.max()
        );
        table.push_row(&[i as f64, cdf.median(), cdf.quantile(0.9), cdf.max()]);
    }
    write_figure("ablation_policies", &table);
}

/// A6: mid-flow bandwidth change — the future-work extension.
fn sweep_midflow() {
    println!("\n━━━ A6: mid-flow bottleneck upgrade (10 → 40 Mbit/s at 500 ms) ━━━");
    println!(
        "  {:<24}  {:>9}  {:>16}",
        "algorithm", "ttlb [s]", "post-change peak"
    );
    let mut table = Table::new(vec!["variant", "ttlb_s", "post_change_peak"]);
    for (i, (label, algorithm)) in [
        ("adaptive circuitstart", Algorithm::AdaptiveCircuitStart),
        ("plain circuitstart", Algorithm::CircuitStart),
        ("plain backtap", Algorithm::NoSlowStart),
    ]
    .into_iter()
    .enumerate()
    {
        let base = fig1_trace(1, algorithm);
        let mut hops = base.hops();
        hops[1].rate = Bandwidth::from_mbps(10);
        let scenario = PathScenario {
            hops,
            file_bytes: 4 << 20,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, handles) = scenario.build(algorithm.factory(base.cc), 3);
        sim.schedule_at(
            SimTime::from_millis(500),
            TorEvent::SetLinkRate {
                link: handles.fwd_links[1],
                rate: Bandwidth::from_mbps(40),
            },
        );
        run_to_completion(&mut sim);
        let world = sim.world();
        let result = world.result_of(handles.circ);
        assert!(result.completed);
        let ttlb = result.transfer_time().unwrap().as_secs_f64();
        let post_peak = world
            .source_cwnd_trace(handles.circ)
            .unwrap()
            .iter()
            .filter(|&&(t, _)| t > SimTime::from_millis(500))
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0);
        println!("  {label:<24}  {ttlb:>9.3}  {post_peak:>16}");
        table.push_row(&[i as f64, ttlb, f64::from(post_peak)]);
    }
    write_figure("ablation_midflow", &table);
}

fn main() {
    let opts = Options::from_env();
    let picks = opts.positional();
    let all = picks.is_empty();
    let want = |name: &str| all || picks.contains(&name);

    if want("gamma") {
        sweep_gamma();
    }
    if want("theta") {
        sweep_theta();
    }
    if want("init-cwnd") {
        sweep_init_cwnd();
    }
    if want("compensation") {
        sweep_compensation();
    }
    if want("distance") {
        sweep_distance();
    }
    if want("load") {
        sweep_load();
    }
    if want("midflow") {
        sweep_midflow();
    }
    if want("policies") {
        sweep_policies();
    }
}
