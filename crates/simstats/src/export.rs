//! Plain-text exporters for experiment results.
//!
//! Three formats are supported, all trivially consumable:
//!
//! * **CSV** with a header row — for spreadsheets and pandas.
//! * **gnuplot `.dat`** — whitespace-separated columns with `#` comments,
//!   the format the original paper's plots were produced from.
//! * **Prometheus text exposition** — [`prometheus_text`] renders a
//!   [`MetricsRegistry`] (plus optional gauge-valued extras such as
//!   sketch quantiles) for scraping or golden-file comparison.
//!
//! The writers are deliberately dependency-free (no serde): every artifact
//! is a flat numeric table. See DESIGN.md §7 and §13.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::registry::{MetricKind, MetricsRegistry};

/// A named numeric column set — the common denominator of everything the
/// harness exports (cwnd traces, CDF points, sweep tables).
///
/// All columns must have equal length.
///
/// # Examples
///
/// ```
/// use simstats::export::Table;
///
/// let mut t = Table::new(vec!["time_ms", "cwnd_kb"]);
/// t.push_row(&[0.0, 1.0]);
/// t.push_row(&[1.0, 2.0]);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("time_ms,cwnd_kb\n0,1\n"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "Table requires at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != column count {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row.to_vec());
    }

    /// Builds a table from `(x, y)` pairs with two column names.
    pub fn from_pairs<S: Into<String>>(x_name: S, y_name: S, pairs: &[(f64, f64)]) -> Self {
        let mut t = Table::new(vec![x_name.into(), y_name.into()]);
        for &(x, y) in pairs {
            t.push_row(&[x, y]);
        }
        t
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders a number compactly: integers without a decimal point,
    /// everything else with up to 9 significant digits. Shared with the
    /// Prometheus exporter so every text format renders values the same
    /// way.
    pub(crate) fn fmt_num(v: f64) -> String {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            let s = format!("{v:.9}");
            // Trim trailing zeros but keep at least one decimal digit.
            let trimmed = s.trim_end_matches('0');
            let trimmed = if trimmed.ends_with('.') {
                &s[..trimmed.len() + 1]
            } else {
                trimmed
            };
            trimmed.to_string()
        }
    }

    /// Serializes to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|&v| Self::fmt_num(v)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Serializes to a gnuplot-ready `.dat` block: `#`-prefixed header,
    /// whitespace-separated columns.
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.headers.join("\t"));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|&v| Self::fmt_num(v)).collect();
            out.push_str(&line.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Writes the gnuplot rendering to `path`, creating parent directories.
    pub fn write_gnuplot(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_gnuplot())
    }
}

/// Renders a [`MetricsRegistry`] in the Prometheus text exposition
/// format: a `# HELP` / `# TYPE` pair followed by the sample line, one
/// family per metric.
///
/// `extra_gauges` are float-valued gauges appended to the same exposition
/// — the slot for derived, merge-then-query values such as sketch
/// quantiles, which must be computed *after* aggregation and so never
/// live inside a per-shard registry (DESIGN.md §13). They follow the
/// gauge naming rules.
///
/// Output is sorted by metric name, so the rendering is a pure function
/// of the metric *set* — registries merged in any shard order export
/// byte-identical text (the property the golden-file smoke pins).
///
/// # Examples
///
/// ```
/// use simstats::registry::MetricsRegistry;
/// use simstats::export::prometheus_text;
///
/// let mut reg = MetricsRegistry::new();
/// let c = reg.counter("cells_sent_total", "cells put on the wire");
/// reg.add(c, 42);
/// let text = prometheus_text(&reg, &[("sim_p99_seconds", "tail latency", 1.25)]);
/// assert!(text.contains("# TYPE cells_sent_total counter\ncells_sent_total 42\n"));
/// assert!(text.contains("sim_p99_seconds 1.25\n"));
/// ```
pub fn prometheus_text(registry: &MetricsRegistry, extra_gauges: &[(&str, &str, f64)]) -> String {
    let mut entries: Vec<(&str, &str, MetricKind, String)> = registry
        .sorted_entries()
        .map(|(name, help, kind, value)| (name, help, kind, Table::fmt_num(value as f64)))
        .collect();
    for &(name, help, value) in extra_gauges {
        crate::registry::validate_name(name, MetricKind::Gauge);
        assert!(
            !value.is_nan(),
            "Prometheus gauge {name:?} is NaN — refuse to export a poisoned value"
        );
        entries.push((name, help, MetricKind::Gauge, Table::fmt_num(value)));
    }
    entries.sort_by_key(|&(name, ..)| name);
    for pair in entries.windows(2) {
        assert!(
            pair[0].0 != pair[1].0,
            "duplicate metric name {:?} in Prometheus export",
            pair[0].0
        );
    }
    let mut out = String::new();
    for (name, help, kind, value) in entries {
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_shape() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(&[1.0, 2.5, -3.0]);
        t.push_row(&[4.0, 0.125, 6.0]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["a,b,c", "1,2.5,-3", "4,0.125,6"]);
    }

    #[test]
    fn gnuplot_has_comment_header() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(&[1.0, 2.0]);
        let dat = t.to_gnuplot();
        assert!(dat.starts_with("# x\ty\n1\t2\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn from_pairs_builds_two_columns() {
        let t = Table::from_pairs("t", "v", &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.headers(), &["t".to_string(), "v".to_string()]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Table::fmt_num(3.0), "3");
        assert_eq!(Table::fmt_num(-2.0), "-2");
        assert_eq!(Table::fmt_num(0.5), "0.5");
        assert_eq!(Table::fmt_num(1.0 / 3.0), "0.333333333");
        assert_eq!(Table::fmt_num(0.0), "0");
    }

    #[test]
    fn prometheus_text_renders_sorted_families() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("zz_late_total", "registered first, sorts last");
        let a = reg.counter("aa_early_total", "registered last, sorts first");
        reg.add(b, 2);
        reg.add(a, 1);
        let g = reg.gauge("relays_live", "live relays");
        reg.set(g, 7);
        let text = prometheus_text(&reg, &[("sim_p99_seconds", "tail", 0.5)]);
        let expected = "\
# HELP aa_early_total registered last, sorts first
# TYPE aa_early_total counter
aa_early_total 1
# HELP relays_live live relays
# TYPE relays_live gauge
relays_live 7
# HELP sim_p99_seconds tail
# TYPE sim_p99_seconds gauge
sim_p99_seconds 0.5
# HELP zz_late_total registered first, sorts last
# TYPE zz_late_total counter
zz_late_total 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_text_is_merge_order_independent() {
        let mk = |names: &[(&str, u64)]| {
            let mut reg = MetricsRegistry::new();
            for &(name, v) in names {
                let id = reg.counter(name, "h");
                reg.add(id, v);
            }
            reg
        };
        let a = mk(&[("a_total", 1), ("c_total", 3)]);
        let b = mk(&[("b_total", 2)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(prometheus_text(&ab, &[]), prometheus_text(&ba, &[]));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn prometheus_text_rejects_duplicate_names() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("relays_live", "live relays");
        prometheus_text(&reg, &[("relays_live", "collides", 1.0)]);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn prometheus_text_rejects_nan_gauge() {
        prometheus_text(
            &MetricsRegistry::new(),
            &[("sim_p99_seconds", "tail", f64::NAN)],
        );
    }

    #[test]
    fn write_files_roundtrip() {
        let dir = std::env::temp_dir().join("simstats-test-export");
        let _ = fs::remove_dir_all(&dir);
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(&[1.0, 2.0]);
        let csv_path = dir.join("sub/t.csv");
        let dat_path = dir.join("sub/t.dat");
        t.write_csv(&csv_path).unwrap();
        t.write_gnuplot(&dat_path).unwrap();
        assert_eq!(fs::read_to_string(&csv_path).unwrap(), t.to_csv());
        assert_eq!(fs::read_to_string(&dat_path).unwrap(), t.to_gnuplot());
        let _ = fs::remove_dir_all(&dir);
    }
}
