//! The overlay's event type.

use netsim::bandwidth::Bandwidth;
use netsim::link::LinkId;
use netsim::net::NetEvent;

use crate::ids::CircId;

/// Everything that can happen in a [`crate::network::TorNetwork`].
#[derive(Clone, Copy, Debug)]
pub enum TorEvent {
    /// A link-layer event (serialization finished / frame arrived).
    Net(NetEvent),
    /// A client begins building circuit `0` and transferring once built.
    StartCircuit(CircId),
    /// A client initiates teardown of an established circuit.
    Teardown(CircId),
    /// A staggered stream's arrival offset elapsed: the client issues
    /// the request (BEGIN) on stream index `stream` of `circ`.
    StreamArrival {
        /// The carrying circuit.
        circ: CircId,
        /// Index into the circuit's stream list.
        stream: u32,
    },
    /// A fully torn-down circuit's unfinished flows are re-attached to a
    /// fresh circuit over the same path (churn rebuild).
    Rebuild(CircId),
    /// A consensus epoch boundary: the network applies directory delta
    /// `epoch` (relays join/leave), tearing down circuits that cross a
    /// departing relay so their flows rebuild under the live policy.
    Epoch(u32),
    /// Change a link's rate mid-run (bandwidth-change experiments for the
    /// paper's future-work extension).
    SetLinkRate {
        /// Which link.
        link: LinkId,
        /// The new rate.
        rate: Bandwidth,
    },
}

impl From<NetEvent> for TorEvent {
    fn from(e: NetEvent) -> Self {
        TorEvent::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::LinkId;

    #[test]
    fn net_events_embed() {
        // LinkId has a crate-private constructor; round-trip through a Net.
        let mut net: netsim::net::Net<crate::wire::WireFrame> = netsim::net::Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let link: LinkId = net.add_link(
            a,
            b,
            netsim::link::LinkConfig::new(
                netsim::bandwidth::Bandwidth::from_mbps(1),
                simcore::time::SimDuration::ZERO,
            ),
        );
        let ev: TorEvent = NetEvent::Deliver { link }.into();
        assert!(matches!(ev, TorEvent::Net(NetEvent::Deliver { .. })));
    }
}
