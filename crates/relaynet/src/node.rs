//! Per-node overlay state.
//!
//! Each overlay node (client, relay, or server) keeps, per circuit it
//! participates in, a [`NodeCircuit`]: the per-direction hop transports
//! and queues, the relay-side onion layer, and — at the endpoints — the
//! application state machines.
//!
//! Participations live in a dense slab (`Vec<NodeCircuit>`) indexed by a
//! node-local id handed out at join time; the per-cell pipeline resolves
//! straight to that index through the network-level route table
//! (`relaynet::network`) and never walks a map. A small `BTreeMap` keyed
//! by the global [`CircId`] serves only cold paths — setup, teardown, and
//! telemetry. Torn-down participations are reclaimed through a free list
//! (`remove_circuit`), so churning workloads reuse slots instead of
//! growing the slab. (Deterministic by construction: nothing here is
//! iterated in hash order.)

use std::collections::{BTreeMap, VecDeque};

use backtap::cc::CongestionControl;
use backtap::hop::HopTransport;
use netsim::net::NodeId;
use simcore::time::{SimDuration, SimTime};
use torcell::cell::{Cell, HANDSHAKE_LEN};
use torcell::crypto::{OnionRoute, RelayCrypt};
use torcell::ids::{CircuitId, StreamId};

use crate::ids::{CircId, Direction, OverlayId};
use crate::workload::{FlowId, StreamSpec};

/// What kind of overlay participant a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// Originates circuits and data (the onion proxy).
    Client,
    /// Forwards cells between neighbours.
    Relay,
    /// Terminates circuits and consumes data.
    Server,
}

/// Context handed to the congestion-controller factory for every hop
/// transport created.
#[derive(Clone, Copy, Debug)]
pub struct HopCtx {
    /// Which circuit the transport belongs to.
    pub circuit: CircId,
    /// The owning node's position on the path (0 = client).
    pub position: usize,
    /// Which direction the transport sends in.
    pub direction: Direction,
}

/// Creates the congestion controller for a hop transport.
///
/// The experiment harness supplies this; it is how the CircuitStart
/// algorithm (which lives above this crate) is plugged into the overlay.
pub type CcFactory = Box<dyn Fn(&HopCtx) -> Box<dyn CongestionControl + Send>>;

/// Feedback owed to the neighbour a cell arrived from, payable at the
/// moment the cell is forwarded (relays) or consumed (endpoints).
#[derive(Clone, Copy, Debug)]
pub struct PendingConfirm {
    /// Neighbour to notify.
    pub neighbor: OverlayId,
    /// Link-local circuit id on that neighbour's connection.
    pub circ_id: CircuitId,
    /// The neighbour's per-hop sequence number for the cell.
    pub seq: u64,
}

/// A cell waiting in a hop's egress queue.
#[derive(Clone, Debug)]
pub struct QueuedCell {
    /// The cell (its `circ` field is restamped at send time).
    pub cell: Cell,
    /// Feedback owed upstream once this cell leaves the queue.
    pub confirm: Option<PendingConfirm>,
    /// For client-originated relay cells: the hop (layer index) that must
    /// recognize the cell; onion wrapping happens at dequeue so that layer
    /// counters advance in exact send order.
    pub wrap_for_hop: Option<usize>,
}

/// One direction of one circuit at one node: the transport toward the
/// neighbour plus the queue of cells waiting for the window.
pub struct HopDir {
    /// The adjacent overlay node this hop sends to.
    pub neighbor: OverlayId,
    /// Link-local circuit id stamped on every cell sent on this hop.
    pub link_circ_id: CircuitId,
    /// Window/feedback machinery.
    pub transport: HopTransport,
    /// Cells awaiting window credit.
    pub queue: VecDeque<QueuedCell>,
    /// Largest queue length observed (bounded by the predecessor's window
    /// — the backpressure property the tests assert).
    pub queue_hwm: usize,
}

impl HopDir {
    /// Creates a hop direction.
    pub fn new(neighbor: OverlayId, link_circ_id: CircuitId, transport: HopTransport) -> HopDir {
        HopDir {
            neighbor,
            link_circ_id,
            transport,
            queue: VecDeque::new(),
            queue_hwm: 0,
        }
    }

    /// Enqueues a cell and updates the high-water mark.
    pub fn enqueue(&mut self, qc: QueuedCell) {
        self.queue.push_back(qc);
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
    }

    /// `true` once every sent cell is confirmed and nothing is queued —
    /// the per-direction half of the teardown quiescence condition.
    pub fn quiescent(&self) -> bool {
        self.queue.is_empty() && self.transport.outstanding() == 0
    }
}

/// Client-side circuit state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientStage {
    /// Waiting for CREATED/EXTENDED of hop `next` (1 = first relay).
    Building {
        /// Index into the path of the hop being created.
        next: usize,
    },
    /// Circuit built; streams open (BEGIN/CONNECTED) and transfer
    /// independently.
    Established,
    /// Torn down; no further cells are generated.
    Closed,
}

/// Client-side state of one stream multiplexed over a circuit.
#[derive(Clone, Copy, Debug)]
pub struct StreamState {
    /// Stream id on the wire (1-based; 0 is the circuit-control stream).
    pub id: StreamId,
    /// The flow this stream carries.
    pub flow: FlowId,
    /// Payload bytes to transfer on this circuit incarnation.
    pub bytes: u64,
    /// DATA cells the transfer needs.
    pub total_cells: u64,
    /// DATA cells sent so far.
    pub sent_cells: u64,
    /// Arrival offset after circuit start.
    pub offset: SimDuration,
    /// The arrival offset has elapsed — the request exists.
    pub arrived: bool,
    /// BEGIN handed to the egress queue.
    pub begin_sent: bool,
    /// CONNECTED received — DATA may flow.
    pub open: bool,
    /// Trailing END handed to the egress queue.
    pub end_sent: bool,
}

impl StreamState {
    /// Creates client stream state from a resolved spec.
    pub fn new(index: usize, spec: &StreamSpec) -> StreamState {
        assert!(spec.bytes > 0, "cannot transfer an empty stream");
        let payload = torcell::cell::RELAY_DATA_MAX as u64;
        StreamState {
            id: StreamId(u16::try_from(index + 1).expect("too many streams")),
            flow: spec.flow,
            bytes: spec.bytes,
            total_cells: spec.bytes.div_ceil(payload),
            sent_cells: 0,
            offset: spec.offset,
            arrived: spec.offset.is_zero(),
            begin_sent: false,
            open: false,
            end_sent: false,
        }
    }

    /// Bytes the DATA cell with per-stream index `idx` carries.
    pub fn cell_len(&self, idx: u64) -> usize {
        let payload = torcell::cell::RELAY_DATA_MAX as u64;
        if idx + 1 < self.total_cells {
            payload as usize
        } else {
            (self.bytes - (self.total_cells - 1) * payload) as usize
        }
    }
}

/// Client application state for one circuit.
pub struct ClientApp {
    /// Full path including the client itself and the server.
    pub path: Vec<OverlayId>,
    /// Onion layers negotiated so far.
    pub route: OnionRoute,
    /// Build/transfer stage.
    pub stage: ClientStage,
    /// Total payload bytes across all streams.
    pub file_bytes: u64,
    /// Streams multiplexed over this circuit, in stream-id order.
    pub streams: Vec<StreamState>,
    /// Round-robin cursor for DATA generation across open streams.
    pub rr_cursor: usize,
    /// Circuit-aggregate DATA cells sent — the fill-pattern index (the
    /// server verifies against its aggregate arrival count; delivery is
    /// FIFO along the single path, so the counters agree).
    pub sent_cells: u64,
    /// When the circuit build started.
    pub started_at: SimTime,
    /// When the first CONNECTED arrived (the circuit carries traffic).
    pub connected_at: Option<SimTime>,
    /// When the first DATA cell was sent.
    pub first_data_at: Option<SimTime>,
}

impl ClientApp {
    /// Creates client state for the given resolved streams over `path`.
    ///
    /// # Panics
    ///
    /// Panics if the path is shorter than client + server, there are no
    /// streams, or any stream is empty.
    pub fn new(path: Vec<OverlayId>, streams: &[StreamSpec], started_at: SimTime) -> ClientApp {
        assert!(
            path.len() >= 2,
            "a circuit needs at least client and server"
        );
        assert!(!streams.is_empty(), "a circuit needs at least one stream");
        let streams: Vec<StreamState> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| StreamState::new(i, s))
            .collect();
        ClientApp {
            path,
            route: OnionRoute::new(),
            stage: ClientStage::Building { next: 1 },
            file_bytes: streams.iter().map(|s| s.bytes).sum(),
            streams,
            rr_cursor: 0,
            sent_cells: 0,
            started_at,
            connected_at: None,
            first_data_at: None,
        }
    }

    /// Single-bulk-transfer convenience (the pre-workload shape): one
    /// stream of `file_bytes`, arriving immediately.
    pub fn bulk(path: Vec<OverlayId>, file_bytes: u64, started_at: SimTime) -> ClientApp {
        assert!(file_bytes > 0, "cannot transfer an empty file");
        let spec = StreamSpec {
            flow: FlowId(0),
            bytes: file_bytes,
            offset: SimDuration::ZERO,
        };
        ClientApp::new(path, &[spec], started_at)
    }

    /// The layer index of the server (the hop that recognizes DATA).
    pub fn server_hop(&self) -> usize {
        self.path.len() - 2
    }

    /// The stream carrying wire id `id`, if any.
    pub fn stream_mut(&mut self, id: StreamId) -> Option<&mut StreamState> {
        let idx = (id.0 as usize).checked_sub(1)?;
        self.streams.get_mut(idx)
    }
}

/// Server-side state of one stream.
#[derive(Clone, Copy, Debug)]
pub struct ServerStream {
    /// Stream id on the wire.
    pub id: StreamId,
    /// Stream established (BEGIN processed, CONNECTED answered).
    pub open: bool,
    /// END received.
    pub ended: bool,
    /// DATA cells consumed on this stream.
    pub cells_received: u64,
    /// Payload bytes consumed on this stream.
    pub bytes_received: u64,
}

/// Server application state for one circuit.
#[derive(Clone, Debug, Default)]
pub struct ServerApp {
    /// Streams the circuit's workload will open (known to the simulator's
    /// registry; used only to decide when the circuit's work is done).
    pub expected_streams: usize,
    /// Per-stream accounting, indexed by stream id (`streams[i]` carries
    /// `StreamId(i + 1)`; ids are dense and 1-based by construction).
    pub streams: Vec<ServerStream>,
    /// Streams that have received their END.
    pub streams_ended: usize,
    /// DATA cells consumed (all streams).
    pub cells_received: u64,
    /// Payload bytes consumed (all streams).
    pub bytes_received: u64,
    /// Arrival time of the first DATA cell.
    pub first_byte_at: Option<SimTime>,
    /// Arrival time of the most recent DATA cell.
    pub last_byte_at: Option<SimTime>,
    /// Every expected stream opened and ENDed — transfer complete.
    pub ended: bool,
    /// Payload-verification failures (must stay 0).
    pub payload_errors: u64,
}

impl ServerApp {
    /// Creates server state expecting `expected_streams` streams, each
    /// closed until its BEGIN arrives.
    pub fn new(expected_streams: usize) -> ServerApp {
        ServerApp {
            expected_streams,
            streams: (0..expected_streams)
                .map(|i| ServerStream {
                    id: StreamId(u16::try_from(i + 1).expect("too many streams")),
                    open: false,
                    ended: false,
                    cells_received: 0,
                    bytes_received: 0,
                })
                .collect(),
            ..ServerApp::default()
        }
    }

    /// The per-stream record for `id`, if the workload defines it —
    /// an O(1) index on the per-DATA-cell path (`open` says whether its
    /// BEGIN has arrived).
    pub fn stream_mut(&mut self, id: StreamId) -> Option<&mut ServerStream> {
        let idx = (id.0 as usize).checked_sub(1)?;
        self.streams.get_mut(idx)
    }
}

/// A node's participation in one circuit.
pub struct NodeCircuit {
    /// Global circuit id (simulator bookkeeping).
    pub circ: CircId,
    /// This node's position on the path (0 = client).
    pub position: usize,
    /// Neighbour toward the client, if any.
    pub pred: Option<OverlayId>,
    /// Link-local id on the predecessor connection.
    pub pred_circ_id: Option<CircuitId>,
    /// Transport and queue toward the server (None at the server).
    pub fwd: Option<HopDir>,
    /// Transport and queue toward the client (None at the client).
    pub bwd: Option<HopDir>,
    /// Relay-side onion layer (None at the client).
    pub crypt: Option<RelayCrypt>,
    /// Handshake blob of an EXTEND in progress, echoed in EXTENDED.
    pub pending_extend: Option<[u8; HANDSHAKE_LEN]>,
    /// Client application (only at position 0).
    pub client: Option<ClientApp>,
    /// Server application (only at the last position).
    pub server: Option<ServerApp>,
    /// Circuit has been torn down (DESTROY seen); late cells are dropped.
    pub closed: bool,
    /// The forward teardown wave (client → server) has passed this node.
    pub destroy_fwd: bool,
    /// The backward teardown echo (server → client) has passed this node.
    pub destroy_bwd: bool,
}

impl NodeCircuit {
    /// Creates an empty participation record.
    pub fn new(circ: CircId, position: usize) -> NodeCircuit {
        NodeCircuit {
            circ,
            position,
            pred: None,
            pred_circ_id: None,
            fwd: None,
            bwd: None,
            crypt: None,
            pending_extend: None,
            client: None,
            server: None,
            closed: false,
            destroy_fwd: false,
            destroy_bwd: false,
        }
    }

    /// The placeholder stored in a reclaimed slab slot.
    pub fn vacant() -> NodeCircuit {
        let mut nc = NodeCircuit::new(CircId(u32::MAX), usize::MAX);
        nc.closed = true;
        nc
    }

    /// Whether this slot holds a live participation.
    pub fn is_vacant(&self) -> bool {
        self.circ == CircId(u32::MAX)
    }

    /// The hop direction that *sends to* `neighbor`, used to route
    /// feedback to the right transport.
    pub fn hopdir_toward_mut(&mut self, neighbor: OverlayId) -> Option<&mut HopDir> {
        if self.fwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return self.fwd.as_mut();
        }
        if self.bwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return self.bwd.as_mut();
        }
        None
    }

    /// The direction of the hop that sends to `neighbor`.
    pub fn direction_toward(&self, neighbor: OverlayId) -> Option<Direction> {
        if self.fwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return Some(Direction::Forward);
        }
        if self.bwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return Some(Direction::Backward);
        }
        None
    }

    /// Teardown quiescence: both waves seen, every sent cell confirmed,
    /// nothing queued. Once true, no further frame can arrive for this
    /// participation and its slots are safe to reclaim (DESIGN.md §8).
    pub fn reclaimable(&self) -> bool {
        self.closed
            && self.destroy_fwd
            && self.destroy_bwd
            && self.fwd.as_ref().is_none_or(HopDir::quiescent)
            && self.bwd.as_ref().is_none_or(HopDir::quiescent)
    }
}

/// An overlay node: identity plus all per-circuit state.
pub struct OverlayNode {
    /// Overlay id.
    pub id: OverlayId,
    /// Backing network node.
    pub net_node: NodeId,
    /// Participant kind.
    pub role: NodeRole,
    /// Diagnostic name.
    pub name: String,
    /// Per-circuit state, dense by node-local index (slab; torn-down
    /// participations are reclaimed through `free_slots`).
    circuits: Vec<NodeCircuit>,
    /// Reclaimed slab indices awaiting reuse (LIFO for determinism).
    free_slots: Vec<u32>,
    /// Cold-path lookup: global circuit id → node-local index. The
    /// per-cell pipeline bypasses this via the route table.
    by_global: BTreeMap<CircId, u32>,
}

impl OverlayNode {
    /// Creates a node.
    pub fn new(id: OverlayId, net_node: NodeId, role: NodeRole, name: String) -> OverlayNode {
        OverlayNode {
            id,
            net_node,
            role,
            name,
            circuits: Vec::new(),
            free_slots: Vec::new(),
            by_global: BTreeMap::new(),
        }
    }

    /// Registers a participation, returning its node-local index.
    /// Reuses a reclaimed slot when one is free.
    pub fn add_circuit(&mut self, nc: NodeCircuit) -> u32 {
        let circ = nc.circ;
        let local = match self.free_slots.pop() {
            Some(local) => {
                debug_assert!(self.circuits[local as usize].is_vacant());
                self.circuits[local as usize] = nc;
                local
            }
            None => {
                self.circuits.push(nc);
                u32::try_from(self.circuits.len() - 1).expect("too many circuits at one node")
            }
        };
        self.by_global.insert(circ, local);
        local
    }

    /// Reclaims a participation's slab slot: the slot is vacated, the
    /// global-id mapping dropped, and the index queued for reuse.
    pub fn remove_circuit(&mut self, local: u32) {
        let old = std::mem::replace(&mut self.circuits[local as usize], NodeCircuit::vacant());
        debug_assert!(!old.is_vacant(), "double-free of a circuit slot");
        self.by_global.remove(&old.circ);
        self.free_slots.push(local);
    }

    /// The node-local index of a circuit, if this node participates.
    pub fn local_idx(&self, circ: CircId) -> Option<u32> {
        self.by_global.get(&circ).copied()
    }

    /// Participation by node-local index (the hot path; indexes resolve
    /// through the route table).
    #[inline]
    pub fn circuit_at(&self, local: u32) -> &NodeCircuit {
        &self.circuits[local as usize]
    }

    /// Mutable participation by node-local index.
    #[inline]
    pub fn circuit_at_mut(&mut self, local: u32) -> &mut NodeCircuit {
        &mut self.circuits[local as usize]
    }

    /// Participation by global circuit id (cold paths: setup, teardown,
    /// telemetry).
    pub fn circuit(&self, circ: CircId) -> Option<&NodeCircuit> {
        Some(self.circuit_at(self.local_idx(circ)?))
    }

    /// Mutable participation by global circuit id (cold paths).
    pub fn circuit_mut(&mut self, circ: CircId) -> Option<&mut NodeCircuit> {
        let local = self.local_idx(circ)?;
        Some(self.circuit_at_mut(local))
    }

    /// Slab capacity: live participations plus reclaimed slots. Stays
    /// flat across churn cycles — the invariant the property tests pin.
    pub fn slab_len(&self) -> usize {
        self.circuits.len()
    }

    /// Reclaimed slots awaiting reuse.
    pub fn free_slot_count(&self) -> usize {
        self.free_slots.len()
    }

    /// Number of live circuits this node participates in.
    pub fn circuit_count(&self) -> usize {
        self.by_global.len()
    }

    /// Every live participation as `(global circuit, node-local index)`,
    /// in global-id order (deterministic — the crash reaper iterates
    /// this while mutating the slab).
    pub fn participations(&self) -> Vec<(CircId, u32)> {
        self.by_global.iter().map(|(&c, &l)| (c, l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backtap::cc::FixedWindowCc;

    fn transport() -> HopTransport {
        HopTransport::new(Box::new(FixedWindowCc::new(4)))
    }

    #[test]
    fn client_app_cell_accounting() {
        let path = vec![OverlayId(0), OverlayId(1), OverlayId(2)];
        let app = ClientApp::bulk(path, 1000, SimTime::ZERO);
        // 1000 bytes / 496 per cell = 3 cells: 496 + 496 + 8.
        let s = &app.streams[0];
        assert_eq!(s.total_cells, 3);
        assert_eq!(s.cell_len(0), 496);
        assert_eq!(s.cell_len(1), 496);
        assert_eq!(s.cell_len(2), 8);
        assert_eq!(app.server_hop(), 1);
        assert_eq!(app.file_bytes, 1000);
    }

    #[test]
    fn client_app_exact_multiple() {
        let path = vec![OverlayId(0), OverlayId(1)];
        let app = ClientApp::bulk(path, 992, SimTime::ZERO);
        assert_eq!(app.streams[0].total_cells, 2);
        assert_eq!(app.streams[0].cell_len(1), 496);
    }

    #[test]
    fn client_app_single_byte() {
        let app = ClientApp::bulk(vec![OverlayId(0), OverlayId(1)], 1, SimTime::ZERO);
        assert_eq!(app.streams[0].total_cells, 1);
        assert_eq!(app.streams[0].cell_len(0), 1);
    }

    #[test]
    fn client_app_multi_stream() {
        let specs = [
            StreamSpec {
                flow: FlowId(0),
                bytes: 992,
                offset: SimDuration::ZERO,
            },
            StreamSpec {
                flow: FlowId(1),
                bytes: 500,
                offset: SimDuration::from_millis(5),
            },
        ];
        let mut app = ClientApp::new(
            vec![OverlayId(0), OverlayId(1), OverlayId(2)],
            &specs,
            SimTime::ZERO,
        );
        assert_eq!(app.file_bytes, 1492);
        assert_eq!(app.streams[0].id, StreamId(1));
        assert_eq!(app.streams[1].id, StreamId(2));
        assert!(app.streams[0].arrived, "offset 0 arrives immediately");
        assert!(!app.streams[1].arrived, "staggered stream waits");
        assert!(app.stream_mut(StreamId(2)).is_some());
        assert!(app.stream_mut(StreamId(3)).is_none());
        assert!(
            app.stream_mut(StreamId(0)).is_none(),
            "0 is circuit control"
        );
    }

    #[test]
    #[should_panic(expected = "empty file")]
    fn client_app_rejects_empty_file() {
        let _ = ClientApp::bulk(vec![OverlayId(0), OverlayId(1)], 0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "client and server")]
    fn client_app_rejects_short_path() {
        let _ = ClientApp::bulk(vec![OverlayId(0)], 10, SimTime::ZERO);
    }

    #[test]
    fn hopdir_queue_hwm() {
        let mut hd = HopDir::new(OverlayId(1), CircuitId(5), transport());
        for _ in 0..3 {
            hd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId(5), 0),
                confirm: None,
                wrap_for_hop: None,
            });
        }
        hd.queue.pop_front();
        hd.enqueue(QueuedCell {
            cell: Cell::destroy(CircuitId(5), 0),
            confirm: None,
            wrap_for_hop: None,
        });
        assert_eq!(hd.queue_hwm, 3);
        assert!(!hd.quiescent());
    }

    #[test]
    fn node_circuit_direction_resolution() {
        let mut nc = NodeCircuit::new(CircId(0), 1);
        nc.fwd = Some(HopDir::new(OverlayId(2), CircuitId(10), transport()));
        nc.bwd = Some(HopDir::new(OverlayId(0), CircuitId(11), transport()));
        assert_eq!(nc.direction_toward(OverlayId(2)), Some(Direction::Forward));
        assert_eq!(nc.direction_toward(OverlayId(0)), Some(Direction::Backward));
        assert_eq!(nc.direction_toward(OverlayId(9)), None);
        assert!(nc.hopdir_toward_mut(OverlayId(2)).is_some());
        assert!(nc.hopdir_toward_mut(OverlayId(9)).is_none());
    }

    #[test]
    fn reclaimable_needs_both_waves_and_quiescence() {
        let mut nc = NodeCircuit::new(CircId(0), 1);
        nc.fwd = Some(HopDir::new(OverlayId(2), CircuitId(10), transport()));
        assert!(!nc.reclaimable(), "live circuits are not reclaimable");
        nc.closed = true;
        nc.destroy_fwd = true;
        assert!(!nc.reclaimable(), "waiting for the backward wave");
        nc.destroy_bwd = true;
        assert!(nc.reclaimable());
        nc.fwd
            .as_mut()
            .unwrap()
            .transport
            .register_send(SimTime::ZERO);
        assert!(!nc.reclaimable(), "outstanding cells block reclamation");
    }

    #[test]
    fn slab_reuses_reclaimed_slots() {
        let mut node = OverlayNode::new(
            OverlayId(0),
            {
                let mut net: netsim::net::Net<crate::wire::WireFrame> = netsim::net::Net::new();
                net.add_node("n")
            },
            NodeRole::Relay,
            "relay".into(),
        );
        let a = node.add_circuit(NodeCircuit::new(CircId(0), 1));
        let b = node.add_circuit(NodeCircuit::new(CircId(1), 1));
        assert_eq!(node.slab_len(), 2);
        assert_eq!(node.circuit_count(), 2);
        node.remove_circuit(a);
        assert_eq!(node.circuit_count(), 1);
        assert_eq!(node.free_slot_count(), 1);
        assert!(node.local_idx(CircId(0)).is_none(), "mapping dropped");
        let c = node.add_circuit(NodeCircuit::new(CircId(2), 1));
        assert_eq!(c, a, "reclaimed slot is reused");
        assert_eq!(node.slab_len(), 2, "slab did not grow");
        assert_eq!(node.free_slot_count(), 0);
        assert_eq!(node.local_idx(CircId(1)), Some(b));
    }
}
