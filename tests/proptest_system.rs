//! System-level property tests: conservation, window invariants, and
//! monotonicity over randomly drawn topologies, file sizes, and seeds.
//! Case counts are tuned so the suite stays responsive in debug builds.

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use proptest::prelude::*;
use relaynet::{PathScenario, WorldConfig};
use simcore::time::SimDuration;

/// Arbitrary small path geometry: 1–4 relays, 5–80 Mbit/s links,
/// 1–12 ms delays.
fn arb_hops() -> impl Strategy<Value = Vec<LinkConfig>> {
    proptest::collection::vec((5u64..=80, 1u64..=12), 2..=5).prop_map(|raw| {
        raw.into_iter()
            .map(|(mbps, ms)| {
                LinkConfig::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis(ms))
            })
            .collect()
    })
}

fn run(
    hops: Vec<LinkConfig>,
    file_bytes: u64,
    algorithm: Algorithm,
    seed: u64,
) -> (relaynet::CircuitResult, relaynet::WorldStats, u64) {
    let scenario = PathScenario {
        hops,
        file_bytes,
        world: WorldConfig::default(),
    };
    let (mut sim, handles) = scenario.build(algorithm.factory(CcConfig::default()), seed);
    run_to_completion(&mut sim);
    let world = sim.world();
    (
        world.result_of(handles.circ),
        *world.stats(),
        world.net().total_drops(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cells are conserved: every payload byte the client offers arrives
    /// exactly once, unharmed, in order — for arbitrary geometry.
    #[test]
    fn conservation_over_random_paths(
        hops in arb_hops(),
        file_kb in 1u64..=120,
        seed in any::<u64>(),
    ) {
        let file = file_kb * 1000;
        let (result, stats, drops) = run(hops, file, Algorithm::CircuitStart, seed);
        prop_assert!(result.completed);
        prop_assert_eq!(result.bytes_delivered, file);
        prop_assert_eq!(result.cells_delivered, file.div_ceil(496));
        prop_assert_eq!(result.payload_errors, 0);
        prop_assert_eq!(stats.protocol_errors, 0);
        prop_assert_eq!(drops, 0);
    }

    /// Transfer time is monotone (within tolerance) in file size on a
    /// fixed path: more data never finishes faster.
    #[test]
    fn ttlb_monotone_in_file_size(
        hops in arb_hops(),
        small_kb in 5u64..=40,
        extra_kb in 10u64..=100,
        seed in any::<u64>(),
    ) {
        let small = small_kb * 1000;
        let big = small + extra_kb * 1000;
        let (r_small, _, _) = run(hops.clone(), small, Algorithm::CircuitStart, seed);
        let (r_big, _, _) = run(hops, big, Algorithm::CircuitStart, seed);
        prop_assert!(
            r_big.transfer_time().unwrap() >= r_small.transfer_time().unwrap(),
            "bigger file finished faster: {:?} vs {:?}",
            r_big.transfer_time(),
            r_small.transfer_time()
        );
    }

    /// The transfer never beats the analytical lower bound, regardless of
    /// geometry or algorithm.
    #[test]
    fn never_faster_than_the_ideal_pipeline(
        hops in arb_hops(),
        file_kb in 5u64..=80,
        algo_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let algorithm = [
            Algorithm::CircuitStart,
            Algorithm::ClassicBacktap,
            Algorithm::JumpStart(64),
        ][algo_pick];
        let file = file_kb * 1000;
        let model = PathModel::from_hops(&hops);
        let (result, _, _) = run(hops, file, algorithm, seed);
        prop_assert!(
            result.transfer_time().unwrap() >= model.ideal_transfer_time(file),
            "{algorithm:?} beat physics"
        );
    }

    /// The source window never leaves its configured bounds, for any
    /// geometry and any point in time.
    #[test]
    fn cwnd_respects_bounds_throughout(
        hops in arb_hops(),
        file_kb in 5u64..=60,
        seed in any::<u64>(),
    ) {
        let scenario = PathScenario {
            hops,
            file_bytes: file_kb * 1000,
            world: WorldConfig::default(),
        };
        let cc = CcConfig::default();
        let (mut sim, handles) = scenario.build(Algorithm::CircuitStart.factory(cc), seed);
        run_to_completion(&mut sim);
        let trace = sim.world().source_cwnd_trace(handles.circ).unwrap();
        for &(_, cwnd) in trace {
            prop_assert!(cwnd >= cc.min_cwnd && cwnd <= cc.max_cwnd);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism as a property: any configuration replayed with the
    /// same seed produces the identical transfer time.
    #[test]
    fn determinism_over_random_configs(
        hops in arb_hops(),
        file_kb in 5u64..=50,
        seed in any::<u64>(),
    ) {
        let file = file_kb * 1000;
        let (a, _, _) = run(hops.clone(), file, Algorithm::CircuitStart, seed);
        let (b, _, _) = run(hops, file, Algorithm::CircuitStart, seed);
        prop_assert_eq!(a.transfer_time(), b.transfer_time());
        prop_assert_eq!(a.last_byte_at, b.last_byte_at);
    }
}
