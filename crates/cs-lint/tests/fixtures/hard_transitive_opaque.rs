// cs-lint-fixture: path = "crates/relaynet/src/hard_opaque.rs"
// Call-graph conservatism: an (annotated) clock read behind AMBIGUOUS
// method dispatch taints no caller, calls through function values are
// opaque, and clock-free helper chains stay silent. ZERO findings.

struct Sampler;
struct Mirror;

impl Sampler {
    fn probe(&self) -> u64 {
        // cs-lint: allow(wall-clock, reason = "fixture: the one blessed read; reachability through ambiguous dispatch must stay opaque")
        let t = std::time::Instant::now();
        let _ = t;
        0
    }
}

impl Mirror {
    // Second `probe` definition: `x.probe()` resolves to nothing.
    fn probe(&self) -> u64 {
        1
    }
}

fn through_ambiguity(s: &Sampler) -> u64 {
    s.probe()
}

fn clockless() -> u64 {
    2
}

fn pick() -> fn() -> u64 {
    clockless
}

fn through_indirection() -> u64 {
    // A call through a function value produces no edge.
    let f = pick();
    f()
}

fn deep_but_clean() -> u64 {
    clockless() + through_indirection()
}
