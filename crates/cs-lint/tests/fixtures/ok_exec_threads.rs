// cs-lint-fixture: path = "crates/simcore/src/exec.rs"
// The executor seam is the one module allowed to create threads.
// ZERO findings.
fn run_scoped() {
    std::thread::scope(|scope| {
        let h = scope.spawn(|| 1);
        let _ = h;
    });
    let h = std::thread::spawn(|| 2);
    let _ = h;
}
