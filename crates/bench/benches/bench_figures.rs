//! Criterion end-to-end benches over the paper's workloads (groups
//! `fig1a`, `fig1b`, `fig1c` from DESIGN.md §5): wall-clock cost of
//! regenerating each figure panel, and a guard against performance
//! regressions in the full simulation stack.
//!
//! The panels run on reduced transfer sizes so a bench sweep stays in
//! seconds; the figure *binaries* run the full presets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use circuitstart::prelude::*;

fn bench_fig1_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig1_traces");
    group.sample_size(10);
    for distance in [1usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("circuitstart_200k", distance),
            &distance,
            |b, &distance| {
                let mut cfg = fig1_trace(distance, Algorithm::CircuitStart);
                cfg.file_bytes = 200_000;
                b.iter(|| {
                    let report = run_trace(&cfg);
                    assert!(report.result.completed);
                    report.peak_cwnd_cells()
                });
            },
        );
    }
    group.finish();
}

fn bench_fig1_cdf_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig1c_slice");
    group.sample_size(10);
    group.bench_function("10_circuits_200k", |b| {
        let mut cfg = fig1_cdf();
        cfg.star.circuits = 10;
        cfg.star.file_bytes = 200_000;
        cfg.repetitions = 1;
        cfg.algorithms = vec![Algorithm::CircuitStart];
        b.iter(|| {
            let report = run_cdf(&cfg);
            assert_eq!(report.series[0].incomplete, 0);
            report.series[0].cdf.median()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_traces, bench_fig1_cdf_slice);
criterion_main!(benches);
