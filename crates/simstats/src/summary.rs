//! Streaming summary statistics.
//!
//! [`Summary`] accumulates count / mean / variance (Welford's online
//! algorithm), min, max, and sum in O(1) memory, so simulations can track
//! millions of samples without storing them.

use std::fmt;

/// Online accumulator for basic statistics of an `f64` stream.
///
/// # Examples
///
/// ```
/// use simstats::summary::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN sample is always an upstream bug and would
    /// silently poison every derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Summary::record called with NaN");
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        // Exhaustive binding: a field added to Summary must be threaded
        // through this merge or the build breaks right here.
        let &Summary {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        } = other;
        if count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = count as f64;
        let delta = mean - self.mean;
        let total = n1 + n2;
        // cs-lint: allow(float-accumulation-in-merge, reason = "parallel Welford is inherently float; Summary is a diagnostic accumulator, never fingerprint-visible — order-invariant merges use QuantileSketch (DESIGN.md par 13)")
        self.mean += delta * n2 / total;
        // cs-lint: allow(float-accumulation-in-merge, reason = "parallel Welford is inherently float; Summary is a diagnostic accumulator, never fingerprint-visible — order-invariant merges use QuantileSketch (DESIGN.md par 13)")
        self.m2 += m2 + delta * delta * n1 * n2 / total;
        self.count += count;
        // cs-lint: allow(float-accumulation-in-merge, reason = "last-ulp order sensitivity acceptable for a diagnostic sum; the mergeable path is QuantileSketch's fixed-point u128")
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (0 for an empty accumulator).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of empty Summary");
        self.mean
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty Summary");
        self.min
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty Summary");
        self.max
    }

    /// Population variance (divide by `n`).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn population_variance(&self) -> f64 {
        assert!(self.count > 0, "variance of empty Summary");
        self.m2 / self.count as f64
    }

    /// Sample variance (divide by `n - 1`); 0 when only one sample exists.
    pub fn sample_variance(&self) -> f64 {
        assert!(self.count > 0, "variance of empty Summary");
        if self.count == 1 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
                self.count,
                self.mean,
                self.sample_std_dev(),
                self.min,
                self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mean of empty")]
    fn mean_of_empty_panics() {
        Summary::new().mean();
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn negative_values() {
        let mut s = Summary::new();
        for v in [-5.0, 0.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(2.0);
        let before = format!("{s}");
        s.merge(&Summary::new());
        assert_eq!(format!("{s}"), before);

        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), 1.5);
    }

    #[test]
    fn display_formats() {
        let mut s = Summary::new();
        assert_eq!(s.to_string(), "n=0");
        s.record(1.0);
        assert!(s.to_string().starts_with("n=1 mean=1.000000"));
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: tiny variance on a huge
        // mean offset.
        let mut s = Summary::new();
        for v in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            s.record(v);
        }
        assert!((s.sample_variance() - 30.0).abs() < 1e-6);
    }
}
