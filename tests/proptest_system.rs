//! System-level property tests: conservation, window invariants, and
//! monotonicity over randomly drawn topologies, file sizes, and seeds.
//! Case counts are tuned so the suite stays responsive in debug builds.
//!
//! Randomized configurations are drawn from [`simcore::rng::SimRng`]
//! streams with fixed master seeds — proptest-style coverage with
//! bit-for-bit reproducibility and no external dependencies.

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::{PathScenario, WorldConfig};
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Arbitrary small path geometry: 1–4 relays, 5–80 Mbit/s links,
/// 1–12 ms delays.
fn arb_hops(rng: &mut SimRng) -> Vec<LinkConfig> {
    let n = rng.range_usize(2, 6);
    (0..n)
        .map(|_| {
            let mbps = rng.range_u64(5, 81);
            let ms = rng.range_u64(1, 13);
            LinkConfig::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis(ms))
        })
        .collect()
}

fn run(
    hops: Vec<LinkConfig>,
    file_bytes: u64,
    algorithm: Algorithm,
    seed: u64,
) -> (relaynet::CircuitResult, relaynet::WorldStats, u64) {
    let scenario = PathScenario {
        hops,
        file_bytes,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(algorithm.factory(CcConfig::default()), seed);
    run_to_completion(&mut sim);
    let world = sim.world();
    (
        world.result_of(handles.circ),
        *world.stats(),
        world.net().total_drops(),
    )
}

/// Cells are conserved: every payload byte the client offers arrives
/// exactly once, unharmed, in order — for arbitrary geometry.
#[test]
fn conservation_over_random_paths() {
    let mut gen = SimRng::seed_from(0x5EED_0001);
    for _ in 0..24 {
        let hops = arb_hops(&mut gen);
        let file = gen.range_u64(1, 121) * 1000;
        let seed = gen.u64();
        let (result, stats, drops) = run(hops, file, Algorithm::CircuitStart, seed);
        assert!(result.completed);
        assert_eq!(result.bytes_delivered, file);
        assert_eq!(result.cells_delivered, file.div_ceil(496));
        assert_eq!(result.payload_errors, 0);
        assert_eq!(stats.protocol_errors, 0);
        assert_eq!(drops, 0);
    }
}

/// Transfer time is monotone (within tolerance) in file size on a
/// fixed path: more data never finishes faster.
#[test]
fn ttlb_monotone_in_file_size() {
    let mut gen = SimRng::seed_from(0x5EED_0002);
    for _ in 0..24 {
        let hops = arb_hops(&mut gen);
        let small = gen.range_u64(5, 41) * 1000;
        let big = small + gen.range_u64(10, 101) * 1000;
        let seed = gen.u64();
        let (r_small, _, _) = run(hops.clone(), small, Algorithm::CircuitStart, seed);
        let (r_big, _, _) = run(hops, big, Algorithm::CircuitStart, seed);
        assert!(
            r_big.transfer_time().unwrap() >= r_small.transfer_time().unwrap(),
            "bigger file finished faster: {:?} vs {:?}",
            r_big.transfer_time(),
            r_small.transfer_time()
        );
    }
}

/// The transfer never beats the analytical lower bound, regardless of
/// geometry or algorithm.
#[test]
fn never_faster_than_the_ideal_pipeline() {
    let mut gen = SimRng::seed_from(0x5EED_0003);
    for _ in 0..24 {
        let hops = arb_hops(&mut gen);
        let file = gen.range_u64(5, 81) * 1000;
        let algorithm = [
            Algorithm::CircuitStart,
            Algorithm::ClassicBacktap,
            Algorithm::JumpStart(64),
        ][gen.range_usize(0, 3)];
        let seed = gen.u64();
        let model = PathModel::from_hops(&hops);
        let (result, _, _) = run(hops, file, algorithm, seed);
        assert!(
            result.transfer_time().unwrap() >= model.ideal_transfer_time(file),
            "{algorithm:?} beat physics"
        );
    }
}

/// The source window never leaves its configured bounds, for any
/// geometry and any point in time.
#[test]
fn cwnd_respects_bounds_throughout() {
    let mut gen = SimRng::seed_from(0x5EED_0004);
    for _ in 0..24 {
        let hops = arb_hops(&mut gen);
        let file = gen.range_u64(5, 61) * 1000;
        let seed = gen.u64();
        let scenario = PathScenario {
            hops,
            file_bytes: file,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let cc = CcConfig::default();
        let (mut sim, handles) = scenario.build(Algorithm::CircuitStart.factory(cc), seed);
        run_to_completion(&mut sim);
        let trace = sim.world().source_cwnd_trace(handles.circ).unwrap();
        for &(_, cwnd) in trace {
            assert!(cwnd >= cc.min_cwnd && cwnd <= cc.max_cwnd);
        }
    }
}

/// Determinism as a property: any configuration replayed with the
/// same seed produces the identical transfer time.
#[test]
fn determinism_over_random_configs() {
    let mut gen = SimRng::seed_from(0x5EED_0005);
    for _ in 0..12 {
        let hops = arb_hops(&mut gen);
        let file = gen.range_u64(5, 51) * 1000;
        let seed = gen.u64();
        let (a, _, _) = run(hops.clone(), file, Algorithm::CircuitStart, seed);
        let (b, _, _) = run(hops, file, Algorithm::CircuitStart, seed);
        assert_eq!(a.transfer_time(), b.transfer_time());
        assert_eq!(a.last_byte_at, b.last_byte_at);
    }
}
