//! # torcell — the Tor data plane: cells, codec, onion layering
//!
//! Every unit of information in the overlay is either a fixed 512-byte
//! **cell** (as in Tor) or a 20-byte per-hop **feedback** frame (the
//! BackTap/CircuitStart addition this reproduction exists to study).
//!
//! * [`ids`] — [`CircuitId`](ids::CircuitId) (link-local, as in Tor),
//!   [`StreamId`](ids::StreamId), [`CellSeq`](ids::CellSeq).
//! * [`cell`] — structures and size constants.
//! * [`codec`] — byte-exact, error-checked wire encoding (dependency-free).
//! * [`crypto`] — onion layering *stand-in* (size-preserving keyed
//!   keystream; **not secure**, see module docs and DESIGN.md §2).
//!
//! Property tests (`tests/` and the root-package proptest suite) establish
//! `decode(encode(cell)) == cell` for every representable cell, which is
//! what licenses the simulator to move structured cells instead of byte
//! buffers on its fast path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod codec;
pub mod crypto;
pub mod ids;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cell::{
        Cell, CellBody, CellCommand, Feedback, RelayCell, RelayCommand, CELL_LEN, CELL_PAYLOAD_LEN,
        FEEDBACK_WIRE_LEN, HANDSHAKE_LEN, RELAY_DATA_MAX,
    };
    pub use crate::codec::{
        decode_cell, decode_feedback, encode_cell, encode_feedback, CodecError,
    };
    pub use crate::crypto::{
        payload_digest, LayerCipher, LayerKey, OnionRoute, OnionStack, RelayCrypt,
    };
    pub use crate::ids::{CellSeq, CircuitId, StreamId};
}

pub use cell::{
    Cell, CellBody, CellCommand, Feedback, RelayCell, RelayCommand, CELL_LEN, CELL_PAYLOAD_LEN,
    FEEDBACK_WIRE_LEN, HANDSHAKE_LEN, RELAY_DATA_MAX,
};
pub use codec::{decode_cell, decode_feedback, encode_cell, encode_feedback, CodecError};
pub use crypto::{payload_digest, LayerCipher, LayerKey, OnionRoute, OnionStack, RelayCrypt};
pub use ids::{CellSeq, CircuitId, StreamId};
