//! Figure 1 (upper panels), interactively: source congestion-window
//! traces with the bottleneck at a chosen distance, CircuitStart vs the
//! "without CircuitStart" baseline, rendered as an ASCII plot.
//!
//! ```text
//! cargo run --release --example bottleneck_trace            # distance 1
//! cargo run --release --example bottleneck_trace -- 3       # distance 3
//! cargo run --release --example bottleneck_trace -- 3 42    # + seed
//! ```

use circuitstart::prelude::*;
use simstats::ascii::{plot_lines, PlotConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let distance: usize = args
        .next()
        .map(|a| a.parse().expect("distance must be 0..=3"))
        .unwrap_or(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(1);

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    let mut optimal_kib = 0.0;

    let labels = ["circuitstart", "classic (no CS)"];
    for (label, algorithm) in labels
        .iter()
        .zip([Algorithm::CircuitStart, Algorithm::ClassicBacktap])
    {
        let mut config = fig1_trace(distance, algorithm);
        config.seed = seed;
        let report = run_trace(&config);
        optimal_kib = report.optimal_kib();
        println!(
            "{label:>16}: peak {:3} cells, settle(±35%) {:>9}, transfer {}",
            report.peak_cwnd_cells(),
            report
                .settling_time_ms(0.35)
                .map(|ms| format!("{ms:.0} ms"))
                .unwrap_or_else(|| "never".to_string()),
            report.result.transfer_time().expect("completed"),
        );
        // Resample the step function on a uniform grid so the ASCII plot
        // shows the plateau, not just the change points.
        let ts = report.as_timeseries();
        let end = ts.end_time().expect("non-empty");
        let grid = ts.resample(0.0, end, 160);
        series.push((
            label,
            grid.into_iter()
                .map(|(s, cells)| (s * 1e3, cells * 512.0 / 1024.0))
                .collect(),
        ));
    }

    // The model optimum as a horizontal reference line.
    let t_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(t, _)| t))
        .fold(0.0f64, f64::max);
    let optimal_line: Vec<(f64, f64)> = (0..=160)
        .map(|i| (t_max * i as f64 / 160.0, optimal_kib))
        .collect();
    series.push(("optimal (model)", optimal_line));

    let plot = plot_lines(
        &series,
        &PlotConfig {
            width: 90,
            height: 24,
            title: format!("source cwnd [KiB] vs time [ms] — bottleneck distance {distance}"),
            x_label: "time [ms]".to_string(),
            y_label: "cwnd [KiB]".to_string(),
        },
    );
    println!("\n{plot}");
    println!("(compare with Figure 1, upper panels, of the paper)");
}
