//! Relay generation: the population path selection draws from.
//!
//! The paper evaluates over "a randomly generated network of Tor relays".
//! The exact distribution is not published, so this module exposes it as a
//! parameter with a heavy-tailed (log-uniform) default — relay capacity in
//! the live Tor network spans orders of magnitude.
//!
//! The directory is only the *population*: deciding which relays a
//! circuit crosses is the job of a [`crate::selection::PathSelection`]
//! policy, which sees the specs generated here through a
//! [`crate::selection::DirectoryView`] (specs plus live per-relay load).
//! [`Directory::view`] pairs a directory with a load slice; policies
//! enforce Tor's essential rule that relays on a path are distinct.

use netsim::bandwidth::Bandwidth;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

use crate::selection::DirectoryView;

/// A generated relay's access-link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct RelaySpec {
    /// Access-link rate (both directions).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay of the access link.
    pub delay: SimDuration,
}

/// Parameters for relay generation.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryConfig {
    /// Number of relays.
    pub relays: usize,
    /// Relay bandwidth is log-uniform in `[low, high]` Mbit/s.
    pub bandwidth_mbps: (f64, f64),
    /// Access-link one-way delay is uniform in `[low, high]` ms.
    pub delay_ms: (f64, f64),
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            relays: 30,
            bandwidth_mbps: (20.0, 100.0),
            // Chosen so per-circuit bottleneck shares land at bandwidth-
            // delay products of tens of cells (the regime the paper's
            // Figure 1 axes imply): ~5 circuits share a relay, so shares
            // run 4–20 Mbit/s over ~15–35 ms hop RTTs.
            delay_ms: (3.0, 10.0),
        }
    }
}

/// A generated set of relays. Path selection over the set goes through
/// a [`crate::selection::PathSelection`] policy on a [`DirectoryView`].
#[derive(Clone, Debug)]
pub struct Directory {
    relays: Vec<RelaySpec>,
}

impl Directory {
    /// Samples `cfg.relays` relays using the stream derived from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.relays == 0` or ranges are invalid.
    pub fn generate(cfg: &DirectoryConfig, rng: &SimRng) -> Directory {
        assert!(cfg.relays > 0, "directory needs at least one relay");
        assert!(
            cfg.bandwidth_mbps.0 > 0.0 && cfg.bandwidth_mbps.1 > cfg.bandwidth_mbps.0,
            "invalid bandwidth range"
        );
        assert!(
            cfg.delay_ms.0 >= 0.0 && cfg.delay_ms.1 >= cfg.delay_ms.0,
            "invalid delay range"
        );
        let mut relays = Vec::with_capacity(cfg.relays);
        for i in 0..cfg.relays {
            let mut r = rng.derive_indexed("relay-spec", i as u64);
            let mbps = r.log_uniform(cfg.bandwidth_mbps.0, cfg.bandwidth_mbps.1);
            let delay = if cfg.delay_ms.1 > cfg.delay_ms.0 {
                r.range_f64(cfg.delay_ms.0, cfg.delay_ms.1)
            } else {
                cfg.delay_ms.0
            };
            relays.push(RelaySpec {
                bandwidth: Bandwidth::from_mbps_f64(mbps),
                delay: SimDuration::from_secs_f64(delay / 1e3),
            });
        }
        Directory { relays }
    }

    /// Builds a directory from explicit specs (tests, hand-tuned setups).
    pub fn from_specs(relays: Vec<RelaySpec>) -> Directory {
        assert!(!relays.is_empty(), "directory needs at least one relay");
        Directory { relays }
    }

    /// The relay specs, indexed by relay id.
    pub fn relays(&self) -> &[RelaySpec] {
        &self.relays
    }

    /// Number of relays.
    #[inline]
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// Whether the directory holds no relays. Always `false` for a
    /// constructed directory — both constructors reject empty relay
    /// sets — but provided for the standard `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Pairs the directory with live per-relay load, producing the view
    /// a [`crate::selection::PathSelection`] policy selects over.
    ///
    /// # Panics
    ///
    /// Panics if `load` does not hold one counter per relay.
    pub fn view<'a>(&'a self, load: &'a [u32]) -> DirectoryView<'a> {
        DirectoryView::new(&self.relays, load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{PathSelection, Uniform};

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn generate_respects_ranges() {
        let cfg = DirectoryConfig {
            relays: 50,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        assert_eq!(dir.len(), 50);
        assert!(!dir.is_empty());
        for r in dir.relays() {
            let mbps = r.bandwidth.as_mbps_f64();
            assert!((10.0..=100.0).contains(&mbps), "bw {mbps}");
            let ms = r.delay.as_millis_f64();
            assert!((5.0..=15.0).contains(&ms), "delay {ms}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = DirectoryConfig::default();
        let a = Directory::generate(&cfg, &SimRng::seed_from(7));
        let b = Directory::generate(&cfg, &SimRng::seed_from(7));
        let c = Directory::generate(&cfg, &SimRng::seed_from(8));
        for (x, y) in a.relays().iter().zip(b.relays()) {
            assert_eq!(x.bandwidth, y.bandwidth);
            assert_eq!(x.delay, y.delay);
        }
        let same = a
            .relays()
            .iter()
            .zip(c.relays())
            .filter(|(x, y)| x.bandwidth == y.bandwidth)
            .count();
        assert!(same < 3, "different seeds should differ");
    }

    #[test]
    fn fixed_delay_range_allowed() {
        let cfg = DirectoryConfig {
            relays: 3,
            bandwidth_mbps: (10.0, 20.0),
            delay_ms: (10.0, 10.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        for r in dir.relays() {
            assert_eq!(r.delay, SimDuration::from_millis(10));
        }
    }

    #[test]
    fn view_pairs_specs_with_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let view = dir.view(&load);
        assert_eq!(view.len(), dir.len());
        let mut r = rng();
        let p = Uniform.select(&view, &mut r, 3);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one load counter per relay")]
    fn view_rejects_mismatched_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len() + 1];
        let _ = dir.view(&load);
    }

    #[test]
    fn log_uniform_bandwidths_span_decade() {
        let cfg = DirectoryConfig {
            relays: 300,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        let low = dir
            .relays()
            .iter()
            .filter(|r| r.bandwidth.as_mbps_f64() < 31.6)
            .count();
        let frac = low as f64 / 300.0;
        assert!(
            (0.35..0.65).contains(&frac),
            "log-uniform: ~half below the geometric mean, got {frac}"
        );
    }
}
