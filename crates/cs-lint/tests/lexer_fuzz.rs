//! Lexer robustness: seeded byte soup, adversarial fragment collages,
//! and the workspace's own concatenated sources must lex without
//! panicking, with token spans that are strictly monotone, char-aligned,
//! and that tile the input up to whitespace.

use cs_lint::lexer::{self, Token};
use simcore::rng::SimRng;

/// Every structural invariant the rule engine relies on:
/// * spans are non-empty, in bounds, and on `char` boundaries;
/// * spans are strictly monotone (no overlap, no reordering);
/// * the bytes between consecutive tokens are pure whitespace — the
///   lexer drops nothing else on the floor;
/// * `line`/`col` agree with the span's actual position in the source.
fn assert_invariants(src: &str, tokens: &[Token]) {
    let mut prev_end = 0usize;
    // Incremental line/col tracker so the check stays linear even on
    // the concatenated-workspace input.
    let (mut at, mut line, mut col) = (0usize, 1u32, 1u32);
    let mut advance_to = |target: usize| {
        for &b in &src.as_bytes()[at..target] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        at = target;
        (line, col)
    };
    for t in tokens {
        assert!(t.start < t.end, "empty token span {}..{}", t.start, t.end);
        assert!(
            t.end <= src.len(),
            "span {}..{} out of bounds",
            t.start,
            t.end
        );
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span {}..{} splits a char",
            t.start,
            t.end
        );
        assert!(
            prev_end <= t.start,
            "token at {} overlaps previous end {}",
            t.start,
            prev_end
        );
        assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "non-whitespace dropped between tokens: {:?}",
            &src[prev_end..t.start]
        );
        assert_eq!(
            (t.line, t.col),
            advance_to(t.start),
            "position drift at {}",
            t.start
        );
        prev_end = t.end;
    }
    assert!(
        src[prev_end..].chars().all(char::is_whitespace),
        "non-whitespace trailing after last token: {:?}",
        &src[prev_end..]
    );
}

#[test]
fn byte_soup_never_panics_and_spans_tile() {
    let master = SimRng::seed_from(0xC1AC_0157_F022);
    let mut rng = master.derive("byte-soup");
    for case in 0..2_000u64 {
        let len = rng.range_usize(0, 256);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        // Lossy conversion keeps the soup arbitrary while satisfying
        // the lexer's &str contract.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lexer::lex(&src);
        assert_invariants(&src, &tokens);
        let _ = case;
    }
}

/// Fragments chosen to sit on the lexer's edge cases: unterminated
/// strings, raw-string fences, nested comments, lifetimes vs chars,
/// raw identifiers, maximal-munch operator runs.
const FRAGMENTS: &[&str] = &[
    "\"",
    "\"\\\"",
    "r#\"",
    "\"#",
    "r##\"x\"##",
    "b\"bytes\"",
    "br#\"",
    "/*",
    "*/",
    "/* /* */",
    "//",
    "///!",
    "'a",
    "'a'",
    "'\\''",
    "'\\u{1F600}'",
    "b'x'",
    "r#fn",
    "r#struct",
    "0xFF_u64",
    "1_000.5e-3",
    "0b1010",
    "..=",
    "...",
    "::<>",
    "<<=",
    ">>=",
    "&&||",
    "=>->",
    "\u{00e9}\u{4e2d}",
    "\n",
    "    ",
    "}{)(][",
    "#[cfg(test)]",
    "let x = ",
    ";",
];

#[test]
fn fragment_collages_never_panic_and_spans_tile() {
    let master = SimRng::seed_from(0xC1AC_0157_F023);
    let mut rng = master.derive("collage");
    for _case in 0..2_000u64 {
        let pieces = rng.range_usize(1, 24);
        let mut src = String::new();
        for _ in 0..pieces {
            src.push_str(FRAGMENTS[rng.range_usize(0, FRAGMENTS.len())]);
        }
        let tokens = lexer::lex(&src);
        assert_invariants(&src, &tokens);
    }
}

#[test]
fn concatenated_workspace_sources_lex_cleanly() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let mut src = String::new();
    for rel in [
        "crates/simcore/src/rng.rs",
        "crates/simstats/src/sketch.rs",
        "crates/cs-lint/src/lexer.rs",
        "crates/cs-lint/src/engine.rs",
        "crates/cs-lint/src/graph.rs",
    ] {
        src.push_str(&std::fs::read_to_string(root.join(rel)).expect("source readable"));
        src.push('\n');
    }
    assert!(src.len() > 40_000, "concatenation suspiciously small");
    let tokens = lexer::lex(&src);
    assert!(tokens.len() > 10_000, "suspiciously few tokens");
    assert_invariants(&src, &tokens);
}
