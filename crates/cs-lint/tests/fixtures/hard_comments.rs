// cs-lint-fixture: path = "crates/simcore/src/hard_comments.rs"
// Violations spelled in comments of every flavor. ZERO findings.

// line comment: Instant::now() and HashMap::new()

/* block comment: thread::spawn(|| SystemTime::now()) */

/* nested /* block /* comments */ hide SimRng::seed_from(3) */ too */

/// Doc comment with a fenced example:
///
/// ```
/// use std::collections::HashSet;
/// let mut s = HashSet::new();
/// s.insert(1);
/// assert_eq!(s.iter().next().unwrap(), &1);
/// ```
fn documented() -> u64 {
    7
}

/** Block doc: `x.unwrap()` and `println!("{}", x)` stay prose. */
fn block_documented() -> u64 {
    8
}

//! Inner-style comment mentioning eprintln!("x") — still a comment.

/* unterminated-looking content: "a quote inside a comment */
fn after_comments(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}
