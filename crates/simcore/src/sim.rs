//! The discrete-event simulation loop.
//!
//! Architecture (mirrors the event-driven style of ns-3 and smoltcp):
//!
//! * All mutable model state lives in a single **world** value supplied by
//!   the user. The world implements [`World`] and reacts to events.
//! * Events are plain values of the world's associated `Event` type. They
//!   carry ids/handles, never references, so the world remains a single
//!   ownership root — no `Rc<RefCell<…>>` graphs.
//! * The [`Simulator`] owns the world and a stable time-ordered
//!   [`EventQueue`]; it pops events one at a time, advances the virtual
//!   clock, and calls [`World::handle`] with a [`Context`] through which the
//!   handler schedules follow-up events.
//!
//! The loop is strictly single-threaded and, given a fixed seed for any
//! randomness inside the world, bit-for-bit deterministic.
//!
//! # Examples
//!
//! A ping-pong of two events until a counter runs out:
//!
//! ```
//! use simcore::prelude::*;
//!
//! enum Ev { Ping, Pong }
//! struct PingPong { remaining: u32, pings: u32 }
//!
//! impl World for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Ping => {
//!                 self.pings += 1;
//!                 ctx.schedule_in(SimDuration::from_millis(1), Ev::Pong);
//!             }
//!             Ev::Pong => {
//!                 if self.remaining > 0 {
//!                     self.remaining -= 1;
//!                     ctx.schedule_in(SimDuration::from_millis(1), Ev::Ping);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(PingPong { remaining: 9, pings: 0 });
//! sim.schedule_at(SimTime::ZERO, Ev::Ping);
//! let report = sim.run();
//! assert_eq!(sim.world().pings, 10);
//! assert_eq!(report.reason, StopReason::QueueEmpty);
//! assert_eq!(sim.now(), SimTime::from_millis(19));
//! ```

use crate::event::{EventId, EventQueue, QueueKind};
use crate::time::{SimDuration, SimTime};

/// The simulation model: one value owning all mutable state, reacting to
/// events.
///
/// Handlers receive `&mut self` plus a [`Context`] for scheduling; they must
/// not block or perform wall-clock I/O (the simulator provides the only
/// clock that exists).
pub trait World {
    /// The event type dispatched to [`World::handle`].
    type Event;

    /// Reacts to one event at virtual time `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Why a call to one of the `run*` methods returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// No pending events remain; the simulation has naturally quiesced.
    QueueEmpty,
    /// The configured time horizon was reached.
    TimeLimit,
    /// The configured maximum number of events was processed.
    EventLimit,
    /// The world requested a stop via [`Context::stop`].
    Requested,
}

/// Summary of one `run*` invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Why the run returned.
    pub reason: StopReason,
    /// Events processed *by this invocation* (cancelled events excluded).
    pub events_processed: u64,
    /// Virtual clock value when the run returned.
    pub end_time: SimTime,
}

/// Scheduling capability handed to [`World::handle`].
///
/// Borrowing the queue (rather than the whole simulator) lets handlers
/// schedule and cancel while the world itself is mutably borrowed.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past — time travel would silently corrupt
    /// causality, so it is rejected loudly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Schedules `event` at the current instant; it runs after all handlers
    /// already queued for this instant (FIFO among equal timestamps).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancels a previously scheduled event in O(1), removing it from the
    /// queue immediately. Returns `false` — and stores nothing — if the
    /// event already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the simulation loop return after this handler, with
    /// [`StopReason::Requested`]. Pending events stay queued.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Limits for [`Simulator::run_with_limits`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunLimits {
    /// Process no event with a timestamp strictly greater than this.
    /// On return the clock is advanced to exactly this instant.
    pub until: Option<SimTime>,
    /// Process at most this many events in this invocation.
    pub max_events: Option<u64>,
}

/// A tracing probe: called with every event just before it is handled.
pub type Probe<E> = Box<dyn FnMut(SimTime, &E)>;

/// The event loop: owns the world, the clock, and the pending-event queue.
pub struct Simulator<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed_total: u64,
    stop_requested: bool,
    probe: Option<Probe<W::Event>>,
}

impl<W: World> Simulator<W> {
    /// Creates a simulator at time zero around `world`, with the default
    /// (calendar) event queue.
    pub fn new(world: W) -> Self {
        Self::with_queue(world, QueueKind::default())
    }

    /// Creates a simulator with an explicit event-queue implementation —
    /// the seam the differential determinism tests drive.
    pub fn with_queue(world: W, kind: QueueKind) -> Self {
        Simulator {
            world,
            queue: EventQueue::with_kind(kind),
            now: SimTime::ZERO,
            processed_total: 0,
            stop_requested: false,
            probe: None,
        }
    }

    /// Which event-queue implementation this simulator runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and for reading results
    /// between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Total events processed over the lifetime of this simulator.
    pub fn events_processed(&self) -> u64 {
        self.processed_total
    }

    /// Number of currently pending (not yet fired, not cancelled) events.
    /// Exact: cancelled events leave the queue immediately.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Discards every pending event without firing it. The id counter
    /// keeps advancing, and no cancellation state survives the clear —
    /// cancelling a discarded id later is a clean no-op.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Installs a probe called with every event just before it is handled.
    /// Intended for tracing and debugging; must not mutate model state.
    pub fn set_probe(&mut self, probe: Probe<W::Event>) {
        self.probe = Some(probe);
    }

    /// Removes the probe installed by [`Simulator::set_probe`].
    pub fn clear_probe(&mut self) {
        self.probe = None;
    }

    /// Schedules an event at an absolute instant (setup-time counterpart of
    /// [`Context::schedule_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules an event after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a scheduled event in O(1); a no-op (returning `false`) if
    /// it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Processes exactly one event. Returns `false` if the queue is
    /// empty. (Cancelled events never surface from the queue, so there is
    /// no skip loop.)
    pub fn step(&mut self) -> bool {
        let Some((time, _id, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(
            time >= self.now,
            "event queue produced an out-of-order event"
        );
        self.now = time;
        if let Some(probe) = &mut self.probe {
            probe(time, &event);
        }
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut self.stop_requested,
        };
        self.world.handle(&mut ctx, event);
        self.processed_total += 1;
        true
    }

    /// Runs until the queue is empty (or the world calls [`Context::stop`]).
    pub fn run(&mut self) -> RunReport {
        self.run_with_limits(RunLimits::default())
    }

    /// Runs until `until`, processing every event with a timestamp `<=
    /// until`, then advances the clock to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) -> RunReport {
        self.run_with_limits(RunLimits {
            until: Some(until),
            max_events: None,
        })
    }

    /// Runs subject to the given limits. See [`RunLimits`].
    pub fn run_with_limits(&mut self, limits: RunLimits) -> RunReport {
        let start_processed = self.processed_total;
        self.stop_requested = false;
        if limits.until.is_none() && limits.max_events.is_none() {
            // Unbounded run: no horizon to compare against, so skip the
            // per-event peek and drive the queue straight through pop.
            let reason = loop {
                if !self.step() {
                    break StopReason::QueueEmpty;
                }
                if self.stop_requested {
                    break StopReason::Requested;
                }
            };
            return RunReport {
                reason,
                events_processed: self.processed_total - start_processed,
                end_time: self.now,
            };
        }
        let reason = loop {
            if let Some(max) = limits.max_events {
                if self.processed_total - start_processed >= max {
                    break StopReason::EventLimit;
                }
            }
            match self.queue.peek_time() {
                None => break StopReason::QueueEmpty,
                Some(t) => {
                    if let Some(horizon) = limits.until {
                        if t > horizon {
                            break StopReason::TimeLimit;
                        }
                    }
                }
            }
            if !self.step() {
                break StopReason::QueueEmpty;
            }
            if self.stop_requested {
                break StopReason::Requested;
            }
        };
        if reason == StopReason::TimeLimit
            || (reason == StopReason::QueueEmpty && limits.until.is_some())
        {
            // Advance the clock to the horizon so back-to-back bounded runs
            // observe continuous time.
            if let Some(horizon) = limits.until {
                if horizon > self.now {
                    self.now = horizon;
                }
            }
        }
        RunReport {
            reason,
            events_processed: self.processed_total - start_processed,
            end_time: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records (time, value) for every event it sees and can
    /// schedule chains/fan-outs driven by the event value.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        chain_period: Option<SimDuration>,
        chain_left: u32,
        stop_at_value: Option<u32>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if let Some(p) = self.chain_period {
                if self.chain_left > 0 {
                    self.chain_left -= 1;
                    ctx.schedule_in(p, ev + 1);
                }
            }
            if self.stop_at_value == Some(ev) {
                ctx.stop();
            }
        }
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_run_reports_queue_empty() {
        let mut sim = Simulator::new(Recorder::default());
        let r = sim.run();
        assert_eq!(r.reason, StopReason::QueueEmpty);
        assert_eq!(r.events_processed, 0);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_order_and_clock_advances() {
        let mut sim = Simulator::new(Recorder::default());
        sim.schedule_at(ms(5), 2);
        sim.schedule_at(ms(1), 1);
        sim.schedule_at(ms(9), 3);
        let r = sim.run();
        assert_eq!(r.events_processed, 3);
        assert_eq!(sim.world().seen, vec![(ms(1), 1), (ms(5), 2), (ms(9), 3)]);
        assert_eq!(sim.now(), ms(9));
    }

    #[test]
    fn chained_scheduling_from_handler() {
        let mut sim = Simulator::new(Recorder {
            chain_period: Some(SimDuration::from_millis(10)),
            chain_left: 4,
            ..Default::default()
        });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.run();
        let values: Vec<u32> = sim.world().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.now(), ms(40));
    }

    #[test]
    fn run_until_stops_at_horizon_and_resumes() {
        let mut sim = Simulator::new(Recorder {
            chain_period: Some(SimDuration::from_millis(10)),
            chain_left: 100,
            ..Default::default()
        });
        sim.schedule_at(SimTime::ZERO, 0);
        let r = sim.run_until(ms(35));
        assert_eq!(r.reason, StopReason::TimeLimit);
        assert_eq!(sim.world().seen.len(), 4); // t = 0, 10, 20, 30
        assert_eq!(sim.now(), ms(35)); // clock parked exactly at horizon
        let r2 = sim.run_until(ms(55));
        assert_eq!(r2.reason, StopReason::TimeLimit);
        assert_eq!(sim.world().seen.len(), 6); // + t = 40, 50
    }

    #[test]
    fn run_until_with_empty_queue_advances_clock() {
        let mut sim = Simulator::new(Recorder::default());
        let r = sim.run_until(ms(123));
        assert_eq!(r.reason, StopReason::QueueEmpty);
        assert_eq!(sim.now(), ms(123));
    }

    #[test]
    fn event_limit() {
        let mut sim = Simulator::new(Recorder {
            chain_period: Some(SimDuration::from_millis(1)),
            chain_left: u32::MAX,
            ..Default::default()
        });
        sim.schedule_at(SimTime::ZERO, 0);
        let r = sim.run_with_limits(RunLimits {
            until: None,
            max_events: Some(7),
        });
        assert_eq!(r.reason, StopReason::EventLimit);
        assert_eq!(r.events_processed, 7);
        assert_eq!(sim.world().seen.len(), 7);
    }

    #[test]
    fn stop_request_halts_loop_but_keeps_queue() {
        let mut sim = Simulator::new(Recorder {
            stop_at_value: Some(2),
            ..Default::default()
        });
        for v in 1..=5 {
            sim.schedule_at(ms(v as u64), v);
        }
        let r = sim.run();
        assert_eq!(r.reason, StopReason::Requested);
        assert_eq!(sim.world().seen.len(), 2);
        assert_eq!(sim.pending_events(), 3);
        // A later run picks the remaining events back up.
        let r2 = sim.run();
        assert_eq!(r2.reason, StopReason::QueueEmpty);
        assert_eq!(sim.world().seen.len(), 5);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut sim = Simulator::new(Recorder::default());
        let _keep = sim.schedule_at(ms(1), 1);
        let kill = sim.schedule_at(ms(2), 2);
        sim.schedule_at(ms(3), 3);
        sim.cancel(kill);
        let r = sim.run();
        assert_eq!(r.events_processed, 2);
        let values: Vec<u32> = sim.world().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 3]);
    }

    #[test]
    fn cancelling_fired_event_is_noop() {
        let mut sim = Simulator::new(Recorder::default());
        let id = sim.schedule_at(ms(1), 1);
        sim.run();
        sim.cancel(id); // must not panic or affect later events
        sim.schedule_at(ms(2), 2);
        sim.run();
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn cancelling_fired_event_stores_nothing() {
        // Regression for the tombstone leak: cancelling ids that already
        // fired must not accumulate state. With eager in-queue
        // cancellation the call reports false and the queue stays empty.
        let mut sim = Simulator::new(Recorder::default());
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(sim.schedule_at(ms(i), i as u32));
        }
        sim.run();
        for id in ids {
            assert!(!sim.cancel(id), "fired events cannot be cancelled");
        }
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn clear_pending_discards_events_and_cancel_state() {
        // Regression: clearing the queue used to strand tombstones for
        // the discarded events. Now clear drops everything and later
        // cancels of discarded ids are clean no-ops.
        let mut sim = Simulator::new(Recorder::default());
        let doomed = sim.schedule_at(ms(1), 1);
        let cancelled_then_cleared = sim.schedule_at(ms(2), 2);
        sim.cancel(cancelled_then_cleared);
        sim.clear_pending();
        assert_eq!(sim.pending_events(), 0);
        assert!(!sim.cancel(doomed), "cleared events cannot be cancelled");
        sim.schedule_at(ms(3), 3);
        sim.run();
        let values: Vec<u32> = sim.world().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![3], "only the post-clear event fires");
    }

    #[test]
    fn runs_identically_on_both_queue_kinds() {
        use crate::event::QueueKind;
        let run = |kind| {
            let mut sim = Simulator::with_queue(
                Recorder {
                    chain_period: Some(SimDuration::from_millis(3)),
                    chain_left: 50,
                    ..Default::default()
                },
                kind,
            );
            sim.schedule_at(SimTime::ZERO, 0);
            sim.run();
            sim.into_world().seen
        };
        assert_eq!(run(QueueKind::Calendar), run(QueueKind::BinaryHeap));
    }

    #[test]
    #[should_panic(expected = "cannot schedule an event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new(Recorder::default());
        sim.schedule_at(ms(10), 1);
        sim.run();
        sim.schedule_at(ms(5), 2);
    }

    #[test]
    fn schedule_now_runs_fifo_at_same_instant() {
        struct FanOut {
            seen: Vec<u32>,
        }
        impl World for FanOut {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
                self.seen.push(ev);
                if ev == 0 {
                    ctx.schedule_now(10);
                    ctx.schedule_now(11);
                }
            }
        }
        let mut sim = Simulator::new(FanOut { seen: vec![] });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.schedule_at(SimTime::ZERO, 1);
        sim.run();
        // Event 1 was queued before the handler of 0 pushed 10/11, so FIFO
        // at the same instant yields 0, 1, 10, 11.
        assert_eq!(sim.world().seen, vec![0, 1, 10, 11]);
    }

    #[test]
    fn probe_observes_every_event() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let log2 = log.clone();
        let mut sim = Simulator::new(Recorder::default());
        sim.set_probe(Box::new(move |_, ev| log2.borrow_mut().push(*ev)));
        sim.schedule_at(ms(1), 7);
        sim.schedule_at(ms(2), 8);
        sim.run();
        assert_eq!(*log.borrow(), vec![7, 8]);
        sim.clear_probe();
        sim.schedule_at(ms(3), 9);
        sim.run();
        assert_eq!(*log.borrow(), vec![7, 8]); // probe removed
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut sim = Simulator::new(Recorder::default());
        assert!(!sim.step());
        sim.schedule_at(ms(1), 1);
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    fn processed_total_accumulates_across_runs() {
        let mut sim = Simulator::new(Recorder::default());
        sim.schedule_at(ms(1), 1);
        sim.run();
        sim.schedule_at(ms(2), 2);
        sim.run();
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Simulator::new(Recorder::default());
        sim.schedule_at(ms(1), 42);
        sim.run();
        let world = sim.into_world();
        assert_eq!(world.seen, vec![(ms(1), 42)]);
    }
}
