// cs-lint-fixture: path = "crates/relaynet/src/badrng.rs"
use simcore::rng::SimRng;

#[derive(Clone, Debug)]
struct Widget {
    seed: u64,
}

fn ad_hoc_stream(master: &SimRng) -> u64 {
    let mut local = SimRng::seed_from(42); //~ rng-discipline
    let mut child = master.derive("side-channel"); //~ rng-discipline
    let mut indexed = master.derive_indexed("shard", 3); //~ rng-discipline
    local.u64() ^ child.u64() ^ indexed.u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_mint_freely() {
        let mut rng = SimRng::seed_from(7);
        let _ = rng.derive("fixture").u64();
    }
}
