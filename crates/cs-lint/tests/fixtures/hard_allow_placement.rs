// cs-lint-fixture: path = "crates/relaynet/src/hard_allow_placement.rs"
// Annotation binding across blank lines, doc comments, and stacking.
// ZERO findings: every violation here is correctly suppressed.

// cs-lint: allow(nondeterministic-iteration, reason = "binds across the blank line below")

use std::collections::HashSet;

/// A documented set-bearing struct. The annotation binds to the next
/// CODE line, so it sits on the field, not above the struct header.
struct Probe {
    // cs-lint: allow(nondeterministic-iteration, reason = "binds across the doc comment below")
    /// Which ids were ever seen (membership only in this fixture).
    seen: HashSet<u64>,
}

// cs-lint: allow(nondeterministic-iteration, reason = "stacked: rule one of two")
// cs-lint: allow(no-bare-unwrap-in-lib, reason = "stacked: rule two of two")
fn both_on_one_line(m: HashSet<u64>) -> u64 { *m.iter().next().unwrap() }

fn inside_a_body() -> u64 {
    // cs-lint: allow(nondeterministic-iteration, reason = "indented annotation in a body")
    let s = HashSet::<u64>::new();
    s.len() as u64
}
