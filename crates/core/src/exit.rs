//! Overshoot compensation — the heart of CircuitStart.
//!
//! When the delay signal (`diff > γ`) fires during ramp-up, the window has
//! typically *overshot* the path's capacity, especially when the
//! bottleneck is several hops away: the doubling train was already in
//! flight when the congestion evidence started travelling back.
//!
//! Traditional slow start would halve the window — an essentially
//! arbitrary guess. CircuitStart instead sets the window to **the amount
//! of data acknowledged within the current round so far**: the cells of
//! the current train whose feedback has already returned form exactly the
//! packet train the successor could forward *without additional delay*,
//! which is the minimal window that still fully utilizes the path — a
//! direct measurement of the optimal window (paper, §2).

use backtap::cc::RampExit;

/// The CircuitStart ramp-exit policy (see module docs).
///
/// # Examples
///
/// ```
/// use backtap::cc::RampExit;
/// use circuitstart::exit::CircuitStartExit;
///
/// let exit = CircuitStartExit::default();
/// // The window overshot to 64; only 23 cells of the round came back
/// // before the delay signal fired → the path sustains 23 cells.
/// assert_eq!(exit.exit_cwnd(64, 23), 23);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct CircuitStartExit;

impl RampExit for CircuitStartExit {
    fn name(&self) -> &'static str {
        "circuitstart-compensation"
    }

    fn exit_cwnd(&self, _cwnd_at_exit: u32, acked_in_round: u32) -> u32 {
        // The caller (DelayCc) clamps to [min_cwnd, max_cwnd]; an
        // exit on the very first feedback of a round yields 1 and is
        // clamped up to the minimum window of 2.
        acked_in_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backtap::cc::{HalvingExit, RampExit};

    #[test]
    fn compensation_uses_acked_count_not_cwnd() {
        let e = CircuitStartExit;
        assert_eq!(e.exit_cwnd(128, 40), 40);
        assert_eq!(e.exit_cwnd(8, 40), 40, "cwnd at exit is irrelevant");
        assert_eq!(e.exit_cwnd(128, 0), 0, "clamping happens in the controller");
    }

    #[test]
    fn differs_from_halving_exactly_where_the_paper_says() {
        // Far-away bottleneck: huge overshoot, few cells confirmed.
        // Halving still leaves 4× the sustainable window; compensation
        // lands on the measurement.
        let overshoot = 128;
        let confirmed = 16;
        assert_eq!(HalvingExit.exit_cwnd(overshoot, confirmed), 64);
        assert_eq!(CircuitStartExit.exit_cwnd(overshoot, confirmed), 16);
    }

    #[test]
    fn name_identifies_algorithm() {
        assert_eq!(CircuitStartExit.name(), "circuitstart-compensation");
    }
}
