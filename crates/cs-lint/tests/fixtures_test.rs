//! The fixture corpus: every rule must fire at exactly the expected
//! `file:line`, and the lexer hard cases must produce zero false
//! positives.
//!
//! Fixture grammar:
//! * line 1: `// cs-lint-fixture: path = "<virtual workspace path>"` —
//!   the path drives policy scoping;
//! * a trailing `//~ <rule-name>` marker on any line declares one
//!   expected finding there (repeat the marker for multiple findings on
//!   one line);
//! * `//~^ <rule-name>` declares the finding one line UP (each extra
//!   `^` climbs one more line) — needed when the finding is on a line
//!   that cannot carry a trailing comment, e.g. a `// cs-lint: allow`
//!   annotation whose parse a suffix would corrupt;
//! * a fixture with no markers asserts the file is completely clean.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cs_lint::engine;
use cs_lint::rules::ALL_RULES;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("fixture entry readable").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 20,
        "fixture corpus shrank: {} files",
        files.len()
    );
    files
}

/// Parses the `cs-lint-fixture: path = "..."` header.
fn virtual_path(content: &str, file: &Path) -> String {
    let first = content.lines().next().unwrap_or("");
    let rest = first
        .split_once("cs-lint-fixture:")
        .unwrap_or_else(|| panic!("{} missing fixture header", file.display()))
        .1;
    let path = rest
        .split_once('"')
        .and_then(|(_, r)| r.split_once('"'))
        .map(|(p, _)| p)
        .unwrap_or_else(|| panic!("{} has a malformed fixture header", file.display()));
    assert!(!path.is_empty());
    path.to_string()
}

/// Collects `(line, rule)` expectations from `//~` / `//~^` markers.
fn expectations(content: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        for piece in line.split("//~").skip(1) {
            let up = piece.chars().take_while(|&c| c == '^').count() as u32;
            let rest = &piece[up as usize..];
            let rule = rest
                .trim_start()
                .split(|c: char| !(c.is_ascii_lowercase() || c == '-'))
                .next()
                .unwrap_or("")
                .to_string();
            assert!(!rule.is_empty(), "empty //~ marker on line {}", i + 1);
            let line_no = i as u32 + 1;
            assert!(up < line_no, "//~^ marker climbs past line 1");
            out.push((line_no - up, rule));
        }
    }
    out.sort();
    out
}

#[test]
fn every_fixture_matches_its_markers_exactly() {
    for file in fixture_files() {
        let content = std::fs::read_to_string(&file).expect("fixture readable");
        let vpath = virtual_path(&content, &file);
        let expected = expectations(&content);
        let mut found: Vec<(u32, String)> = engine::scan_source(&vpath, &content)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect();
        found.sort();
        assert_eq!(
            found,
            expected,
            "fixture {} (as {vpath}): findings disagree with //~ markers",
            file.display(),
        );
    }
}

#[test]
fn corpus_covers_every_rule_and_has_clean_hard_cases() {
    let mut fired: BTreeMap<String, usize> = BTreeMap::new();
    let mut clean_fixtures = 0usize;
    for file in fixture_files() {
        let content = std::fs::read_to_string(&file).expect("fixture readable");
        let expected = expectations(&content);
        if expected.is_empty() {
            clean_fixtures += 1;
        }
        for (_, rule) in expected {
            *fired.entry(rule).or_insert(0) += 1;
        }
    }
    for rule in ALL_RULES {
        assert!(
            fired.contains_key(rule.name()),
            "no fixture exercises rule {}",
            rule.name()
        );
    }
    assert!(
        fired.contains_key(engine::MALFORMED),
        "no fixture exercises {}",
        engine::MALFORMED
    );
    assert!(
        fired.contains_key(engine::UNUSED_ALLOW),
        "no fixture exercises {}",
        engine::UNUSED_ALLOW
    );
    assert!(
        clean_fixtures >= 8,
        "need >= 8 zero-finding hard-case fixtures, have {clean_fixtures}"
    );
}

/// The gate's own contract, enforced from the test suite too: the real
/// workspace has zero unannotated findings, and the full scan fits the
/// 2-second budget (it runs in well under that even unoptimized).
#[test]
fn workspace_scan_is_clean_and_fast() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    // cs-lint: allow(wall-clock, reason = "timing the lint itself against its CI budget, not simulation results")
    let t0 = std::time::Instant::now();
    let scan = engine::scan_workspace(&root).expect("workspace scan succeeds");
    let elapsed = t0.elapsed();
    assert!(
        scan.files_scanned > 80,
        "suspiciously small workspace: {} files",
        scan.files_scanned
    );
    let rendered: Vec<String> = scan
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} {}", f.path, f.line, f.col, f.rule))
        .collect();
    assert!(
        scan.findings.is_empty(),
        "workspace has unannotated findings:\n{rendered:#?}"
    );
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "scan took {elapsed:?}, budget is 2s"
    );
}

/// Cross-crate reachability edges exist only when the caller's crate
/// declares a dependency on the callee's crate, and only sink-reaching
/// callees taint their callers.
#[test]
fn cross_crate_reachability_is_dependency_and_sink_gated() {
    use std::collections::BTreeSet;

    let bench_src = "\
pub fn fmt_rate(n: u64, d: u64) -> String {
    format!(\"{n}/{d}\")
}

pub fn timed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
";
    let caller = |callee: &str| {
        format!("pub fn summarize() -> String {{\n    let _ = {callee}();\n    String::new()\n}}\n")
    };
    let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    deps.insert(
        "relaynet".to_string(),
        ["cs-bench".to_string()].into_iter().collect(),
    );

    fn rules(
        inputs: &[(String, String)],
        deps: Option<&BTreeMap<String, BTreeSet<String>>>,
    ) -> Vec<(String, u32)> {
        engine::scan_files(inputs, deps)
            .into_iter()
            .filter(|f| f.path.starts_with("crates/relaynet"))
            .map(|f| (f.rule, f.line))
            .collect()
    }
    let bench = (
        "crates/bench/src/report.rs".to_string(),
        bench_src.to_string(),
    );

    // Calling a clock-free helper across the dependency: silent.
    let inputs = vec![
        bench.clone(),
        ("crates/relaynet/src/sum.rs".to_string(), caller("fmt_rate")),
    ];
    assert_eq!(rules(&inputs, Some(&deps)), vec![]);

    // Calling the clock-reading helper: exactly one transitive finding
    // at the call site. (cs-bench itself is policy-exempt from
    // wall-clock, which must NOT launder the caller's reachability.)
    let inputs = vec![
        bench.clone(),
        ("crates/relaynet/src/sum.rs".to_string(), caller("timed")),
    ];
    assert_eq!(
        rules(&inputs, Some(&deps)),
        vec![("transitive-wall-clock".to_string(), 2)]
    );

    // Without the declared dependency the edge disappears.
    deps.get_mut("relaynet").expect("entry").clear();
    assert_eq!(rules(&inputs, Some(&deps)), vec![]);
}
