//! Fixed-size mergeable quantile sketches.
//!
//! [`QuantileSketch`] is the streaming counterpart of [`crate::cdf::Cdf`]:
//! where `Cdf` stores every sample (O(flows) memory, exact answers), the
//! sketch folds each sample into a **log-bucketed histogram** of fixed
//! size (DDSketch-style) and answers quantile queries with a guaranteed
//! **relative** error bound. Two sketches with the same accuracy merge by
//! bucket-wise addition, so aggregation across shards, seeds, or policies
//! is associative and commutative — order-independent *by construction*,
//! not by sorting.
//!
//! # The error bound
//!
//! With accuracy `alpha`, bucket `k` covers the half-open value range
//! `(γ^(k-1), γ^k]` where `γ = (1 + alpha) / (1 - alpha)`. A query walks
//! the buckets to the one holding the requested rank and returns the
//! bucket's log-midpoint `2·γ^k / (1 + γ)`. For any sample `x` in the
//! bucket, the estimate `v̂` satisfies
//!
//! ```text
//! (1 - alpha)·x  <=  v̂  <=  (1 + alpha)·x
//! ```
//!
//! (substitute the range bounds: `2γ^k/((1+γ)γ^k) = 1-alpha` and
//! `2γ^k/((1+γ)γ^(k-1)) = 1+alpha`). Bucketing preserves order
//! (`v <= w ⇒ bucket(v) <= bucket(w)`), so the bucket where the
//! cumulative count first reaches rank `r` is exactly the bucket holding
//! the `r`-th order statistic — the estimate is within `alpha·x` of the
//! **exact** quantile `x`, for every sample inside the value domain
//! below. `min`, `max`, and the count are tracked exactly on the side;
//! the running sum behind `mean` is held in fixed point (integer
//! multiples of 2⁻³⁰) so that merging is integer addition — bit-exact
//! under any merge order, at a quantization cost of at most 2⁻³¹ per
//! sample. A plain `f64` running sum looks equivalent but is not:
//! float addition is non-associative, so two merge orders of the same
//! shards can disagree in the last ulp of the sum — an order dependence
//! the shuffle-merge regression suite caught in an earlier revision.
//!
//! # Value domain
//!
//! The bucket array is sized once from the accuracy to cover
//! [`QuantileSketch::DOMAIN_MIN`]..=[`QuantileSketch::DOMAIN_MAX`]
//! (10⁻⁹ s to 10⁹ s when samples are seconds — sub-nanosecond to ~31
//! years). Samples below the domain (including exact zeros) land in a
//! dedicated low bucket and are answered as `min` (tracked exactly);
//! samples above it clamp into the top bucket, where only the absolute
//! `max` stays exact. Within the domain the relative bound holds
//! unconditionally. Memory is O(buckets) — a function of `alpha` only,
//! never of the sample count.

use std::fmt;

use crate::cdf::lower_rank;

/// A fixed-size mergeable quantile sketch over non-negative `f64`
/// samples (see the [module docs](self) for the error bound and the
/// merge semantics).
///
/// # Examples
///
/// ```
/// use simstats::sketch::QuantileSketch;
///
/// let mut a = QuantileSketch::default();
/// let mut b = QuantileSketch::default();
/// for i in 1..=500 {
///     a.record(f64::from(i));
///     b.record(f64::from(i + 500));
/// }
/// a.merge(&b);
/// assert_eq!(a.len(), 1000);
/// let p99 = a.quantile(0.99);
/// assert!((p99 - 990.0).abs() <= QuantileSketch::DEFAULT_ALPHA * 990.0);
/// assert_eq!(a.min(), 1.0); // exact
/// assert_eq!(a.max(), 1000.0); // exact
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy `alpha` (bit-compared on merge).
    alpha: f64,
    /// `ln γ`, cached: bucket index of `v` is `ceil(ln v / ln γ)`.
    ln_gamma: f64,
    /// Absolute bucket index of `buckets[0]` (the domain floor).
    base_index: i64,
    /// Log-spaced bucket counts; fixed length for a given `alpha`.
    buckets: Vec<u64>,
    /// Samples below the domain floor, including exact zeros.
    low: u64,
    count: u64,
    /// Running sum in fixed point: integer multiples of
    /// [`Self::SUM_QUANTUM`]. Integer so that merge order cannot perturb
    /// it — see the module docs.
    sum_fp: u128,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    /// A sketch at [`QuantileSketch::DEFAULT_ALPHA`] (1% relative error).
    fn default() -> Self {
        QuantileSketch::new(Self::DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// The default relative accuracy: 1%.
    pub const DEFAULT_ALPHA: f64 = 0.01;
    /// Smallest value resolved by its own bucket; anything below
    /// (including 0) is counted in the low bucket and answered as `min`.
    pub const DOMAIN_MIN: f64 = 1e-9;
    /// Largest value resolved within the error bound; larger samples
    /// clamp into the top bucket (only `max` stays exact there).
    pub const DOMAIN_MAX: f64 = 1e9;
    /// Resolution of the fixed-point running sum: 2⁻³⁰ (≈ 9.3·10⁻¹⁰, one
    /// quantum per sub-nanosecond when samples are seconds). Each
    /// recorded sample contributes at most half a quantum of rounding to
    /// the sum, so `mean` is within 2⁻³¹ of the true mean — while the
    /// integer representation makes sum merging associative and
    /// commutative, bit for bit.
    const SUM_QUANTUM: f64 = 1.0 / (1u64 << 30) as f64;

    /// Creates an empty sketch with relative accuracy `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 0.25` — looser than 25% is no longer
    /// a measurement, and the bucket count explodes as `alpha → 0`.
    pub fn new(alpha: f64) -> QuantileSketch {
        assert!(
            alpha > 0.0 && alpha <= 0.25,
            "sketch accuracy must be in (0, 0.25], got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let base_index = (Self::DOMAIN_MIN.ln() / ln_gamma).ceil() as i64;
        let top_index = (Self::DOMAIN_MAX.ln() / ln_gamma).ceil() as i64;
        QuantileSketch {
            alpha,
            ln_gamma,
            base_index,
            buckets: vec![0; (top_index - base_index + 1) as usize],
            low: 0,
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Bucket slot of an in-domain value (clamped into the array).
    fn slot(&self, v: f64) -> usize {
        let idx = (v.ln() / self.ln_gamma).ceil() as i64;
        (idx - self.base_index).clamp(0, self.buckets.len() as i64 - 1) as usize
    }

    /// The representative value of bucket slot `s`: the log-midpoint
    /// `2·γ^k / (1 + γ)` of its value range.
    fn value_of(&self, s: usize) -> f64 {
        let k = self.base_index + s as i64;
        let gamma_k = (k as f64 * self.ln_gamma).exp();
        2.0 * gamma_k / (1.0 + self.ln_gamma.exp())
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values — completion times and the other
    /// latency-like series this sketch exists for are non-negative, and
    /// a NaN would silently poison every merged aggregate downstream.
    pub fn record(&mut self, value: f64) {
        assert!(
            value >= 0.0,
            "QuantileSketch::record requires a non-negative sample, got {value}"
        );
        self.count += 1;
        // Multiplying by a power of two only shifts the exponent, so the
        // product is exact; `round` quantizes once, by at most half a
        // quantum. (`as u128` saturates for absurdly large finite
        // values, where the sum was never meaningful anyway.)
        self.sum_fp += (value / Self::SUM_QUANTUM).round() as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < Self::DOMAIN_MIN {
            self.low += 1;
        } else {
            let s = self.slot(value);
            self.buckets[s] += 1;
        }
    }

    /// Folds `other` into `self` by bucket-wise addition — associative
    /// and commutative, so any merge tree over any shard order produces
    /// an identical sketch, buckets and fixed-point sum alike (the
    /// property the shuffle-merge and associativity suites pin).
    ///
    /// # Panics
    ///
    /// Panics if the accuracies differ: buckets of different geometries
    /// cannot be added meaningfully.
    pub fn merge(&mut self, other: &QuantileSketch) {
        // Exhaustive binding: a field added to the sketch must be
        // threaded through this merge or the build breaks right here.
        // `ln_gamma`/`base_index` are pure functions of `alpha`, whose
        // bit-equality is asserted below.
        let QuantileSketch {
            alpha,
            ln_gamma: _,
            base_index: _,
            buckets,
            low,
            count,
            sum_fp,
            min,
            max,
        } = other;
        assert!(
            self.alpha.to_bits() == alpha.to_bits(),
            "cannot merge sketches of different accuracy ({} vs {})",
            self.alpha,
            alpha
        );
        debug_assert_eq!(self.buckets.len(), buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(buckets) {
            *a += b;
        }
        self.low += low;
        self.count += count;
        self.sum_fp += sum_fp;
        self.min = self.min.min(*min);
        self.max = self.max.max(*max);
    }

    /// Number of samples recorded (across all merged inputs).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample — exact, tracked beside the buckets.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty QuantileSketch");
        self.min
    }

    /// Largest sample — exact, tracked beside the buckets.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty QuantileSketch");
        self.max
    }

    /// Arithmetic mean — from the fixed-point running sum, not
    /// bucket-approximated: within 2⁻³¹ of the true mean regardless of
    /// `alpha`, and identical under every merge order.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of empty QuantileSketch");
        (self.sum_fp as f64 * Self::SUM_QUANTUM) / self.count as f64
    }

    /// The `q`-quantile under the same *lower* rank semantics as
    /// [`Cdf::quantile`](crate::cdf::Cdf::quantile), within the relative
    /// error bound of the module docs. The estimate is clamped into
    /// `[min, max]`, so `quantile(0.0) == min` and `quantile(1.0)` can
    /// never exceed the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if empty or unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty QuantileSketch");
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile requires q in [0,1], got {q}"
        );
        if q == 0.0 {
            return self.min;
        }
        let rank = lower_rank(q, self.count);
        let mut cum = self.low;
        if cum >= rank {
            // Everything below the domain floor is indistinguishable;
            // the exact minimum is the honest representative.
            return self.min;
        }
        for (s, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self.value_of(s).clamp(self.min, self.max);
            }
        }
        unreachable!("cumulative bucket count fell short of the rank");
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 99th percentile — the standard tail-latency headline, within
    /// the sketch's relative error bound.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile — the deep tail. As with the exact CDF,
    /// meaningless below ~1000 samples (it collapses onto the max).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Approximate `F(x)`: the fraction of samples `<= x`, correct up to
    /// samples within `alpha·x` of `x` (the bucket holding `x` is
    /// counted whole).
    ///
    /// # Panics
    ///
    /// Panics on NaN (a NaN threshold compares false with everything and
    /// would silently report 0).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        assert!(
            !x.is_nan(),
            "QuantileSketch::fraction_at_or_below requires a non-NaN threshold"
        );
        if self.count == 0 || x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let mut cum = self.low;
        if x >= Self::DOMAIN_MIN {
            let s = self.slot(x);
            cum += self.buckets[..=s].iter().sum::<u64>();
        }
        cum as f64 / self.count as f64
    }

    /// Staircase plotting points, one `(v̂, F(v̂))` pair per non-empty
    /// bucket — the sketch analogue of [`Cdf::points`]
    /// (crate::cdf::Cdf::points), O(buckets) long instead of O(samples).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.count as f64;
        let mut out = Vec::new();
        let mut cum = 0u64;
        if self.low > 0 {
            cum += self.low;
            out.push((self.min, cum as f64 / n));
        }
        for (s, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((self.value_of(s).clamp(self.min, self.max), cum as f64 / n));
            }
        }
        out
    }

    /// The raw bucket counts (low bucket first) — the merge currency.
    /// Two sketches are the same distribution record iff these are
    /// equal bucket for bucket; the associativity suite compares them
    /// directly.
    pub fn bucket_counts(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::once(self.low).chain(self.buckets.iter().copied())
    }

    /// Number of bucket slots — fixed by `alpha` at construction, never
    /// by the sample count (the O(buckets)-memory claim the bench pins).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len() + 1
    }

    /// Bytes held by the bucket array — the sketch's only growable-looking
    /// storage, which in fact never grows after construction.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<u64>()
    }
}

impl fmt::Display for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "QuantileSketch(n=0, alpha={})", self.alpha)
        } else {
            write!(
                f,
                "QuantileSketch(n={}, alpha={}, min={:.4}, p50={:.4}, p99={:.4}, max={:.4})",
                self.count,
                self.alpha,
                self.min(),
                self.median(),
                self.p99(),
                self.max()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::Cdf;

    fn filled(values: impl IntoIterator<Item = f64>) -> QuantileSketch {
        let mut s = QuantileSketch::default();
        for v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn quantiles_track_exact_cdf_within_alpha() {
        // A wide, skewed sample set: three decades of magnitude.
        let samples: Vec<f64> = (1..=5000).map(|i| (i as f64).powf(1.7) / 100.0).collect();
        let sketch = filled(samples.iter().copied());
        let cdf = Cdf::from_samples(samples).unwrap();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = cdf.quantile(q);
            let est = sketch.quantile(q);
            assert!(
                (est - exact).abs() <= QuantileSketch::DEFAULT_ALPHA * exact + f64::EPSILON,
                "q={q}: estimate {est} not within alpha of exact {exact}"
            );
        }
    }

    #[test]
    fn exact_side_channels() {
        let sketch = filled([3.0, 1.0, 4.0, 1.5, 9.25]);
        assert_eq!(sketch.len(), 5);
        assert_eq!(sketch.min(), 1.0);
        assert_eq!(sketch.max(), 9.25);
        assert!((sketch.mean() - 3.75).abs() < 1e-12);
        assert_eq!(sketch.quantile(0.0), 1.0);
        assert!(sketch.quantile(1.0) <= 9.25, "clamped to the exact max");
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let all = filled((1..=1000).map(f64::from));
        let mut a = filled((1..=300).map(f64::from));
        let b = filled((301..=1000).map(f64::from));
        a.merge(&b);
        assert_eq!(a, all, "merge must equal single-pass recording");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<QuantileSketch> = (0..4)
            .map(|p| filled((1..=250).map(|i| f64::from(i + p * 250) * 0.01)))
            .collect();
        // ((a·b)·c)·d
        let mut left = parts[0].clone();
        for p in &parts[1..] {
            left.merge(p);
        }
        // a·(b·(c·d)), folded right-to-left.
        let mut right = parts[3].clone();
        for p in parts[..3].iter().rev() {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(left, right);
        assert!(left.bucket_counts().eq(right.bucket_counts()));
    }

    #[test]
    fn merged_sum_is_bit_exact_under_any_merge_order() {
        // The regression behind the fixed-point sum: 0.1 is inexact in
        // binary, so an f64 running sum lands on different ulps
        // depending on the order the shard sums are added. The sketch
        // must be *equal* — not approximately equal — across orders.
        let parts: Vec<QuantileSketch> = (0..6)
            .map(|p| filled((1..=97).map(|i| f64::from(i * (p + 1)) * 0.1)))
            .collect();
        let fold = |order: &[usize; 6]| {
            let mut acc = QuantileSketch::default();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let baseline = fold(&[0, 1, 2, 3, 4, 5]);
        for order in [[5, 4, 3, 2, 1, 0], [2, 0, 5, 1, 3, 4], [3, 5, 0, 4, 2, 1]] {
            // Derived PartialEq covers the sum representation itself.
            assert_eq!(fold(&order), baseline, "order {order:?} diverged");
        }
        // And the quantization stays inside the documented bound.
        let exact: f64 = (0..6)
            .flat_map(|p| (1..=97).map(move |i| f64::from(i * (p + 1)) * 0.1))
            // cs-lint: allow(float-accumulation-in-merge, reason = "test-side oracle with one fixed iteration order, compared for equality against the fixed-point path")
            .sum::<f64>()
            / baseline.len() as f64;
        assert!((baseline.mean() - exact).abs() <= 1.0 / f64::from(1 << 30));
    }

    #[test]
    #[should_panic(expected = "different accuracy")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn record_rejects_negative() {
        QuantileSketch::default().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn record_rejects_nan() {
        // NaN fails the >= 0 gate: same panic, no separate code path.
        QuantileSketch::default().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_of_empty_panics() {
        QuantileSketch::default().quantile(0.5);
    }

    #[test]
    fn zeros_and_subdomain_values_answer_as_min() {
        let sketch = filled([0.0, 0.0, 1e-12, 5.0]);
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.quantile(0.5), 0.0, "3 of 4 samples are low-bucket");
        assert_eq!(sketch.len(), 4);
    }

    #[test]
    fn memory_is_fixed_by_alpha_not_samples() {
        let empty = QuantileSketch::default();
        let mut big = QuantileSketch::default();
        for i in 0..200_000 {
            big.record((i % 977) as f64 + 0.5);
        }
        assert_eq!(empty.bucket_len(), big.bucket_len());
        assert_eq!(empty.memory_bytes(), big.memory_bytes());
    }

    #[test]
    fn fraction_at_or_below_brackets_exact() {
        let samples: Vec<f64> = (1..=1000).map(f64::from).collect();
        let sketch = filled(samples.iter().copied());
        let cdf = Cdf::from_samples(samples).unwrap();
        for x in [1.0, 17.0, 200.0, 999.0, 1000.0, 2000.0] {
            let exact = cdf.fraction_at_or_below(x);
            let est = sketch.fraction_at_or_below(x);
            // The bucket holding x is counted whole: the estimate can
            // overshoot by the samples within alpha·x of x, never more.
            let slack = cdf.fraction_at_or_below(x * (1.0 + 2.0 * QuantileSketch::DEFAULT_ALPHA))
                - cdf.fraction_at_or_below(x * (1.0 - 2.0 * QuantileSketch::DEFAULT_ALPHA));
            assert!(
                (est - exact).abs() <= slack + 1e-12,
                "x={x}: fraction {est} strayed from exact {exact} by more than {slack}"
            );
        }
        assert_eq!(sketch.fraction_at_or_below(0.5), 0.0);
        assert_eq!(sketch.fraction_at_or_below(5000.0), 1.0);
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let sketch = filled((1..=500).map(|i| f64::from(i) * 0.02));
        let pts = sketch.points();
        assert!(pts.len() <= sketch.bucket_len());
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let sketch = filled([1.0, 2.0]);
        let s = sketch.to_string();
        assert!(s.contains("n=2"));
        assert!(s.contains("p99"));
        assert!(QuantileSketch::default().to_string().contains("n=0"));
    }
}
