//! Mid-flight DESTROY coverage: a teardown racing in-flight DATA cells
//! must not panic anywhere in the pipeline (`recognition` keeps
//! confirming and dropping, `feedback` keeps draining windows), must
//! return every in-flight pooled payload buffer to the `PayloadPool`,
//! and must propagate exactly one `DESTROY_REASON_FINISHED` per hop per
//! wave direction. The teardown quiescence window is observed directly
//! by pausing the simulator between full teardown and the churn
//! rebuild.

use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::builder::fixed_window_factory;
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{PathScenario, TorEvent, WorldConfig};
use simcore::sim::{RunLimits, StopReason};
use simcore::time::{SimDuration, SimTime};

fn hop(mbps: u64, delay_ms: u64) -> LinkConfig {
    LinkConfig::new(
        Bandwidth::from_mbps(mbps),
        SimDuration::from_millis(delay_ms),
    )
}

/// Slow middle link so DATA piles up in relay queues and on the wire —
/// the teardown then has plenty of in-flight cells to race.
fn bottleneck_hops() -> Vec<LinkConfig> {
    vec![hop(100, 1), hop(5, 5), hop(100, 1)]
}

#[test]
fn midflight_destroy_returns_inflight_buffers_and_counts_one_destroy_per_hop() {
    let scenario = PathScenario {
        hops: bottleneck_hops(),
        file_bytes: 1 << 20,
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::Immediate,
            churn: Some(ChurnSpec {
                // Fires long before the ~1.7 s transfer can finish, and
                // well after the ~30 ms build: a pure data-plane race.
                teardown_after_ms: (200.0, 200.0),
                rebuild_delay_ms: 300.0,
                cycles: 1,
            }),
        },
        faults: None,
        world: WorldConfig::default(),
    };
    let (mut sim, h) = scenario.build(fixed_window_factory(16), 7);
    let path_nodes = 4u64; // client + 2 relays + server

    // Phase 1: run past the teardown but not into the rebuild — the
    // window where the circuit is fully torn down and the workload
    // engine is idle.
    let report = sim.run_with_limits(RunLimits {
        until: Some(SimTime::from_millis(400)),
        max_events: None,
    });
    assert_ne!(report.reason, StopReason::QueueEmpty, "rebuild still due");
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert!(
        world.stats().cells_dropped_closed > 0 || world.stats().cells_drained > 0,
        "the DESTROY must actually race in-flight DATA"
    );
    // Exactly one DESTROY propagation per hop per wave direction.
    assert_eq!(world.stats().destroys_sent, 2 * (path_nodes - 1));
    assert_eq!(world.stats().slots_reclaimed, path_nodes);
    assert_eq!(world.stats().rebuilds, 0, "rebuild delayed past the pause");
    // Every pooled payload buffer is back at rest: nothing in flight,
    // nothing generated, so the idle population equals every buffer the
    // pool ever allocated, and the high-water mark recorded the spike.
    let pool = world.payload_pool();
    let (allocated, _) = pool.stats();
    assert_eq!(pool.returned(), pool.acquired(), "buffers leaked in flight");
    assert_eq!(pool.idle(), allocated as usize, "all buffers at rest");
    assert!(pool.idle_hwm() >= pool.idle());
    // The torn incarnation is unreachable everywhere; the flows are not
    // yet done.
    for &n in &world.circuit_info(h.circ).path {
        assert!(world.node(n).circuit(h.circ).is_none(), "{n} kept a slot");
    }
    assert!(world.flows().iter().any(|f| !f.complete()));

    // Phase 2: let the rebuild run the workload to completion.
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert_eq!(world.stats().rebuilds, 1);
    for f in world.flows() {
        assert!(f.complete(), "flow stranded by the teardown: {f:?}");
        assert_eq!(f.carried_by, 2, "both incarnations carried the flow");
    }
    let total: u64 = world.flows().iter().map(|f| f.delivered).sum();
    assert_eq!(total, 1 << 20);
    let pool = world.payload_pool();
    assert_eq!(pool.returned(), pool.acquired());
    // The torn incarnation never counted as a completed circuit; the
    // flow ledger is the canonical accounting across incarnations.
    assert!(!world.result_of(h.circ).completed);
    assert_eq!(world.result_of(h.circ).payload_errors, 0);
}

#[test]
fn manual_teardown_event_mid_transfer_is_equivalent_to_churn() {
    // The raw TorEvent::Teardown path (no churn spec): unfinished flows
    // still rebuild, bytes are still conserved.
    let scenario = PathScenario {
        hops: bottleneck_hops(),
        file_bytes: 600_000,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, h) = scenario.build(fixed_window_factory(16), 11);
    sim.schedule_at(SimTime::from_millis(150), TorEvent::Teardown(h.circ));
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert_eq!(world.stats().rebuilds, 1);
    assert!(world.stats().cells_dropped_closed > 0 || world.stats().cells_drained > 0);
    assert_eq!(world.flows().len(), 1);
    assert!(world.flows()[0].complete());
    assert_eq!(world.flows()[0].delivered, 600_000);
    assert_eq!(
        world.payload_pool().returned(),
        world.payload_pool().acquired()
    );
}

#[test]
fn teardown_racing_the_build_never_panics_or_leaks() {
    // DESTROY while CREATE/CREATED/EXTEND handshakes are still in
    // flight: every teardown point along the build must close cleanly
    // (the wave reflects at the built frontier) and the rebuilt circuit
    // must still deliver every byte.
    for teardown_ms in [1.0, 5.0, 12.0, 25.0, 60.0] {
        let scenario = PathScenario {
            hops: vec![hop(20, 10); 4], // 3 relays, 10 ms links: slow build
            file_bytes: 100_000,
            workload: WorkloadSpec {
                streams_per_circuit: 2,
                arrival: ArrivalSpec::Immediate,
                churn: Some(ChurnSpec {
                    teardown_after_ms: (teardown_ms, teardown_ms),
                    rebuild_delay_ms: 5.0,
                    cycles: 1,
                }),
            },
            faults: None,
            world: WorldConfig::default(),
        };
        let (mut sim, _) = scenario.build(fixed_window_factory(8), 13);
        let report = sim.run();
        assert_eq!(
            report.reason,
            StopReason::QueueEmpty,
            "teardown at {teardown_ms} ms deadlocked"
        );
        let world = sim.world();
        assert_eq!(
            world.stats().protocol_errors,
            0,
            "teardown at {teardown_ms} ms tripped the pipeline"
        );
        assert_eq!(world.stats().rebuilds, 1);
        for f in world.flows() {
            assert!(f.complete(), "teardown at {teardown_ms} ms stranded a flow");
        }
        let pool = world.payload_pool();
        assert_eq!(
            pool.returned(),
            pool.acquired(),
            "teardown at {teardown_ms} ms leaked payload buffers"
        );
        // Slot books balance on every node after the dust settles.
        for n in 0..5u32 {
            let node = world.node(relaynet::OverlayId(n));
            assert_eq!(
                node.slab_len(),
                node.circuit_count() + node.free_slot_count()
            );
            assert_eq!(node.circuit_count(), 1, "only the live incarnation");
        }
    }
}

#[test]
fn scheduler_queued_cells_drop_at_destroy_without_burning_link_time() {
    // Regression: cells a circuit had already handed to its egress link
    // scheduler used to serialize onto the wire after the circuit
    // closed, just to be dropped at the receiver — burning link time
    // and, critically, queueing the DESTROY *behind* them. Setup: the
    // client's own access link is the bottleneck (2 Mbit/s ≈ 2 ms per
    // cell), so a 16-cell window parks ~15 DATA cells in the client's
    // link scheduler. At teardown those must be drained in place: their
    // payloads return to the pool immediately and the DESTROY wave
    // completes within a couple of RTTs instead of waiting out ~30 ms
    // of dead serialization.
    let scenario = PathScenario {
        hops: vec![hop(2, 2), hop(100, 1), hop(100, 1)],
        file_bytes: 500_000,
        workload: WorkloadSpec {
            streams_per_circuit: 1,
            arrival: ArrivalSpec::Immediate,
            churn: Some(ChurnSpec {
                teardown_after_ms: (50.0, 50.0),
                rebuild_delay_ms: 400.0,
                cycles: 1,
            }),
        },
        faults: None,
        world: WorldConfig::default(),
    };
    let (mut sim, h) = scenario.build(fixed_window_factory(16), 19);
    // Pause 25 ms after the teardown: far less than the ~30 ms the
    // drained backlog would have needed on the wire, ample for the
    // DESTROY round trip over the fast relay links.
    let report = sim.run_with_limits(RunLimits {
        until: Some(SimTime::from_millis(75)),
        max_events: None,
    });
    assert_ne!(report.reason, StopReason::QueueEmpty, "rebuild still due");
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert!(
        world.stats().cells_drained >= 10,
        "the scheduler backlog must be drained, not serialized (drained {})",
        world.stats().cells_drained
    );
    // Post-DESTROY link time: had the backlog serialized, the wave
    // could not have completed yet — full slot reclamation this early
    // proves the queued cells never occupied the wire.
    assert_eq!(
        world.stats().slots_reclaimed,
        4,
        "teardown must quiesce within the DESTROY round trip"
    );
    assert_eq!(world.stats().destroys_sent, 2 * 3);
    assert_eq!(world.stats().rebuilds, 0, "rebuild delayed past the pause");
    // No pooled payload leaked: everything the client ever acquired is
    // back at rest — including the buffers drained out of the link
    // scheduler.
    let pool = world.payload_pool();
    assert_eq!(pool.returned(), pool.acquired(), "buffers leaked in flight");
    assert_eq!(pool.idle(), pool.stats().0 as usize, "all buffers at rest");

    // The rebuilt incarnation still delivers every byte.
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert_eq!(world.stats().rebuilds, 1);
    assert!(world.flows().iter().all(|f| f.complete()));
    assert_eq!(
        world.flows().iter().map(|f| f.delivered).sum::<u64>(),
        500_000
    );
    assert_eq!(
        world.payload_pool().returned(),
        world.payload_pool().acquired()
    );
    assert!(!world.result_of(h.circ).completed);
}

#[test]
fn destroy_count_scales_with_cycles() {
    // Two full post-build teardowns of a 4-node path: 2 cycles × 2
    // waves × 3 hops = 12 DESTROYs, 2 × 4 slots reclaimed.
    let scenario = PathScenario {
        hops: bottleneck_hops(),
        file_bytes: 2 << 20,
        workload: WorkloadSpec {
            streams_per_circuit: 1,
            arrival: ArrivalSpec::Immediate,
            churn: Some(ChurnSpec {
                teardown_after_ms: (150.0, 150.0),
                rebuild_delay_ms: 10.0,
                cycles: 2,
            }),
        },
        faults: None,
        world: WorldConfig::default(),
    };
    let (mut sim, _) = scenario.build(fixed_window_factory(16), 3);
    let report = sim.run();
    assert_eq!(report.reason, StopReason::QueueEmpty);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    assert_eq!(world.stats().rebuilds, 2);
    assert_eq!(world.stats().destroys_sent, 2 * 2 * 3);
    assert_eq!(world.stats().slots_reclaimed, 2 * 4);
    assert!(world.flows()[0].complete());
}
