//! `cs-lint --json` golden output: the document shape is asserted
//! structurally, then compared byte-for-byte against a blessed fixture
//! so any change to the machine interface is a deliberate re-bless
//! (`CS_BLESS=1 cargo test -p cs-lint --test golden_json`), never an
//! accident.

use std::path::{Path, PathBuf};

use cs_lint::engine::{self, ScanReport};
use cs_lint::report;

/// One stable input exercising a direct rule, a transitive finding
/// (whose message carries a via-chain detail), and a dead suppression.
const GOLDEN_SRC: &str = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wraps() -> u128 {
    stamp().elapsed().as_nanos()
}

// cs-lint: allow(stray-threads, reason = \"the worker thread moved behind the executor seam\")
pub fn order() -> usize {
    let m = std::collections::HashMap::<u8, u8>::new();
    m.iter().count()
}
";

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lint_report.json")
}

#[test]
fn json_report_matches_blessed_golden() {
    let findings = engine::scan_source("crates/relaynet/src/golden.rs", GOLDEN_SRC);
    let report = ScanReport {
        findings,
        files_scanned: 1,
    };
    let rendered = report::json(&report);

    // Schema: the keys CI dashboards consume, in a single stable doc.
    for needle in [
        "\"tool\": \"cs-lint\"",
        "\"files_scanned\": 1",
        "\"finding_count\": 4",
        "\"rule_counts\": {",
        "\"nondeterministic-iteration\": 1",
        "\"transitive-wall-clock\": 1",
        "\"unused-allow\": 1",
        "\"wall-clock\": 1",
        "\"findings\": [",
        "\"file\": \"crates/relaynet/src/golden.rs\"",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
    // The transitive finding's message must carry its via-chain.
    assert!(
        rendered.contains("reaches a wall-clock read via"),
        "transitive detail missing in:\n{rendered}"
    );

    let path = golden_path();
    if std::env::var_os("CS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("golden dir");
        std::fs::write(&path, &rendered).expect("golden written");
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); bless with CS_BLESS=1 cargo test -p cs-lint --test golden_json",
            path.display()
        )
    });
    assert_eq!(
        rendered, blessed,
        "--json output drifted from the blessed golden; if intentional, re-bless with CS_BLESS=1"
    );
}
