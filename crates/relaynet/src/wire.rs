//! What actually travels on the simulated links.
//!
//! A [`WireFrame`] is either a 512-byte cell (stamped with the sender's
//! per-hop transport sequence number, which the BackTap framing carries so
//! feedback can reference it) or a 20-byte feedback frame. Source and
//! destination are *network* node ids; intermediate switches (the star
//! hub) forward frames toward `dst` without inspecting the payload.

use netsim::frame::Frame;
use netsim::net::NodeId;
use torcell::cell::{Cell, Feedback, CELL_LEN, FEEDBACK_WIRE_LEN};

use crate::node::PendingConfirm;

/// Per-hop frame payload.
#[derive(Clone, Debug)]
pub enum FramePayload {
    /// A cell plus the sender's per-hop sequence number (BackTap framing;
    /// 8 bytes of the 512-byte budget are accounted to the hop header in
    /// the wire-size model, mirroring how BackTap piggybacks its header).
    Cell {
        /// The cell itself.
        cell: Cell,
        /// Per-hop sequence number assigned by the sending transport.
        hop_seq: u64,
    },
    /// A feedback frame ("that cell is moving").
    Feedback(Feedback),
}

/// A frame on the wire between two overlay endpoints.
#[derive(Clone, Debug)]
pub struct WireFrame {
    /// Network node of the overlay sender.
    pub src: NodeId,
    /// Network node of the overlay recipient.
    pub dst: NodeId,
    /// Content.
    pub payload: FramePayload,
    /// Sender-side bookkeeping, **not** wire content (zero wire bytes):
    /// the feedback owed upstream for a forwarded cell. The overlay pays
    /// it the instant the cell finishes serializing onto the outgoing
    /// link — the moment it is physically "forwarded" in the paper's
    /// sense — and detaches the tag before the frame travels on.
    pub confirm: Option<PendingConfirm>,
}

impl Frame for WireFrame {
    fn wire_size(&self) -> u32 {
        match &self.payload {
            FramePayload::Cell { .. } => CELL_LEN as u32,
            FramePayload::Feedback(_) => FEEDBACK_WIRE_LEN as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torcell::ids::{CircuitId, StreamId};

    #[test]
    fn wire_sizes() {
        let mut net: netsim::net::Net<WireFrame> = netsim::net::Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let cell_frame = WireFrame {
            src: a,
            dst: b,
            payload: FramePayload::Cell {
                cell: Cell::relay_data(CircuitId(1), StreamId(1), vec![1, 2, 3]),
                hop_seq: 0,
            },
            confirm: None,
        };
        assert_eq!(cell_frame.wire_size(), 512);
        let fb_frame = WireFrame {
            src: b,
            dst: a,
            payload: FramePayload::Feedback(Feedback {
                circ: CircuitId(1),
                seq: 0,
            }),
            confirm: None,
        };
        assert_eq!(fb_frame.wire_size(), 20);
    }
}
