// cs-lint-fixture: path = "crates/relaynet/src/bad_annotation.rs"
// Malformed annotations are findings themselves, and a well-formed
// allow never suppresses a DIFFERENT rule or a non-adjacent line.

// cs-lint: allow(no-such-rule, reason = "unknown rule name") //~ malformed-annotation
use std::collections::BTreeMap;

// cs-lint: allow(wall-clock) //~ malformed-annotation
fn missing_reason() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}

// cs-lint: allow(wall-clock, reason = "") //~ malformed-annotation
fn empty_reason() -> u64 {
    1
}

fn trailing() -> u64 { 2 } // cs-lint: allow(wall-clock, reason = "not allowed trailing code") //~ malformed-annotation

// A marker on the annotation's own line would corrupt the annotation,
// so unused-allow expectations use the previous-line (caret) form.
// cs-lint: allow(wall-clock, reason = "wrong rule for the site below")
//~^ unused-allow
fn wrong_rule() {
    let _ = std::collections::HashSet::<u8>::new(); //~ nondeterministic-iteration
}

// cs-lint: allow(nondeterministic-iteration, reason = "right rule, but a code line intervenes")
//~^ unused-allow
fn not_adjacent() -> u64 {
    let _ = std::collections::HashSet::<u8>::new(); //~ nondeterministic-iteration
    3
}
