//! Regenerates Figure 1 (lower panel): the CDF of time-to-last-byte for
//! 50 concurrent circuits over a randomly generated star of Tor relays —
//! "with CircuitStart" vs "without CircuitStart" (plain BackTap), plus
//! the classic-slow-start extra baseline.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig1_cdf
//! cargo run --release -p cs-bench --bin fig1_cdf -- --reps 1 --circuits 25
//! ```
//!
//! Prints the staircase points the paper plots and writes
//! `target/figures/fig1_cdf_<algo>.dat` (columns: `ttlb_s cum_fraction`).

use circuitstart::prelude::*;
use cs_bench::{write_figure, Options};
use simstats::ascii::{plot_lines, PlotConfig};

fn main() {
    let opts = Options::from_env();
    let mut cfg = fig1_cdf();
    cfg.repetitions = opts.get("reps", cfg.repetitions);
    cfg.star.circuits = opts.get("circuits", cfg.star.circuits);
    cfg.seed = opts.get("seed", cfg.seed);

    println!(
        "━━━ Figure 1 (lower): {} circuits × {} repetition(s), {} relays, 1 MiB each ━━━",
        cfg.star.circuits, cfg.repetitions, cfg.star.directory.relays
    );
    let report = run_cdf(&cfg);

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for s in &report.series {
        println!(
            "\n  {:<14} median {:.3} s   p90 {:.3} s   range [{:.3}, {:.3}] s   (n={}, incomplete={})",
            s.algorithm_key,
            s.cdf.median(),
            s.cdf.quantile(0.9),
            s.cdf.min(),
            s.cdf.max(),
            s.cdf.len(),
            s.incomplete
        );
        write_figure(
            &format!("fig1_cdf_{}", s.algorithm_key),
            &simstats::export::Table::from_pairs("ttlb_s", "cum_fraction", &s.cdf.points()),
        );
    }

    let cs = report.get("circuitstart").expect("series");
    let backtap = report.get("no-slow-start").expect("series");
    println!(
        "\n  CircuitStart vs plain BackTap: median improvement {:.3} s, best-quantile improvement {:.3} s",
        backtap.cdf.median() - cs.cdf.median(),
        cs.cdf.max_quantile_improvement_over(&backtap.cdf)
    );
    println!("  (the paper reports an improvement of up to 0.5 s)");

    let label_of = |key: &str| -> &'static str {
        match key {
            "circuitstart" => "with circuitstart",
            "no-slow-start" => "without circuitstart (backtap)",
            _ => "classic slow start",
        }
    };
    for s in &report.series {
        series.push((label_of(&s.algorithm_key), s.cdf.points()));
    }
    let plot = plot_lines(
        &series,
        &PlotConfig {
            width: 90,
            height: 22,
            title: "cumulative distribution vs time to last byte [s]".into(),
            x_label: "time to last byte [s]".into(),
            y_label: "cumulative fraction".into(),
        },
    );
    println!("\n{plot}");
}
