//! Deterministic, splittable random-number streams.
//!
//! Reproducibility rule: every random choice in an experiment must be
//! derived from the experiment's single master seed. [`SimRng`] wraps a
//! fast non-cryptographic generator (xoshiro256++, implemented locally so
//! the kernel stays dependency-free) and adds **labelled stream
//! derivation**: `rng.derive("relay-bandwidths")` yields an independent
//! child generator whose seed depends only on the parent seed and the
//! label. Components can therefore draw randomness in any order — adding
//! a new consumer never perturbs the streams of existing ones, which
//! keeps results comparable across code revisions.

/// FNV-1a, 64-bit. Tiny, stable, and good enough for seed derivation —
/// this is *not* used for anything security-relevant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: scrambles a 64-bit value; used so that similar
/// (seed, label) pairs yield very different child seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core (Blackman & Vigna). Public-domain algorithm,
/// implemented here so `simcore` carries no external dependencies.
#[derive(Clone, Debug)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed through SplitMix64, as the xoshiro authors
    /// recommend, guaranteeing a non-zero state.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(sm.wrapping_sub(0x9E37_79B9_7F4A_7C15))
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random stream tied to a seed.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.u64(), b.u64()); // same seed, same stream
///
/// let mut child = a.derive("relay-bandwidths");
/// let x = child.range_f64(10.0, 100.0);
/// assert!((10.0..100.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates a stream from a master seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            seed,
            inner: Xoshiro256PlusPlus::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Derivation is a pure function of `(self.seed, label)`: it does not
    /// consume randomness from, and is unaffected by, draws on `self`.
    pub fn derive(&self, label: &str) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::seed_from(child_seed)
    }

    /// Derives an independent child stream identified by a label and an
    /// index (convenient for per-node / per-circuit streams).
    pub fn derive_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        SimRng::seed_from(child_seed)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u32` over the full range.
    pub fn u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform integer in `[low, high)`, free of modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(
            low < high,
            "range_u64 requires low < high, got [{low}, {high})"
        );
        let span = high - low;
        // Reject the top 2^64 mod span values so every residue is
        // equally likely. span.wrapping_neg() % span == 2^64 mod span.
        let rem = span.wrapping_neg() % span;
        let mut v = self.inner.next_u64();
        while v > u64::MAX - rem {
            v = self.inner.next_u64();
        }
        low + v % span
    }

    /// Uniform integer in `[low, high)` for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        usize::try_from(self.range_u64(low as u64, high as u64)).expect("usize range")
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low < high && low.is_finite() && high.is_finite(),
            "range_f64 requires finite low < high, got [{low}, {high})"
        );
        let v = low + self.f64() * (high - low);
        // Floating-point rounding can land exactly on `high`; keep the
        // half-open contract.
        if v >= high {
            high.next_down().max(low)
        } else {
            v
        }
    }

    /// Log-uniform float in `[low, high)`: the base-10 logarithm of the
    /// result is uniform. Both bounds must be positive. This matches the
    /// heavy-tailed flavour of relay-bandwidth distributions.
    pub fn log_uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low > 0.0 && high > low,
            "log_uniform requires 0 < low < high, got [{low}, {high})"
        );
        let lg = self.range_f64(low.log10(), high.log10());
        10f64.powf(lg)
    }

    /// Fisher–Yates shuffle of a slice, deterministic given the stream
    /// state.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniformly, order
    /// unspecified but deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut all: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: shuffle only the first k positions.
        for i in 0..k {
            let j = self.range_usize(i, n);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 3, "streams from different seeds should diverge");
    }

    #[test]
    fn derive_is_pure_and_order_independent() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.derive("alpha");
        // Draw from a *copy* of the parent first; derivation must not care.
        let mut parent2 = SimRng::seed_from(99);
        let _ = parent2.u64();
        let _ = parent2.u64();
        let mut c2 = parent2.derive("alpha");
        for _ in 0..20 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn derive_labels_independent() {
        let parent = SimRng::seed_from(99);
        let mut a = parent.derive("alpha");
        let mut b = parent.derive("beta");
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn derive_indexed_distinct() {
        let parent = SimRng::seed_from(5);
        let mut a = parent.derive_indexed("relay", 0);
        let mut b = parent.derive_indexed("relay", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_u64_covers_whole_range() {
        let mut rng = SimRng::seed_from(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.range_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "range_u64 requires")]
    fn range_u64_rejects_empty() {
        let mut rng = SimRng::seed_from(1);
        let _ = rng.range_u64(5, 5);
    }

    #[test]
    fn log_uniform_in_bounds_and_spans_decades() {
        let mut rng = SimRng::seed_from(2);
        let mut low_decade = 0;
        let mut high_decade = 0;
        for _ in 0..2000 {
            let v = rng.log_uniform(1.0, 100.0);
            assert!((1.0..100.0).contains(&v));
            if v < 10.0 {
                low_decade += 1;
            } else {
                high_decade += 1;
            }
        }
        // Log-uniform: each decade gets ~half the mass.
        let ratio = low_decade as f64 / high_decade as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "decades should be roughly balanced, got {low_decade}/{high_decade}"
        );
    }

    #[test]
    #[should_panic(expected = "log_uniform requires")]
    fn log_uniform_rejects_nonpositive() {
        let mut rng = SimRng::seed_from(2);
        let _ = rng.log_uniform(0.0, 10.0);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut rng1 = SimRng::seed_from(3);
        let mut rng2 = SimRng::seed_from(3);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        rng1.shuffle(&mut a);
        rng2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            a, sorted,
            "a 50-element shuffle is virtually never the identity"
        );
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..50 {
            let sample = rng.sample_distinct(10, 3);
            assert_eq!(sample.len(), 3);
            let mut s = sample.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "sample must be distinct");
            assert!(sample.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SimRng::seed_from(4);
        let mut sample = rng.sample_distinct(5, 5);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversize() {
        let mut rng = SimRng::seed_from(4);
        let _ = rng.sample_distinct(3, 4);
    }

    #[test]
    fn fill_bytes_deterministic_and_nonzero() {
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        let mut buf_a = [0u8; 23];
        let mut buf_b = [0u8; 23];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert_ne!(buf_a, [0u8; 23]);
    }

    #[test]
    fn f64_has_53_bit_resolution() {
        // Many draws should produce values with long mantissas — a crude
        // check that we are not truncating to a coarse grid.
        let mut rng = SimRng::seed_from(12);
        let distinct: std::collections::BTreeSet<u64> =
            (0..1000).map(|_| rng.f64().to_bits()).collect();
        assert!(
            distinct.len() > 990,
            "draws should essentially never repeat"
        );
    }
}
