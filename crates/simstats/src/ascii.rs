//! Terminal (ASCII) plots.
//!
//! The figure-regeneration binaries print a quick visual check of every
//! series directly to the terminal, so the paper's plots can be eyeballed
//! without leaving the shell. Output is deliberately plain ASCII (no ANSI
//! colors, no Unicode braille) so it survives logs and CI captures.

use std::fmt::Write as _;

/// Configuration for [`plot_lines`].
#[derive(Clone, Debug)]
pub struct PlotConfig {
    /// Total plot width in characters (excluding axis labels).
    pub width: usize,
    /// Total plot height in rows.
    pub height: usize,
    /// Plot title printed above the canvas.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            width: 72,
            height: 20,
            title: String::new(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
        }
    }
}

/// Markers assigned to series 0, 1, 2, … in order.
const MARKERS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

/// Renders one or more `(x, y)` series onto a shared-axis ASCII canvas.
///
/// Each series is a `(name, points)` pair; points need not be sorted.
/// Returns the rendered multi-line string (callers print it).
///
/// # Panics
///
/// Panics if no series contains any finite point, or if `cfg` dimensions
/// are degenerate (< 2).
///
/// # Examples
///
/// ```
/// use simstats::ascii::{plot_lines, PlotConfig};
///
/// let series = vec![("ramp", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)])];
/// let out = plot_lines(&series, &PlotConfig { width: 40, height: 10, ..Default::default() });
/// assert!(out.contains('*'));
/// assert!(out.contains("ramp"));
/// ```
pub fn plot_lines(series: &[(&str, Vec<(f64, f64)>)], cfg: &PlotConfig) -> String {
    assert!(
        cfg.width >= 2 && cfg.height >= 2,
        "plot dimensions too small"
    );
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    assert!(!finite.is_empty(), "plot_lines: no finite points to plot");

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &finite {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges: widen symmetrically so everything still renders.
    if x_min == x_max {
        x_min -= 0.5;
        x_max += 0.5;
    }
    if y_min == y_max {
        y_min -= 0.5;
        y_max += 0.5;
    }

    let mut canvas = vec![vec![' '; cfg.width]; cfg.height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in pts {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (cfg.width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (cfg.height - 1) as f64).round() as usize;
            let row = cfg.height - 1 - cy.min(cfg.height - 1);
            let col = cx.min(cfg.width - 1);
            // First series wins contested cells so baselines do not erase
            // the primary trace.
            if canvas[row][col] == ' ' {
                canvas[row][col] = marker;
            }
        }
    }

    let mut out = String::new();
    if !cfg.title.is_empty() {
        let _ = writeln!(out, "  {}", cfg.title);
    }
    let y_hi_label = format!("{y_max:.3}");
    let y_lo_label = format!("{y_min:.3}");
    let label_w = y_hi_label.len().max(y_lo_label.len());
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi_label:>label_w$}")
        } else if i == cfg.height - 1 {
            format!("{y_lo_label:>label_w$}")
        } else {
            " ".repeat(label_w)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(label_w), "-".repeat(cfg.width));
    let x_lo = format!("{x_min:.3}");
    let x_hi = format!("{x_max:.3}");
    let pad = cfg.width.saturating_sub(x_lo.len() + x_hi.len());
    let _ = writeln!(
        out,
        "{} {x_lo}{}{x_hi}",
        " ".repeat(label_w),
        " ".repeat(pad)
    );
    let _ = writeln!(
        out,
        "{}  [{} vs {}]",
        " ".repeat(label_w),
        cfg.y_label,
        cfg.x_label
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}   {} {}",
            " ".repeat(label_w),
            MARKERS[si % MARKERS.len()],
            name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlotConfig {
        PlotConfig {
            width: 40,
            height: 10,
            title: "test".into(),
            x_label: "t".into(),
            y_label: "v".into(),
        }
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let out = plot_lines(&[("s1", vec![(0.0, 0.0), (1.0, 1.0)])], &cfg());
        assert!(out.contains("test"));
        assert!(out.contains("s1"));
        assert!(out.contains("[v vs t]"));
        assert!(out.contains('|'));
        assert!(out.contains('+'));
    }

    #[test]
    fn corners_are_plotted() {
        let out = plot_lines(&[("s", vec![(0.0, 0.0), (1.0, 1.0)])], &cfg());
        let lines: Vec<&str> = out.lines().collect();
        // Row 1 (after title) is the top of the canvas → contains the max point.
        let top_row = lines[1];
        assert!(top_row.ends_with('*') || top_row.contains('*'));
    }

    #[test]
    fn two_series_use_distinct_markers() {
        let out = plot_lines(
            &[
                ("a", vec![(0.0, 0.0), (1.0, 1.0)]),
                ("b", vec![(0.0, 1.0), (1.0, 0.0)]),
            ],
            &cfg(),
        );
        assert!(out.contains('*'));
        assert!(out.contains('+'));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let out = plot_lines(&[("flat", vec![(0.0, 5.0), (1.0, 5.0)])], &cfg());
        assert!(out.contains('*'));
    }

    #[test]
    fn single_point_does_not_panic() {
        let out = plot_lines(&[("dot", vec![(2.0, 3.0)])], &cfg());
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "no finite points")]
    fn empty_input_panics() {
        let _ = plot_lines(&[("none", vec![])], &cfg());
    }

    #[test]
    fn nonfinite_points_are_skipped() {
        let out = plot_lines(
            &[(
                "s",
                vec![
                    (0.0, 1.0),
                    (f64::NAN, 2.0),
                    (1.0, f64::INFINITY),
                    (1.0, 2.0),
                ],
            )],
            &cfg(),
        );
        assert!(out.contains('*'));
    }

    #[test]
    fn axis_labels_show_ranges() {
        let out = plot_lines(&[("s", vec![(0.0, 10.0), (5.0, 20.0)])], &cfg());
        assert!(out.contains("20.000"));
        assert!(out.contains("10.000"));
        assert!(out.contains("0.000"));
        assert!(out.contains("5.000"));
    }
}
