//! Pipeline stage — the circuit control plane.
//!
//! Tor's telescoping build, executed hop by hop: the client CREATEs the
//! first relay, then sends EXTEND relay cells that the current last relay
//! converts into CREATEs toward the next node (answered with CREATED /
//! EXTENDED). Link-local circuit ids are negotiated per connection; onion
//! layers are derived from the CREATE handshakes.
//!
//! Teardown also lives here, as a **two-wave DESTROY protocol** (DESIGN.md
//! §8): the client's DESTROY travels forward through the per-circuit FIFO
//! queues — so it arrives *behind* every previously sent forward cell —
//! and the end of the built path reflects it as a backward echo. A node
//! that has seen both waves, has every sent cell confirmed, and has empty
//! queues can prove no further frame will ever arrive for the circuit: at
//! that moment its slab slot and route ends are reclaimed for reuse.
//! The client-side reclamation additionally drives the churn engine — if
//! the torn-down circuit's flows still owe bytes, a rebuild is scheduled
//! that re-attaches them to a fresh circuit over the same path.

use simcore::sim::Context;
use simcore::time::SimDuration;

use torcell::cell::{Cell, CellBody, RelayCell, RelayCommand, HANDSHAKE_LEN};
use torcell::crypto::{payload_digest, LayerKey, RelayCrypt};
use torcell::ids::{CircuitId, StreamId};

use netsim::net::{Net, NodeId};

use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{
    ClientApp, ClientStage, HopCtx, HopDir, NodeCircuit, NodeRole, PendingConfirm, QueuedCell,
    ServerApp,
};
use crate::pool::PayloadPool;
use crate::router::Router;
use crate::scheduler::LinkScheduler;
use crate::workload::{CircuitWorkload, StreamSpec};

use backtap::hop::HopTransport;

use super::{FaultState, TorNetwork, WorldStats, DESTROY_REASON_FINISHED, DESTROY_REASON_REFUSED};

impl TorNetwork {
    /// Handshake blob: global circuit id (instrumentation channel for the
    /// responder's registry — documented in DESIGN.md §4) plus fresh
    /// random key material.
    pub(super) fn make_handshake(&mut self, circ: CircId) -> [u8; HANDSHAKE_LEN] {
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs[0..4].copy_from_slice(&circ.0.to_be_bytes());
        self.rng.fill_bytes(&mut hs[4..]);
        hs
    }

    /// Launches a circuit (from a [`TorEvent::StartCircuit`]): the client
    /// CREATEs its first hop and the telescope begins. Stream arrivals
    /// and the workload's teardown point are scheduled here.
    pub(super) fn start_circuit(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        let info = &mut self.circuits[circ.index()];
        assert!(info.started_at.is_none(), "circuit started twice");
        info.started_at = Some(ctx.now());
        let path = info.path.clone();
        let streams = info.workload.streams.clone();
        let teardown_after = info.workload.teardown_after.first().copied();
        let client_id = path[0];
        let first_hop = path[1];
        let link_id = self.alloc_link_circ_id();
        let hs = self.make_handshake(circ);

        // Flow bookkeeping and the workload's timers.
        for (i, spec) in streams.iter().enumerate() {
            let flow = &mut self.flows[spec.flow.index()];
            flow.carried_by += 1;
            if flow.arrival_at.is_none() {
                flow.arrival_at = Some(ctx.now() + spec.offset);
            }
            if !spec.offset.is_zero() {
                ctx.schedule_in(
                    spec.offset,
                    TorEvent::StreamArrival {
                        circ,
                        stream: u32::try_from(i).expect("stream index fits u32"),
                    },
                );
            }
        }
        if let Some(delay) = teardown_after {
            ctx.schedule_in(delay, TorEvent::Teardown(circ));
        }

        let hop_ctx = HopCtx {
            circuit: circ,
            position: 0,
            direction: Direction::Forward,
        };
        let mut transport = HopTransport::new((self.factory)(&hop_ctx));
        if self.cfg.trace_client_cwnd {
            transport.enable_cwnd_trace(ctx.now());
            transport.enable_rtt_trace();
        }

        let node = &mut self.nodes[client_id.index()];
        debug_assert_eq!(
            node.role,
            NodeRole::Client,
            "circuit must start at a client"
        );
        let mut nc = NodeCircuit::new(circ, 0);
        nc.client = Some(ClientApp::new(path, &streams, ctx.now()));
        let mut hopdir = HopDir::new(first_hop, link_id, transport);
        hopdir.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(hopdir);
        let my_net = node.net_node;
        let local = node.add_circuit(nc);
        self.register_route(
            link_id,
            client_id,
            first_hop,
            circ,
            local,
            Direction::Backward,
        );
        let nc = self.nodes[client_id.index()].circuit_at_mut(local);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
        // With faults installed every incarnation arms a build timer —
        // the client's only way to learn about a crash is silence.
        if let Some(f) = self.faults.as_ref() {
            let incarnation = self.circuits[circ.index()].incarnation;
            ctx.schedule_in(
                f.spec.build_timeout(),
                TorEvent::CircTimeout {
                    circ,
                    incarnation,
                    progress: 0,
                    kind: crate::event::TimerKind::Build,
                },
            );
        }
    }

    /// A staggered stream's arrival offset elapsed (from a
    /// [`TorEvent::StreamArrival`]): issue its BEGIN if the circuit is
    /// up. If the circuit is still building, the BEGIN is flushed when
    /// the build completes; if it was torn down, the flow re-arrives on
    /// the rebuilt incarnation.
    pub(super) fn stream_arrival(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        circ: CircId,
        stream: u32,
    ) {
        let client_id = self.circuits[circ.index()].path[0];
        let node = &mut self.nodes[client_id.index()];
        let my_net = node.net_node;
        let Some(local) = node.local_idx(circ) else {
            return; // torn down mid-stagger; the rebuild re-attaches the flow
        };
        let nc = node.circuit_at_mut(local);
        if nc.closed {
            return;
        }
        let app = nc.client.as_mut().expect("client app exists");
        let Some(s) = app.streams.get_mut(stream as usize) else {
            Self::protocol_error(&mut self.stats, "arrival for unknown stream");
            return;
        };
        s.arrived = true;
        if app.stage != ClientStage::Established || s.begin_sent {
            return;
        }
        s.begin_sent = true;
        let qc = Self::begin_cell(s.id, app.server_hop());
        nc.fwd.as_mut().expect("client forward hop").enqueue(qc);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// CREATE: become part of the circuit; answer CREATED.
    pub(super) fn handle_create(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let global = CircId(u32::from_be_bytes(
            handshake[0..4].try_into().expect("4 bytes"),
        ));
        let Some(info) = self.circuits.get(global.index()) else {
            Self::protocol_error(&mut self.stats, "CREATE for unregistered circuit");
            return;
        };
        let Some(position) = info.path.iter().position(|&n| n == to) else {
            Self::protocol_error(&mut self.stats, "CREATE at node not on the path");
            return;
        };
        let is_server = position == info.path.len() - 1;
        let expected_streams = info.workload.streams.len();
        // Under faults a CREATE can still be on the wire when its
        // incarnation dies (crash reap, force-abandon): minting a
        // participation now would orphan a zombie slot and collide on
        // a recycled link id. Confirm the consumed frame so a
        // still-draining predecessor stays exact, and refuse.
        if self.faults.is_some() {
            let client = &self.nodes[info.path[0].index()];
            let dead = match client.local_idx(global) {
                None => true,
                Some(l) => client.circuit_at(l).closed,
            };
            if dead {
                Self::stale_or_protocol_error(
                    &self.faults,
                    &mut self.stats,
                    "CREATE for dead incarnation",
                );
                let my_net = self.nodes[to.index()].net_node;
                Self::send_feedback(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    PendingConfirm {
                        neighbor: from,
                        circ_id: link_id,
                        seq: hop_seq,
                    },
                );
                return;
            }
        }

        let hop_ctx = HopCtx {
            circuit: global,
            position,
            direction: Direction::Backward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));

        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let mut nc = NodeCircuit::new(global, position);
        nc.pred = Some(from);
        nc.pred_circ_id = Some(link_id);
        nc.crypt = Some(RelayCrypt::new(LayerKey::from_handshake(&handshake)));
        if is_server {
            nc.server = Some(ServerApp::new(expected_streams));
        }
        let mut bwd = HopDir::new(from, link_id, transport);
        bwd.enqueue(QueuedCell {
            cell: Cell::created(CircuitId::CONTROL, handshake),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.bwd = Some(bwd);
        let local = node.add_circuit(nc);
        self.register_route(link_id, to, from, global, local, Direction::Forward);

        // Confirm the consumed CREATE, then answer.
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let nc = self.nodes[to.index()].circuit_at_mut(local);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Backward,
        );
    }

    /// CREATED: the hop we asked for exists. At the client this advances
    /// the build; at a relay it answers a pending EXTEND with EXTENDED.
    pub(super) fn handle_created(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        handshake: [u8; HANDSHAKE_LEN],
        hop_seq: u64,
    ) {
        let Some((global, local, _)) = self.route_of(to, from, link_id) else {
            // Under faults a CREATED can race a crash-reap that already
            // cleared this route end.
            Self::stale_or_protocol_error(
                &self.faults,
                &mut self.stats,
                "CREATED on unknown route",
            );
            return;
        };
        let my_net = self.nodes[to.index()].net_node;
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let nc = node.circuit_at_mut(local);
        if nc.closed {
            // Teardown raced the build; the handshake answer dies here
            // (it was confirmed above so the successor's window drains).
            return;
        }
        if nc.client.is_some() {
            self.client_advance_build(ctx, to, global, local, handshake);
        } else {
            // A relay completed an EXTEND: report EXTENDED to the client.
            let Some(echo) = nc.pending_extend.take() else {
                Self::protocol_error(&mut self.stats, "CREATED without pending EXTEND");
                return;
            };
            debug_assert_eq!(echo, handshake, "CREATED must echo the extend handshake");
            let mut rc = RelayCell {
                cmd: RelayCommand::Extended,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&echo),
                data: echo.to_vec(),
            };
            nc.crypt
                .as_mut()
                .expect("relay has crypt state")
                .add_backward(&mut rc);
            let Some(bwd) = nc.bwd.as_mut() else {
                Self::protocol_error(&mut self.stats, "relay without backward hop");
                return;
            };
            bwd.enqueue(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: None,
            });
            Self::pump_dir(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                nc,
                Direction::Backward,
            );
        }
    }

    /// The client gained a key for one more hop: extend further, or open
    /// the arrived streams if the circuit is complete.
    pub(super) fn client_advance_build(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        local: u32,
        handshake: [u8; HANDSHAKE_LEN],
    ) {
        // Pre-generate randomness before borrowing node state.
        let next_handshake = self.make_handshake(circ);
        let node = &mut self.nodes[client.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let app = nc.client.as_mut().expect("client app exists");
        app.route.push_layer(LayerKey::from_handshake(&handshake));
        let built = app.route.len();
        let needed = app.path.len() - 1;
        let mut qcs = Vec::new();
        if built < needed {
            let target = app.path[built + 1];
            app.stage = ClientStage::Building { next: built + 1 };
            let mut data = Vec::with_capacity(4 + HANDSHAKE_LEN);
            data.extend_from_slice(&target.0.to_be_bytes());
            data.extend_from_slice(&next_handshake);
            let rc = RelayCell {
                cmd: RelayCommand::Extend,
                stream: StreamId::CIRCUIT,
                digest: payload_digest(&data),
                data,
            };
            qcs.push(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(built - 1),
            });
        } else {
            // Circuit complete: open every stream that has already
            // arrived. Later arrivals BEGIN from their own events.
            app.stage = ClientStage::Established;
            let server_hop = app.server_hop();
            for s in app.streams.iter_mut().filter(|s| s.arrived) {
                debug_assert!(!s.begin_sent, "BEGIN before the circuit was built");
                s.begin_sent = true;
                qcs.push(Self::begin_cell(s.id, server_hop));
            }
        }
        let fwd = nc.fwd.as_mut().expect("client forward hop");
        for qc in qcs {
            fwd.enqueue(qc);
        }
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// A relay recognized a forward cell: only EXTEND is valid here —
    /// convert it into a CREATE toward the next node.
    pub(super) fn relay_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        relay: OverlayId,
        circ: CircId,
        local: u32,
        rc: RelayCell,
    ) {
        if rc.cmd != RelayCommand::Extend {
            Self::protocol_error(&mut self.stats, "relay consumed a non-EXTEND cell");
            return;
        }
        if rc.data.len() != 4 + HANDSHAKE_LEN {
            Self::protocol_error(&mut self.stats, "malformed EXTEND payload");
            return;
        }
        let target = OverlayId(u32::from_be_bytes(
            rc.data[0..4].try_into().expect("4 bytes"),
        ));
        if target.index() >= self.nodes.len() {
            Self::protocol_error(&mut self.stats, "EXTEND to unknown node");
            return;
        }
        let mut hs = [0u8; HANDSHAKE_LEN];
        hs.copy_from_slice(&rc.data[4..]);
        let new_id = self.alloc_link_circ_id();

        let node = &mut self.nodes[relay.index()];
        let my_net = node.net_node;
        let position = node.circuit_at(local).position;
        self.register_route(new_id, relay, target, circ, local, Direction::Backward);
        let hop_ctx = HopCtx {
            circuit: circ,
            position,
            direction: Direction::Forward,
        };
        let transport = HopTransport::new((self.factory)(&hop_ctx));
        let nc = self.nodes[relay.index()].circuit_at_mut(local);
        nc.pending_extend = Some(hs);
        let mut fwd = HopDir::new(target, new_id, transport);
        fwd.enqueue(QueuedCell {
            cell: Cell::create(CircuitId::CONTROL, hs),
            confirm: None,
            wrap_for_hop: None,
        });
        nc.fwd = Some(fwd);
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            Direction::Forward,
        );
    }

    /// Discards everything queued on one hop direction of a closing
    /// circuit: owed feedback is still paid (upstream windows must
    /// drain) and DATA payload buffers return to the pool. A silently
    /// reaped participation (a crashed relay, or an orphan stranded
    /// beyond one) passes `pay_confirms = false` — a dead node must not
    /// signal anyone.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn drain_hopdir(
        net: &mut Net<crate::wire::WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        pool: &mut PayloadPool,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        hopdir: &mut HopDir,
        pay_confirms: bool,
    ) {
        while let Some(qc) = hopdir.queue.pop_front() {
            stats.cells_drained += 1;
            if let Some(cf) = qc.confirm {
                if pay_confirms {
                    Self::send_feedback(
                        net,
                        link_sched,
                        router,
                        net_node_of,
                        stats,
                        ctx,
                        my_net,
                        cf,
                    );
                }
            }
            if let CellBody::Relay(rc) = qc.cell.body {
                pool.reclaim(rc.data);
            }
        }
    }

    /// Discards every cell of the closing circuit already handed to its
    /// egress scheduler(s). Those cells left the hop queues and were
    /// registered on a transport, but have not begun serializing — left
    /// alone they would burn link time only to be dropped at the
    /// receiver. Each drained cell pays its owed confirm, returns its
    /// payload to the pool, and is retired from the transport that
    /// registered it ([`HopTransport::forget`]) so the teardown
    /// quiescence proof is not waiting on feedback that can never come.
    ///
    /// Both hop directions may share one egress link (a star leaf's
    /// uplink), so the drain runs once per distinct link and dispatches
    /// each frame to its transport by destination.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn drain_scheduled(
        net: &mut Net<crate::wire::WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        pool: &mut PayloadPool,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        nc: &mut NodeCircuit,
        pay_confirms: bool,
    ) {
        let circ = nc.circ;
        let link_of = |h: &HopDir| router.next_link(my_net, net_node_of[h.neighbor.index()]);
        let fwd_link = nc.fwd.as_ref().map(link_of);
        let bwd_link = nc.bwd.as_ref().map(link_of);
        let links = [fwd_link, bwd_link.filter(|b| Some(*b) != fwd_link)];
        for link in links.into_iter().flatten() {
            for frame in link_sched[link.index()].drain_circuit(circ) {
                stats.cells_drained += 1;
                let crate::wire::FramePayload::Cell { cell, hop_seq } = frame.payload else {
                    debug_assert!(false, "feedback frames are never queued per circuit");
                    continue;
                };
                let hopdir = nc
                    .fwd
                    .as_mut()
                    .filter(|h| net_node_of[h.neighbor.index()] == frame.dst)
                    .or_else(|| {
                        nc.bwd
                            .as_mut()
                            .filter(|h| net_node_of[h.neighbor.index()] == frame.dst)
                    });
                match hopdir {
                    Some(h) => {
                        let forgotten = h.transport.forget(hop_seq);
                        debug_assert!(forgotten, "drained cell was not outstanding");
                    }
                    None => debug_assert!(false, "drained cell matches no hop direction"),
                }
                if let CellBody::Relay(rc) = cell.body {
                    pool.reclaim(rc.data);
                }
                if let Some(cf) = frame.confirm {
                    if pay_confirms {
                        Self::send_feedback(
                            net,
                            link_sched,
                            router,
                            net_node_of,
                            stats,
                            ctx,
                            my_net,
                            cf,
                        );
                    }
                }
            }
        }
    }

    /// Marks a participation closed: queues drain (paying confirms,
    /// reclaiming payloads) — both the hop queues and the cells this
    /// circuit already handed to its egress link scheduler(s) — and the
    /// client stops generating cells.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn close_participation(
        net: &mut Net<crate::wire::WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        pool: &mut PayloadPool,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        nc: &mut NodeCircuit,
    ) {
        debug_assert!(!nc.closed, "closing twice");
        nc.closed = true;
        if let Some(app) = nc.client.as_mut() {
            app.stage = ClientStage::Closed;
        }
        Self::drain_scheduled(
            net,
            link_sched,
            router,
            net_node_of,
            stats,
            pool,
            ctx,
            my_net,
            nc,
            true,
        );
        if let Some(h) = nc.fwd.as_mut() {
            Self::drain_hopdir(
                net,
                link_sched,
                router,
                net_node_of,
                stats,
                pool,
                ctx,
                my_net,
                h,
                true,
            );
        }
        if let Some(h) = nc.bwd.as_mut() {
            Self::drain_hopdir(
                net,
                link_sched,
                router,
                net_node_of,
                stats,
                pool,
                ctx,
                my_net,
                h,
                true,
            );
        }
    }

    /// Enqueues a DESTROY on `dir`'s hop and pumps it, returning whether
    /// a neighbour was actually notified. A hop whose transport never
    /// sent anything (a drained, never-sent CREATE) has no peer to
    /// notify — the wave reflects instead. A hop whose neighbour has
    /// **crashed** likewise reflects: the DESTROY could never be
    /// confirmed and no echo can come back, so everything outstanding
    /// toward the dead neighbour is written off
    /// ([`HopTransport::forget_all`]) and the wave turns around here.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn propagate_destroy(
        net: &mut Net<crate::wire::WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        pool: &mut PayloadPool,
        faults: &Option<FaultState>,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        nc: &mut NodeCircuit,
        dir: Direction,
        reason: u8,
    ) -> bool {
        let hopdir = match dir {
            Direction::Forward => nc.fwd.as_mut(),
            Direction::Backward => nc.bwd.as_mut(),
        };
        let Some(hd) = hopdir else {
            return false;
        };
        if faults
            .as_ref()
            .is_some_and(|f| f.is_crashed(hd.neighbor.index()))
        {
            hd.transport.forget_all();
            return false;
        }
        if hd.transport.next_seq() == 0 && hd.queue.is_empty() {
            // Never contacted that neighbour (its CREATE/CREATED was
            // drained unsent): nothing to tear down there.
            return false;
        }
        hd.enqueue(QueuedCell {
            cell: Cell::destroy(CircuitId::CONTROL, reason),
            confirm: None,
            wrap_for_hop: None,
        });
        stats.destroys_sent += 1;
        Self::pump_dir(
            net,
            link_sched,
            router,
            net_node_of,
            stats,
            pool,
            ctx,
            my_net,
            nc,
            dir,
        );
        true
    }

    /// DESTROY: close the circuit and process the teardown wave. A
    /// forward-travelling DESTROY continues toward the server (or
    /// reflects at the end of the built path); the backward echo
    /// continues toward the client.
    pub(super) fn handle_destroy(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        reason: u8,
        hop_seq: u64,
    ) {
        let Some((_global, local, wave)) = self.route_of(to, from, link_id) else {
            // Under faults a DESTROY can land on a void: a crash-reap or
            // force-abandon cleared this route end, or the participation
            // was never minted (its CREATE was stale-dropped by the
            // dead-incarnation gate while the teardown wave chased the
            // build wave down the telescope). The sender's confirm is
            // still owed, and — as a real relay refusing a circuit would
            // — the void answers with a REFUSED DESTROY so the wave can
            // turn around instead of dying here; a REFUSED echo is never
            // itself answered, so two voids cannot volley forever.
            Self::stale_or_protocol_error(
                &self.faults,
                &mut self.stats,
                "DESTROY on unknown route",
            );
            if self.faults.is_some() {
                let my_net = self.nodes[to.index()].net_node;
                Self::send_feedback(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    PendingConfirm {
                        neighbor: from,
                        circ_id: link_id,
                        seq: hop_seq,
                    },
                );
                if reason != DESTROY_REASON_REFUSED {
                    let dst = self.net_node_of[from.index()];
                    let frame = crate::wire::WireFrame {
                        src: my_net,
                        dst,
                        payload: crate::wire::FramePayload::Cell {
                            cell: Cell::destroy(link_id, DESTROY_REASON_REFUSED),
                            // The void has no hop transport; the peer's
                            // confirm for this seq dead-ends as a counted
                            // stale feedback frame.
                            hop_seq: 0,
                        },
                        confirm: None,
                    };
                    Self::sched_send(
                        &mut self.net,
                        &mut self.link_sched,
                        ctx,
                        self.router.next_link(my_net, dst),
                        frame,
                        None,
                    );
                    self.stats.destroys_sent += 1;
                }
            }
            return;
        };
        let my_net = self.nodes[to.index()].net_node;
        Self::send_feedback(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            ctx,
            my_net,
            PendingConfirm {
                neighbor: from,
                circ_id: link_id,
                seq: hop_seq,
            },
        );
        let node = &mut self.nodes[to.index()];
        let nc = node.circuit_at_mut(local);
        if !nc.closed {
            Self::close_participation(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                &mut self.payload_pool,
                ctx,
                my_net,
                nc,
            );
        }
        match wave {
            Direction::Forward => {
                debug_assert!(!nc.destroy_fwd, "duplicate forward DESTROY wave");
                nc.destroy_fwd = true;
                let propagated = Self::propagate_destroy(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    &self.faults,
                    ctx,
                    my_net,
                    nc,
                    Direction::Forward,
                    reason,
                );
                if !propagated {
                    // End of the built path: reflect the echo.
                    nc.destroy_bwd = true;
                    Self::propagate_destroy(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        &mut self.payload_pool,
                        &self.faults,
                        ctx,
                        my_net,
                        nc,
                        Direction::Backward,
                        reason,
                    );
                }
            }
            Direction::Backward => {
                debug_assert!(!nc.destroy_bwd, "duplicate backward DESTROY wave");
                nc.destroy_bwd = true;
                let propagated = Self::propagate_destroy(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    &self.faults,
                    ctx,
                    my_net,
                    nc,
                    Direction::Backward,
                    reason,
                );
                if !propagated {
                    // The client: the echo completed the round trip.
                    nc.destroy_fwd = true;
                }
            }
        }
        self.maybe_reclaim(ctx, to, local);
    }

    /// Client-initiated teardown (from a [`TorEvent::Teardown`]).
    pub(super) fn teardown(&mut self, ctx: &mut Context<'_, TorEvent>, circ: CircId) {
        self.teardown_with_reason(ctx, circ, DESTROY_REASON_FINISHED);
    }

    /// [`TorNetwork::teardown`] carrying an explicit DESTROY reason code
    /// (the recovery loop sends [`super::DESTROY_REASON_TIMEOUT`]).
    pub(super) fn teardown_with_reason(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        circ: CircId,
        reason: u8,
    ) {
        let client_id = self.circuits[circ.index()].path[0];
        let Some(local) = self.nodes[client_id.index()].local_idx(circ) else {
            return;
        };
        if self.nodes[client_id.index()].circuit_at(local).closed {
            return;
        }
        // Participations stranded beyond a crashed hop can never hear
        // the DESTROY wave (the crash gate swallows every frame at the
        // dead relay's door): reap them silently now, standing in for
        // the idle timers real relays would run. The wave itself
        // reflects at the last live hop via `propagate_destroy`.
        if self.faults.is_some() {
            let path = self.circuits[circ.index()].path.clone();
            if let Some(k) = path.iter().position(|&n| self.is_crashed(n)) {
                for &n in &path[k + 1..] {
                    self.reap_participation(ctx, n, circ);
                }
            }
        }
        let node = &mut self.nodes[client_id.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        Self::close_participation(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
        );
        nc.destroy_fwd = true;
        let propagated = Self::propagate_destroy(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            &self.faults,
            ctx,
            my_net,
            nc,
            Direction::Forward,
            reason,
        );
        if !propagated {
            // No neighbour was ever contacted (or the first hop is
            // dead); the teardown is already complete.
            nc.destroy_bwd = true;
        }
        self.maybe_reclaim(ctx, client_id, local);
    }

    /// Reclaims a participation's slots once teardown quiescence is
    /// proven (see [`NodeCircuit::reclaimable`]): the slab slot returns
    /// to the node's free list and this node's route ends are cleared
    /// (freeing the link-local id once both ends are gone). At the
    /// client this also drives the churn engine: unfinished flows
    /// schedule a rebuild.
    pub(super) fn maybe_reclaim(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        node_id: OverlayId,
        local: u32,
    ) {
        let node = &mut self.nodes[node_id.index()];
        let nc = node.circuit_at(local);
        if nc.is_vacant() || !nc.reclaimable() {
            return;
        }
        let circ = nc.circ;
        let is_client = nc.client.is_some();
        let link_ids = [
            nc.fwd.as_ref().map(|h| h.link_circ_id),
            nc.bwd.as_ref().map(|h| h.link_circ_id),
        ];
        node.remove_circuit(local);
        for id in link_ids.into_iter().flatten() {
            self.clear_route_end(id, node_id);
        }
        self.stats.slots_reclaimed += 1;
        if is_client {
            // The client proving teardown quiescence retires the whole
            // incarnation from the live placement view — exactly once
            // per incarnation, so churn feeds back into later
            // selections (congestion-aware policies see relays free up).
            self.unaccount_placement(circ);
            let info = &self.circuits[circ.index()];
            let unfinished = info
                .workload
                .streams
                .iter()
                .any(|s| !self.flows[s.flow.index()].complete());
            if unfinished {
                ctx.schedule_in(info.workload.rebuild_delay, TorEvent::Rebuild(circ));
            }
        }
    }

    /// Re-attaches a torn-down circuit's unfinished flows to a fresh
    /// circuit (from a [`TorEvent::Rebuild`]). With a placement seam
    /// installed the relays are **re-selected** through the
    /// [`crate::selection::PathSelection`] policy under the current load
    /// view — churn feeds back into placement, as real clients re-route
    /// around congested relays; without one (explicit-path worlds) the
    /// original path is reused. Each flow resumes at its remaining byte
    /// count; flows whose arrival offset has not yet elapsed keep their
    /// original arrival time.
    pub(super) fn rebuild_circuit(&mut self, ctx: &mut Context<'_, TorEvent>, old: CircId) {
        let now = ctx.now();
        let old_info = &self.circuits[old.index()];
        let old_path = old_info.path.clone();
        let incarnation = old_info.incarnation + 1;
        let old_retries = old_info.retries;
        // Graceful degradation: a lineage that exhausted its retry cap,
        // or a world whose selectable relay set fell below the interior
        // path length, parks its unfinished flows instead of rebuilding
        // (and instead of panicking inside `select_relays`). Parked
        // circuits resume when the next epoch join replenishes the set.
        if let Some(f) = self.faults.as_ref() {
            let interior = old_path.len().saturating_sub(2);
            let over_cap = old_retries > f.spec.max_retries;
            let too_thin = self.selectable_relays().is_some_and(|live| live < interior);
            if over_cap || too_thin {
                let parked = self.circuits[old.index()]
                    .workload
                    .streams
                    .iter()
                    .filter(|s| !self.flows[s.flow.index()].complete())
                    .count() as u64;
                if parked == 0 {
                    return;
                }
                self.stats.flows_parked += parked;
                self.faults
                    .as_mut()
                    .expect("checked above")
                    .parked
                    .push(old);
                return;
            }
        }
        let path = if self.placement.is_some() && old_path.len() > 2 {
            let relays = self.select_relays(old_path.len() - 2);
            let mut path = Vec::with_capacity(old_path.len());
            path.push(old_path[0]);
            path.extend(relays);
            path.push(*old_path.last().expect("non-empty path"));
            path
        } else {
            old_path
        };
        let old_info = &self.circuits[old.index()];
        let mut streams = Vec::new();
        for s in &old_info.workload.streams {
            let f = &self.flows[s.flow.index()];
            if f.complete() {
                continue;
            }
            let offset = f
                .arrival_at
                .map_or(SimDuration::ZERO, |at| at.saturating_duration_since(now));
            streams.push(StreamSpec {
                flow: s.flow,
                bytes: f.remaining(),
                offset,
            });
        }
        if streams.is_empty() {
            return;
        }
        let workload = CircuitWorkload {
            streams,
            teardown_after: old_info
                .workload
                .teardown_after
                .iter()
                .skip(1)
                .copied()
                .collect(),
            rebuild_delay: old_info.workload.rebuild_delay,
        };
        self.stats.rebuilds += 1;
        let new = self.add_circuit_with_workload(path, workload, incarnation);
        // Timeout charges carry across incarnations: the backoff law and
        // the retry cap apply to the flow lineage, not to one circuit.
        self.circuits[new.index()].retries = old_retries;
        self.start_circuit(ctx, new);
    }

    /// Applies one consensus epoch delta (from a [`TorEvent::Epoch`]):
    /// joining relays go live (selectable again, O(log n) sampler
    /// update each), departing relays go dark, and every accounted
    /// circuit crossing a departure is torn down through the normal
    /// two-wave DESTROY machinery — its unfinished flows rebuild under
    /// the live policy once teardown quiesces, exactly like
    /// workload-driven churn.
    pub(super) fn apply_epoch(&mut self, ctx: &mut Context<'_, TorEvent>, epoch: u32) {
        let Some(delta) = self.epoch_deltas.get_mut(epoch as usize) else {
            return;
        };
        let delta = std::mem::take(delta);
        if delta.is_empty() {
            self.stats.epochs_applied += 1;
            return;
        }
        // Joins first: a relay must never be both dark and picked by a
        // rebuild triggered later in this same boundary.
        let mut joined = 0u64;
        for &r in &delta.join {
            if self.set_relay_live(r as usize, true) {
                joined += 1;
            }
        }
        let mut departed = 0u64;
        for &r in &delta.leave {
            if self.set_relay_live(r as usize, false) {
                departed += 1;
            }
        }
        self.stats.relays_joined += joined;
        self.stats.relays_departed += departed;
        self.stats.epochs_applied += 1;
        // Fresh capacity joined the consensus: wake every parked lineage
        // with a clean retry budget. If the set is still too thin the
        // rebuild simply re-parks — no event loop.
        if joined > 0 {
            if let Some(f) = self.faults.as_mut() {
                let parked = std::mem::take(&mut f.parked);
                for &c in &parked {
                    let delay = self.circuits[c.index()].workload.rebuild_delay;
                    self.circuits[c.index()].retries = 0;
                    ctx.schedule_in(delay, TorEvent::Rebuild(c));
                }
            }
        }
        // Mark the departing relays' overlay nodes, then tear down every
        // live circuit crossing one. `teardown` no-ops on circuits
        // already vacant or closed, so racing workload churn is safe.
        let p = self.placement.as_ref().expect("epochs need a placement");
        let mut leaving = vec![false; self.nodes.len()];
        for &r in &delta.leave {
            leaving[p.relay_overlays[r as usize].index()] = true;
        }
        for i in 0..self.circuits.len() {
            let crosses = {
                let info = &self.circuits[i];
                info.accounted && info.path.iter().any(|n| leaving[n.index()])
            };
            if crosses {
                self.stats.epoch_teardowns += 1;
                self.teardown(ctx, CircId(i as u32));
            }
        }
        debug_assert!(
            self.verify_placement_ledger(),
            "epoch {epoch}: placement ledger out of sync"
        );
    }
}
