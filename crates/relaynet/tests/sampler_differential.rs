//! The sampler seam, differentially: the Fenwick tree must reproduce
//! the legacy linear scan **pick for pick** — same draws, same RNG
//! consumption, same maintained totals — over random directories,
//! zero-weight patterns, and incremental update storms. This is the
//! equivalence contract that lets `SamplerKind::Auto` switch
//! implementations by size without perturbing a single experiment
//! (DESIGN.md §11).

use simcore::rng::SimRng;
use simcore::time::SimDuration;

use relaynet::directory::{Directory, DirectoryConfig};
use relaynet::sampler::{Sampler, SamplerKind};
use relaynet::selection::{all_policies, DirectoryView, SelectionEngine};

/// Integer-quantized weights drawn like a consensus: log-uniform
/// bandwidths, with a configurable fraction zeroed (dead relays).
fn random_weights(n: usize, zero_fraction: f64, rng: &mut SimRng) -> Vec<f64> {
    let zeros = ((n as f64) * zero_fraction) as usize;
    let dark: Vec<usize> = rng.sample_distinct(n, zeros);
    let mut w: Vec<f64> = (0..n)
        .map(|_| rng.range_f64(1.0, 125_000_000.0).round())
        .collect();
    for &i in &dark {
        w[i] = 0.0;
    }
    w
}

#[test]
fn fenwick_matches_linear_pick_for_pick() {
    // 3 seeds × 4 sizes × 3 zero-weight patterns, 200 draw rounds each.
    for seed in [11u64, 47, 1003] {
        for n in [5usize, 64, 257, 1024] {
            for zero_fraction in [0.0, 0.25, 0.6] {
                let mut setup = SimRng::seed_from(seed ^ (n as u64) << 8);
                let weights = random_weights(n, zero_fraction, &mut setup);
                let positive = weights.iter().filter(|&&w| w > 0.0).count();
                let k = 3.min(positive);
                if k == 0 {
                    continue;
                }
                let mut lin = Sampler::build(SamplerKind::Linear, &weights);
                let mut fen = Sampler::build(SamplerKind::Fenwick, &weights);
                assert_eq!(lin.name(), "linear");
                assert_eq!(fen.name(), "fenwick");
                let mut rng_l = SimRng::seed_from(seed.wrapping_mul(31));
                let mut rng_f = rng_l.clone();
                let mut picks_l = Vec::new();
                let mut picks_f = Vec::new();
                for round in 0..200 {
                    lin.draw_distinct(&mut rng_l, k, &mut picks_l);
                    fen.draw_distinct(&mut rng_f, k, &mut picks_f);
                    assert_eq!(
                        picks_l, picks_f,
                        "seed {seed} n {n} zeros {zero_fraction} round {round}"
                    );
                    assert_eq!(lin.total(), fen.total(), "totals diverged");
                    assert_eq!(lin.selectable(), fen.selectable());
                }
                // Identical RNG consumption: both streams sit at the
                // same point, so a shared draw still agrees.
                assert_eq!(
                    rng_l.range_f64(0.0, 1e9),
                    rng_f.range_f64(0.0, 1e9),
                    "samplers consumed different amounts of randomness"
                );
            }
        }
    }
}

#[test]
fn incremental_updates_match_a_full_rebuild() {
    // Storm of point updates against both implementations, then verify
    // each against a from-scratch rebuild of the same weight vector:
    // the maintained state (weights, total, selectable count) and the
    // next draws must be indistinguishable from a fresh build.
    for seed in [3u64, 91, 777] {
        let mut setup = SimRng::seed_from(seed);
        let n = 300;
        let mut weights = random_weights(n, 0.3, &mut setup);
        let mut lin = Sampler::build(SamplerKind::Linear, &weights);
        let mut fen = Sampler::build(SamplerKind::Fenwick, &weights);
        for _ in 0..2000 {
            let i = setup.range_usize(0, n);
            // Mix zeroing (departures), revivals, and load-style bumps.
            let w = match setup.range_usize(0, 3) {
                0 => 0.0,
                1 => setup.range_f64(1.0, 125_000_000.0).round(),
                _ => (weights[i] / 2.0).round(),
            };
            weights[i] = w;
            lin.set(i, w);
            fen.set(i, w);
        }
        let rebuilt = Sampler::build(SamplerKind::Fenwick, &weights);
        assert_eq!(fen.total(), rebuilt.total(), "seed {seed}: total drifted");
        assert_eq!(fen.selectable(), rebuilt.selectable());
        for (i, &w) in weights.iter().enumerate() {
            assert_eq!(lin.weight(i), w);
            assert_eq!(fen.weight(i), w);
        }
        let k = 3.min(fen.selectable());
        if k > 0 {
            let mut rng_a = SimRng::seed_from(seed + 1);
            let mut rng_b = rng_a.clone();
            let mut rng_c = rng_a.clone();
            let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
            let mut rebuilt = rebuilt;
            lin.draw_distinct(&mut rng_a, k, &mut a);
            fen.draw_distinct(&mut rng_b, k, &mut b);
            rebuilt.draw_distinct(&mut rng_c, k, &mut c);
            assert_eq!(a, b);
            assert_eq!(b, c, "incrementally maintained ≠ rebuilt");
        }
    }
}

#[test]
fn engine_matches_policy_over_generated_directories() {
    // End-to-end: for every shipped policy, the incremental engine over
    // either sampler must reproduce `policy.select` exactly while load
    // and liveness churn underneath — 3 seeds each.
    for seed in [5u64, 29, 403] {
        for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
            for policy in all_policies() {
                let mut dir = Directory::generate(
                    &DirectoryConfig {
                        relays: 120,
                        ..DirectoryConfig::default()
                    },
                    &SimRng::seed_from(seed),
                );
                let mut load = vec![0u32; dir.len()];
                let mut engine =
                    SelectionEngine::new(policy.as_ref(), &DirectoryView::new(&dir, &load), kind);
                let mut rng_a = SimRng::seed_from(seed ^ 0xFEED);
                let mut rng_b = rng_a.clone();
                let mut mutate = SimRng::seed_from(seed + 7);
                for round in 0..150 {
                    let view = DirectoryView::new(&dir, &load);
                    let want = policy.select(&view, &mut rng_a, 3);
                    let got = engine.select(policy.as_ref(), &view, &mut rng_b, 3);
                    assert_eq!(
                        got,
                        want.as_slice(),
                        "{} {kind:?} seed {seed} round {round}",
                        policy.name()
                    );
                    // Load increments/decrements like the placement ledger.
                    for &r in got {
                        load[r] += 1;
                    }
                    let picked: Vec<usize> = got.to_vec();
                    for r in picked {
                        engine.load_changed(policy.as_ref(), &DirectoryView::new(&dir, &load), r);
                    }
                    if round % 20 == 19 {
                        let d = mutate.range_usize(0, dir.len());
                        let next = !dir.is_live(d);
                        dir.set_live(d, next);
                        engine.relay_changed(policy.as_ref(), &DirectoryView::new(&dir, &load), d);
                    }
                }
            }
        }
    }
}

#[test]
fn draw_without_replacement_restores_the_sampler() {
    // Exhaustive draws must leave the sampler exactly as built: the
    // undo stack puts every zeroed weight back, and integer exactness
    // returns the total to its original value bit for bit.
    let weights: Vec<f64> = (1..=40).map(|i| (i * 1000) as f64).collect();
    for kind in [SamplerKind::Linear, SamplerKind::Fenwick] {
        let mut s = Sampler::build(kind, &weights);
        let total = s.total();
        let mut rng = SimRng::seed_from(77);
        let mut out = Vec::new();
        for _ in 0..50 {
            s.draw_distinct(&mut rng, weights.len(), &mut out);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..weights.len()).collect::<Vec<_>>());
            assert_eq!(s.total(), total, "{kind:?}: total not restored");
            assert_eq!(s.selectable(), weights.len());
        }
    }
}

#[test]
fn auto_kind_resolves_by_directory_size() {
    let small = vec![1.0; 8];
    let large = vec![1.0; 4096];
    assert_eq!(Sampler::build(SamplerKind::Auto, &small).name(), "linear");
    assert_eq!(Sampler::build(SamplerKind::Auto, &large).name(), "fenwick");
}

#[test]
fn dark_relays_draw_identically_to_a_dense_directory() {
    // Liveness zeroing must not perturb the draw sequence relative to a
    // directory that never contained the dark relays (indices remapped)
    // — zero weights are exact no-ops in every prefix sum.
    let mut dir = Directory::from_specs(
        (1..=12u64)
            .map(|i| relaynet::RelaySpec {
                bandwidth: netsim::bandwidth::Bandwidth::from_mbps(10 * i),
                delay: SimDuration::from_millis(i),
            })
            .collect(),
    );
    let dense = Directory::from_specs(
        (1..=12u64)
            .filter(|i| i % 3 != 0)
            .map(|i| relaynet::RelaySpec {
                bandwidth: netsim::bandwidth::Bandwidth::from_mbps(10 * i),
                delay: SimDuration::from_millis(i),
            })
            .collect(),
    );
    for i in (2..12).step_by(3) {
        dir.set_live(i, false); // every i with (i+1) % 3 == 0 goes dark
    }
    let sparse_to_dense: Vec<usize> = (0..12).filter(|i| (i + 1) % 3 != 0).enumerate().fold(
        vec![usize::MAX; 12],
        |mut m, (d, s)| {
            m[s] = d;
            m
        },
    );
    let load_a = vec![0u32; dir.len()];
    let load_b = vec![0u32; dense.len()];
    let policy = relaynet::BandwidthWeighted;
    let mut rng_a = SimRng::seed_from(13);
    let mut rng_b = rng_a.clone();
    use relaynet::PathSelection;
    for _ in 0..100 {
        let a = policy.select(&DirectoryView::new(&dir, &load_a), &mut rng_a, 3);
        let b = policy.select(&DirectoryView::new(&dense, &load_b), &mut rng_b, 3);
        let a_mapped: Vec<usize> = a.iter().map(|&i| sparse_to_dense[i]).collect();
        assert_eq!(a_mapped, b, "dark relays perturbed the draws");
    }
}
