// cs-lint-fixture: path = "crates/relaynet/src/hard_raw_strings.rs"
// Every violation below is spelled inside a string literal; a lexer
// that mishandles raw-string fences would leak them into the token
// stream as code. This file must produce ZERO findings.

fn strings() -> Vec<String> {
    vec![
        "Instant::now() in a plain string".to_string(),
        "escaped quote \" then HashMap<u64, u64>".to_string(),
        r"raw: thread::spawn(|| {})".to_string(),
        r#"raw hash fence: SimRng::seed_from(1).derive("x")"#.to_string(),
        r##"inner fence "# then SystemTime::now()"##.to_string(),
        r#"println!("x.unwrap()")"#.to_string(),
        String::from_utf8_lossy(b"byte string: HashSet::new()").to_string(),
        String::from_utf8_lossy(br#"raw bytes: dbg!(x)"#).to_string(),
    ]
}

// Code after the string gallery still lexes as code; if a fence above
// desynced the lexer, the tokens below would vanish or shift and the
// fixture's zero-finding assertion would still hold — so prove sync by
// ending with a clean, ordinary item the harness can see.
fn after(x: Option<u64>) -> u64 {
    x.unwrap_or(7)
}
