//! Per-node overlay state.
//!
//! Each overlay node (client, relay, or server) keeps, per circuit it
//! participates in, a [`NodeCircuit`]: the per-direction hop transports
//! and queues, the relay-side onion layer, and — at the endpoints — the
//! application state machines.
//!
//! Participations live in a dense slab (`Vec<NodeCircuit>`) indexed by a
//! node-local id handed out at join time; the per-cell pipeline resolves
//! straight to that index through the network-level route table
//! (`relaynet::network`) and never walks a map. A small `BTreeMap` keyed
//! by the global [`CircId`] serves only cold paths — setup, teardown, and
//! telemetry. (Deterministic by construction: nothing here is iterated in
//! hash order.)

use std::collections::{BTreeMap, VecDeque};

use backtap::cc::CongestionControl;
use backtap::hop::HopTransport;
use netsim::net::NodeId;
use simcore::time::SimTime;
use torcell::cell::{Cell, HANDSHAKE_LEN};
use torcell::crypto::{OnionRoute, RelayCrypt};
use torcell::ids::CircuitId;

use crate::ids::{CircId, Direction, OverlayId};

/// What kind of overlay participant a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// Originates circuits and data (the onion proxy).
    Client,
    /// Forwards cells between neighbours.
    Relay,
    /// Terminates circuits and consumes data.
    Server,
}

/// Context handed to the congestion-controller factory for every hop
/// transport created.
#[derive(Clone, Copy, Debug)]
pub struct HopCtx {
    /// Which circuit the transport belongs to.
    pub circuit: CircId,
    /// The owning node's position on the path (0 = client).
    pub position: usize,
    /// Which direction the transport sends in.
    pub direction: Direction,
}

/// Creates the congestion controller for a hop transport.
///
/// The experiment harness supplies this; it is how the CircuitStart
/// algorithm (which lives above this crate) is plugged into the overlay.
pub type CcFactory = Box<dyn Fn(&HopCtx) -> Box<dyn CongestionControl + Send>>;

/// Feedback owed to the neighbour a cell arrived from, payable at the
/// moment the cell is forwarded (relays) or consumed (endpoints).
#[derive(Clone, Copy, Debug)]
pub struct PendingConfirm {
    /// Neighbour to notify.
    pub neighbor: OverlayId,
    /// Link-local circuit id on that neighbour's connection.
    pub circ_id: CircuitId,
    /// The neighbour's per-hop sequence number for the cell.
    pub seq: u64,
}

/// A cell waiting in a hop's egress queue.
#[derive(Clone, Debug)]
pub struct QueuedCell {
    /// The cell (its `circ` field is restamped at send time).
    pub cell: Cell,
    /// Feedback owed upstream once this cell leaves the queue.
    pub confirm: Option<PendingConfirm>,
    /// For client-originated relay cells: the hop (layer index) that must
    /// recognize the cell; onion wrapping happens at dequeue so that layer
    /// counters advance in exact send order.
    pub wrap_for_hop: Option<usize>,
}

/// One direction of one circuit at one node: the transport toward the
/// neighbour plus the queue of cells waiting for the window.
pub struct HopDir {
    /// The adjacent overlay node this hop sends to.
    pub neighbor: OverlayId,
    /// Link-local circuit id stamped on every cell sent on this hop.
    pub link_circ_id: CircuitId,
    /// Window/feedback machinery.
    pub transport: HopTransport,
    /// Cells awaiting window credit.
    pub queue: VecDeque<QueuedCell>,
    /// Largest queue length observed (bounded by the predecessor's window
    /// — the backpressure property the tests assert).
    pub queue_hwm: usize,
}

impl HopDir {
    /// Creates a hop direction.
    pub fn new(neighbor: OverlayId, link_circ_id: CircuitId, transport: HopTransport) -> HopDir {
        HopDir {
            neighbor,
            link_circ_id,
            transport,
            queue: VecDeque::new(),
            queue_hwm: 0,
        }
    }

    /// Enqueues a cell and updates the high-water mark.
    pub fn enqueue(&mut self, qc: QueuedCell) {
        self.queue.push_back(qc);
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
    }
}

/// Client-side build/transfer state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientStage {
    /// Waiting for CREATED/EXTENDED of hop `next` (1 = first relay).
    Building {
        /// Index into the path of the hop being created.
        next: usize,
    },
    /// BEGIN sent, waiting for CONNECTED.
    Opening,
    /// Bulk data flowing.
    Transferring,
    /// END sent; all data handed to the network.
    Finished,
}

/// Client application state for one circuit.
pub struct ClientApp {
    /// Full path including the client itself and the server.
    pub path: Vec<OverlayId>,
    /// Onion layers negotiated so far.
    pub route: OnionRoute,
    /// Build/transfer stage.
    pub stage: ClientStage,
    /// Total payload bytes to transfer.
    pub file_bytes: u64,
    /// Total DATA cells the transfer needs.
    pub total_cells: u64,
    /// DATA cells sent so far.
    pub sent_cells: u64,
    /// Whether the trailing END cell has been sent.
    pub end_sent: bool,
    /// When the circuit build started.
    pub started_at: SimTime,
    /// When CONNECTED arrived (transfer begins).
    pub connected_at: Option<SimTime>,
    /// When the first DATA cell was sent.
    pub first_data_at: Option<SimTime>,
}

impl ClientApp {
    /// Creates client state for a transfer of `file_bytes` over `path`.
    ///
    /// # Panics
    ///
    /// Panics if the path is shorter than client + server or the file is
    /// empty.
    pub fn new(path: Vec<OverlayId>, file_bytes: u64, started_at: SimTime) -> ClientApp {
        assert!(
            path.len() >= 2,
            "a circuit needs at least client and server"
        );
        assert!(file_bytes > 0, "cannot transfer an empty file");
        let payload = torcell::cell::RELAY_DATA_MAX as u64;
        ClientApp {
            path,
            route: OnionRoute::new(),
            stage: ClientStage::Building { next: 1 },
            file_bytes,
            total_cells: file_bytes.div_ceil(payload),
            sent_cells: 0,
            end_sent: false,
            started_at,
            connected_at: None,
            first_data_at: None,
        }
    }

    /// Bytes the DATA cell with index `idx` carries.
    pub fn cell_len(&self, idx: u64) -> usize {
        let payload = torcell::cell::RELAY_DATA_MAX as u64;
        if idx + 1 < self.total_cells {
            payload as usize
        } else {
            let rem = self.file_bytes - (self.total_cells - 1) * payload;
            rem as usize
        }
    }

    /// The layer index of the server (the hop that recognizes DATA).
    pub fn server_hop(&self) -> usize {
        self.path.len() - 2
    }
}

/// Server application state for one circuit.
#[derive(Clone, Debug, Default)]
pub struct ServerApp {
    /// Stream established (BEGIN processed).
    pub stream_open: bool,
    /// DATA cells consumed.
    pub cells_received: u64,
    /// Payload bytes consumed.
    pub bytes_received: u64,
    /// Arrival time of the first DATA cell.
    pub first_byte_at: Option<SimTime>,
    /// Arrival time of the most recent DATA cell.
    pub last_byte_at: Option<SimTime>,
    /// END received — transfer complete.
    pub ended: bool,
    /// Payload-verification failures (must stay 0).
    pub payload_errors: u64,
}

/// A node's participation in one circuit.
pub struct NodeCircuit {
    /// Global circuit id (simulator bookkeeping).
    pub circ: CircId,
    /// This node's position on the path (0 = client).
    pub position: usize,
    /// Neighbour toward the client, if any.
    pub pred: Option<OverlayId>,
    /// Link-local id on the predecessor connection.
    pub pred_circ_id: Option<CircuitId>,
    /// Transport and queue toward the server (None at the server).
    pub fwd: Option<HopDir>,
    /// Transport and queue toward the client (None at the client).
    pub bwd: Option<HopDir>,
    /// Relay-side onion layer (None at the client).
    pub crypt: Option<RelayCrypt>,
    /// Handshake blob of an EXTEND in progress, echoed in EXTENDED.
    pub pending_extend: Option<[u8; HANDSHAKE_LEN]>,
    /// Client application (only at position 0).
    pub client: Option<ClientApp>,
    /// Server application (only at the last position).
    pub server: Option<ServerApp>,
    /// Circuit has been torn down (DESTROY seen); late cells are dropped.
    pub closed: bool,
}

impl NodeCircuit {
    /// Creates an empty participation record.
    pub fn new(circ: CircId, position: usize) -> NodeCircuit {
        NodeCircuit {
            circ,
            position,
            pred: None,
            pred_circ_id: None,
            fwd: None,
            bwd: None,
            crypt: None,
            pending_extend: None,
            client: None,
            server: None,
            closed: false,
        }
    }

    /// The hop direction that *sends to* `neighbor`, used to route
    /// feedback to the right transport.
    pub fn hopdir_toward_mut(&mut self, neighbor: OverlayId) -> Option<&mut HopDir> {
        if self.fwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return self.fwd.as_mut();
        }
        if self.bwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return self.bwd.as_mut();
        }
        None
    }

    /// The direction of the hop that sends to `neighbor`.
    pub fn direction_toward(&self, neighbor: OverlayId) -> Option<Direction> {
        if self.fwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return Some(Direction::Forward);
        }
        if self.bwd.as_ref().is_some_and(|h| h.neighbor == neighbor) {
            return Some(Direction::Backward);
        }
        None
    }
}

/// An overlay node: identity plus all per-circuit state.
pub struct OverlayNode {
    /// Overlay id.
    pub id: OverlayId,
    /// Backing network node.
    pub net_node: NodeId,
    /// Participant kind.
    pub role: NodeRole,
    /// Diagnostic name.
    pub name: String,
    /// Per-circuit state, dense by node-local index (slab; participations
    /// are never removed, circuits are marked closed instead).
    circuits: Vec<NodeCircuit>,
    /// Cold-path lookup: global circuit id → node-local index. The
    /// per-cell pipeline bypasses this via the route table.
    by_global: BTreeMap<CircId, u32>,
}

impl OverlayNode {
    /// Creates a node.
    pub fn new(id: OverlayId, net_node: NodeId, role: NodeRole, name: String) -> OverlayNode {
        OverlayNode {
            id,
            net_node,
            role,
            name,
            circuits: Vec::new(),
            by_global: BTreeMap::new(),
        }
    }

    /// Registers a participation, returning its node-local index.
    pub fn add_circuit(&mut self, nc: NodeCircuit) -> u32 {
        let local = u32::try_from(self.circuits.len()).expect("too many circuits at one node");
        self.by_global.insert(nc.circ, local);
        self.circuits.push(nc);
        local
    }

    /// The node-local index of a circuit, if this node participates.
    pub fn local_idx(&self, circ: CircId) -> Option<u32> {
        self.by_global.get(&circ).copied()
    }

    /// Participation by node-local index (the hot path; indexes resolve
    /// through the route table).
    #[inline]
    pub fn circuit_at(&self, local: u32) -> &NodeCircuit {
        &self.circuits[local as usize]
    }

    /// Mutable participation by node-local index.
    #[inline]
    pub fn circuit_at_mut(&mut self, local: u32) -> &mut NodeCircuit {
        &mut self.circuits[local as usize]
    }

    /// Participation by global circuit id (cold paths: setup, teardown,
    /// telemetry).
    pub fn circuit(&self, circ: CircId) -> Option<&NodeCircuit> {
        Some(self.circuit_at(self.local_idx(circ)?))
    }

    /// Mutable participation by global circuit id (cold paths).
    pub fn circuit_mut(&mut self, circ: CircId) -> Option<&mut NodeCircuit> {
        let local = self.local_idx(circ)?;
        Some(self.circuit_at_mut(local))
    }

    /// Number of circuits this node participates in.
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backtap::cc::FixedWindowCc;

    fn transport() -> HopTransport {
        HopTransport::new(Box::new(FixedWindowCc::new(4)))
    }

    #[test]
    fn client_app_cell_accounting() {
        let path = vec![OverlayId(0), OverlayId(1), OverlayId(2)];
        let app = ClientApp::new(path, 1000, SimTime::ZERO);
        // 1000 bytes / 496 per cell = 3 cells: 496 + 496 + 8.
        assert_eq!(app.total_cells, 3);
        assert_eq!(app.cell_len(0), 496);
        assert_eq!(app.cell_len(1), 496);
        assert_eq!(app.cell_len(2), 8);
        assert_eq!(app.server_hop(), 1);
    }

    #[test]
    fn client_app_exact_multiple() {
        let path = vec![OverlayId(0), OverlayId(1)];
        let app = ClientApp::new(path, 992, SimTime::ZERO);
        assert_eq!(app.total_cells, 2);
        assert_eq!(app.cell_len(1), 496);
    }

    #[test]
    fn client_app_single_byte() {
        let app = ClientApp::new(vec![OverlayId(0), OverlayId(1)], 1, SimTime::ZERO);
        assert_eq!(app.total_cells, 1);
        assert_eq!(app.cell_len(0), 1);
    }

    #[test]
    #[should_panic(expected = "empty file")]
    fn client_app_rejects_empty_file() {
        let _ = ClientApp::new(vec![OverlayId(0), OverlayId(1)], 0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "client and server")]
    fn client_app_rejects_short_path() {
        let _ = ClientApp::new(vec![OverlayId(0)], 10, SimTime::ZERO);
    }

    #[test]
    fn hopdir_queue_hwm() {
        let mut hd = HopDir::new(OverlayId(1), CircuitId(5), transport());
        for _ in 0..3 {
            hd.enqueue(QueuedCell {
                cell: Cell::destroy(CircuitId(5), 0),
                confirm: None,
                wrap_for_hop: None,
            });
        }
        hd.queue.pop_front();
        hd.enqueue(QueuedCell {
            cell: Cell::destroy(CircuitId(5), 0),
            confirm: None,
            wrap_for_hop: None,
        });
        assert_eq!(hd.queue_hwm, 3);
    }

    #[test]
    fn node_circuit_direction_resolution() {
        let mut nc = NodeCircuit::new(CircId(0), 1);
        nc.fwd = Some(HopDir::new(OverlayId(2), CircuitId(10), transport()));
        nc.bwd = Some(HopDir::new(OverlayId(0), CircuitId(11), transport()));
        assert_eq!(nc.direction_toward(OverlayId(2)), Some(Direction::Forward));
        assert_eq!(nc.direction_toward(OverlayId(0)), Some(Direction::Backward));
        assert_eq!(nc.direction_toward(OverlayId(9)), None);
        assert!(nc.hopdir_toward_mut(OverlayId(2)).is_some());
        assert!(nc.hopdir_toward_mut(OverlayId(9)).is_none());
    }
}
