// cs-lint-fixture: path = "crates/relaynet/src/badclock.rs"
// A helper reads the clock; every fn that can REACH it through
// workspace calls fires at its call site, even though none of them
// mention Instant themselves. The direct read stays a token-level
// wall-clock finding (no double report from the transitive rule).

fn stamp() -> u64 {
    let t = std::time::Instant::now(); //~ wall-clock
    let _ = t;
    0
}

pub fn wraps() -> u64 {
    stamp() + 1 //~ transitive-wall-clock
}

pub fn upper() -> u64 {
    wraps() * 2 //~ transitive-wall-clock
}

// Two reaching calls on one line produce one finding for the line.
pub fn twice() -> u64 {
    wraps() + wraps() //~ transitive-wall-clock
}
