#!/usr/bin/env bash
# CI-style gate: formatting, lints, tests, and an end-to-end smoke run.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cs-lint: determinism-and-invariant gate (DESIGN.md §14)"
cargo build -q --release -p cs-lint
lint_bin=target/release/cs-lint
lint_t0=$(date +%s%N)
"${lint_bin}"
lint_ms=$(( ($(date +%s%N) - lint_t0) / 1000000 ))
echo "    self-scan took ${lint_ms} ms (budget: 2000 ms)"
if [ "${lint_ms}" -ge 2000 ]; then
    echo "    FAIL: cs-lint self-scan blew its 2 s budget" >&2
    exit 1
fi

echo "==> cs-lint --json smoke (schema: tool, files_scanned, rule_counts)"
lint_json=$("${lint_bin}" --json)
echo "${lint_json}" | grep -q '"tool": "cs-lint"'
echo "${lint_json}" | grep -q '"files_scanned": '
echo "${lint_json}" | grep -q '"rule_counts": '

echo "==> cs-lint --fix-annotations --apply smoke (idempotent on a scratch tree)"
apply_dir=$(mktemp -d)
trap 'rm -rf "${apply_dir}"' EXIT
mkdir -p "${apply_dir}/crates/relaynet/src"
printf '[package]\nname = "scratch-root"\n' > "${apply_dir}/Cargo.toml"
printf '[package]\nname = "relaynet"\n' > "${apply_dir}/crates/relaynet/Cargo.toml"
printf 'pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n' \
    > "${apply_dir}/crates/relaynet/src/lib.rs"
if "${lint_bin}" --root "${apply_dir}" > /dev/null; then
    echo "    FAIL: scratch tree should have findings before apply" >&2
    exit 1
fi
"${lint_bin}" --root "${apply_dir}" --fix-annotations --apply > /dev/null
"${lint_bin}" --root "${apply_dir}" > /dev/null   # clean after apply
cp "${apply_dir}/crates/relaynet/src/lib.rs" "${apply_dir}/before.rs"
"${lint_bin}" --root "${apply_dir}" --fix-annotations --apply > /dev/null
cmp -s "${apply_dir}/before.rs" "${apply_dir}/crates/relaynet/src/lib.rs" || {
    echo "    FAIL: second --apply pass was not a no-op" >&2
    exit 1
}

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> smoke: cargo run --example quickstart"
cargo run -q --release --example quickstart

echo "==> smoke: cargo run --example churn_web (workload engine: multi-stream + churn)"
cargo run -q --release --example churn_web

echo "==> smoke: cargo run --example path_policies (selection seam: all four policies)"
cargo run -q --release --example path_policies

echo "==> smoke: cargo run --example async_sweep (threaded runtime + oracle check)"
cargo run -q --release --example async_sweep

echo "==> smoke: cargo run --example consensus_scale (7k-relay directory + epoch churn)"
cargo run -q --release --example consensus_scale

echo "==> smoke: cargo run --example fault_storm (crash injection + recovery loop)"
cargo run -q --release --example fault_storm

echo "==> smoke: cargo run --example telemetry_scale (7k-relay sketch quantiles + Prometheus golden file)"
cargo run -q --release --example telemetry_scale

echo "==> threaded-runtime differential suite (oracle fingerprints, deadlock stress)"
cargo test -q --test async_runtime

echo "==> fault-recovery suite (conservation + fingerprint invariance under faults)"
cargo test -q --test fault_recovery

echo "==> telemetry differential suite (sketch vs exact CDF, shuffle-merge invariance)"
cargo test -q --test telemetry_sketch

echo "==> bench smoke: CS_BENCH_FAST=1 (3 samples; sanity, not measurement)"
echo "    (includes overlay/star_async_* — threaded-runtime scaling cases + pool-flatness asserts)"
CS_BENCH_FAST=1 cargo bench -q -p cs-bench --bench bench_simcore
CS_BENCH_FAST=1 cargo bench -q -p cs-bench --bench bench_overlay

echo "==> all checks passed"
