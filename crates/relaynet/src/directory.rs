//! The relay store: the population path selection draws from, laid out
//! for consensus scale.
//!
//! The paper evaluates over "a randomly generated network of Tor relays".
//! The exact distribution is not published, so this module exposes it as a
//! parameter with a heavy-tailed (log-uniform) default — relay capacity in
//! the live Tor network spans orders of magnitude.
//!
//! # Structure-of-arrays layout (DESIGN.md §11)
//!
//! At the ~7k relays of a real consensus, selection iterates the
//! directory on the hot path, so [`Directory`] stores parallel dense
//! arrays — bandwidth (bit/s), access delay, liveness — rather than an
//! array of structs. A weight pass touches exactly the columns it needs
//! (`bandwidth` for Tor weighting, `delay` for latency-aware) instead of
//! striding over full records. [`RelaySpec`] remains the public
//! per-relay view, materialized on demand by [`Directory::spec`].
//!
//! The directory is only the *population*: deciding which relays a
//! circuit crosses is the job of a [`crate::selection::PathSelection`]
//! policy, which sees the store through a
//! [`crate::selection::DirectoryView`] (the columns plus live per-relay
//! load). [`Directory::view`] pairs a directory with a load slice;
//! policies enforce Tor's essential rule that relays on a path are
//! distinct.
//!
//! # Liveness and epoch churn
//!
//! Every relay is *provisioned* (it has an access link and an overlay
//! node) but only **live** relays are selectable. Consensus epochs flip
//! liveness via [`EpochDelta`]s — a membership-as-a-stream model: the
//! relay universe is fixed at build time, departures zero a relay's
//! selection weight, and joins bring standby relays into the live set.
//! The live count is maintained incrementally so "are all relays live?"
//! and "how many are selectable?" never re-scan the store.

use netsim::bandwidth::Bandwidth;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

use crate::selection::DirectoryView;

/// A relay's access-link characteristics — the public per-relay view,
/// materialized from the SoA store on demand.
#[derive(Clone, Copy, Debug)]
pub struct RelaySpec {
    /// Access-link rate (both directions).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay of the access link.
    pub delay: SimDuration,
}

/// Parameters for relay generation.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryConfig {
    /// Number of relays.
    pub relays: usize,
    /// Relay bandwidth is log-uniform in `[low, high]` Mbit/s.
    pub bandwidth_mbps: (f64, f64),
    /// Access-link one-way delay is uniform in `[low, high]` ms.
    pub delay_ms: (f64, f64),
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            relays: 30,
            bandwidth_mbps: (20.0, 100.0),
            // Chosen so per-circuit bottleneck shares land at bandwidth-
            // delay products of tens of cells (the regime the paper's
            // Figure 1 axes imply): ~5 circuits share a relay, so shares
            // run 4–20 Mbit/s over ~15–35 ms hop RTTs.
            delay_ms: (3.0, 10.0),
        }
    }
}

/// One consensus epoch's membership change: relays departing the live
/// set and standby relays joining it. Indices are relay ids into the
/// fixed provisioned universe — the stream-of-deltas shape lets churn
/// scale with the *change*, not the directory size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochDelta {
    /// Relay ids leaving the live set this epoch.
    pub leave: Vec<u32>,
    /// Relay ids (re)joining the live set this epoch.
    pub join: Vec<u32>,
}

impl EpochDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.leave.is_empty() && self.join.is_empty()
    }
}

/// The relay store: parallel dense arrays over a fixed relay universe.
/// Path selection over the set goes through a
/// [`crate::selection::PathSelection`] policy on a [`DirectoryView`].
#[derive(Clone, Debug)]
pub struct Directory {
    /// Access-link rate per relay, bit/s.
    bandwidth_bps: Vec<u64>,
    /// One-way access delay per relay.
    delay: Vec<SimDuration>,
    /// Membership: only live relays are selectable.
    live: Vec<bool>,
    /// Count of `true` entries in `live`, maintained incrementally.
    live_count: usize,
}

impl Directory {
    /// Samples `cfg.relays` relays using the stream derived from `rng`.
    /// All relays start live.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.relays == 0` or ranges are invalid.
    pub fn generate(cfg: &DirectoryConfig, rng: &SimRng) -> Directory {
        assert!(cfg.relays > 0, "directory needs at least one relay");
        assert!(
            cfg.bandwidth_mbps.0 > 0.0 && cfg.bandwidth_mbps.1 > cfg.bandwidth_mbps.0,
            "invalid bandwidth range"
        );
        assert!(
            cfg.delay_ms.0 >= 0.0 && cfg.delay_ms.1 >= cfg.delay_ms.0,
            "invalid delay range"
        );
        let mut bandwidth_bps = Vec::with_capacity(cfg.relays);
        let mut delay = Vec::with_capacity(cfg.relays);
        for i in 0..cfg.relays {
            // cs-lint: allow(rng-discipline, reason = "per-relay sub-stream of the builder's derive(directory) stream; labeled and index-rooted, so specs stay independent of draw order")
            let mut r = rng.derive_indexed("relay-spec", i as u64);
            let mbps = r.log_uniform(cfg.bandwidth_mbps.0, cfg.bandwidth_mbps.1);
            let delay_ms = if cfg.delay_ms.1 > cfg.delay_ms.0 {
                r.range_f64(cfg.delay_ms.0, cfg.delay_ms.1)
            } else {
                cfg.delay_ms.0
            };
            bandwidth_bps.push(Bandwidth::from_mbps_f64(mbps).bps());
            delay.push(SimDuration::from_secs_f64(delay_ms / 1e3));
        }
        let live = vec![true; cfg.relays];
        Directory {
            bandwidth_bps,
            delay,
            live,
            live_count: cfg.relays,
        }
    }

    /// Builds a directory from explicit specs (tests, hand-tuned
    /// setups). All relays start live.
    pub fn from_specs(relays: Vec<RelaySpec>) -> Directory {
        assert!(!relays.is_empty(), "directory needs at least one relay");
        let n = relays.len();
        Directory {
            bandwidth_bps: relays.iter().map(|r| r.bandwidth.bps()).collect(),
            delay: relays.iter().map(|r| r.delay).collect(),
            live: vec![true; n],
            live_count: n,
        }
    }

    /// One relay's spec, materialized from the columns.
    #[inline]
    pub fn spec(&self, relay: usize) -> RelaySpec {
        RelaySpec {
            bandwidth: Bandwidth::from_bps(self.bandwidth_bps[relay]),
            delay: self.delay[relay],
        }
    }

    /// Iterates all relay specs in relay-id order (materialized views).
    pub fn iter_specs(&self) -> impl Iterator<Item = RelaySpec> + '_ {
        (0..self.len()).map(|i| self.spec(i))
    }

    /// The bandwidth column, bit/s per relay.
    #[inline]
    pub fn bandwidths_bps(&self) -> &[u64] {
        &self.bandwidth_bps
    }

    /// The access-delay column.
    #[inline]
    pub fn delays(&self) -> &[SimDuration] {
        &self.delay
    }

    /// The liveness column.
    #[inline]
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Whether `relay` is currently in the live set.
    #[inline]
    pub fn is_live(&self, relay: usize) -> bool {
        self.live[relay]
    }

    /// Number of live relays (maintained incrementally; O(1)).
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Flips `relay`'s membership; returns `true` if the state actually
    /// changed (an already-live join or already-dark leave is a no-op).
    pub fn set_live(&mut self, relay: usize, live: bool) -> bool {
        if self.live[relay] == live {
            return false;
        }
        self.live[relay] = live;
        if live {
            self.live_count += 1;
        } else {
            self.live_count -= 1;
        }
        true
    }

    /// Number of relays in the provisioned universe (live or dark).
    #[inline]
    pub fn len(&self) -> usize {
        self.bandwidth_bps.len()
    }

    /// Whether the directory holds no relays. Always `false` for a
    /// constructed directory — both constructors reject empty relay
    /// sets — but provided for the standard `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bandwidth_bps.is_empty()
    }

    /// Pairs the directory with live per-relay load, producing the view
    /// a [`crate::selection::PathSelection`] policy selects over.
    ///
    /// # Panics
    ///
    /// Panics if `load` does not hold one counter per relay.
    pub fn view<'a>(&'a self, load: &'a [u32]) -> DirectoryView<'a> {
        DirectoryView::new(self, load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{PathSelection, Uniform};

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn generate_respects_ranges() {
        let cfg = DirectoryConfig {
            relays: 50,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        assert_eq!(dir.len(), 50);
        assert!(!dir.is_empty());
        assert_eq!(dir.live_count(), 50, "all relays start live");
        for r in dir.iter_specs() {
            let mbps = r.bandwidth.as_mbps_f64();
            assert!((10.0..=100.0).contains(&mbps), "bw {mbps}");
            let ms = r.delay.as_millis_f64();
            assert!((5.0..=15.0).contains(&ms), "delay {ms}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = DirectoryConfig::default();
        let a = Directory::generate(&cfg, &SimRng::seed_from(7));
        let b = Directory::generate(&cfg, &SimRng::seed_from(7));
        let c = Directory::generate(&cfg, &SimRng::seed_from(8));
        for (x, y) in a.iter_specs().zip(b.iter_specs()) {
            assert_eq!(x.bandwidth, y.bandwidth);
            assert_eq!(x.delay, y.delay);
        }
        let same = a
            .iter_specs()
            .zip(c.iter_specs())
            .filter(|(x, y)| x.bandwidth == y.bandwidth)
            .count();
        assert!(same < 3, "different seeds should differ");
    }

    #[test]
    fn soa_columns_match_materialized_specs() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        for (i, spec) in dir.iter_specs().enumerate() {
            assert_eq!(spec.bandwidth.bps(), dir.bandwidths_bps()[i]);
            assert_eq!(spec.delay, dir.delays()[i]);
        }
        let rt = Directory::from_specs(dir.iter_specs().collect());
        assert_eq!(rt.bandwidths_bps(), dir.bandwidths_bps());
        assert_eq!(rt.delays(), dir.delays());
    }

    #[test]
    fn fixed_delay_range_allowed() {
        let cfg = DirectoryConfig {
            relays: 3,
            bandwidth_mbps: (10.0, 20.0),
            delay_ms: (10.0, 10.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        for r in dir.iter_specs() {
            assert_eq!(r.delay, SimDuration::from_millis(10));
        }
    }

    #[test]
    fn liveness_toggles_maintain_the_count() {
        let mut dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let n = dir.len();
        assert!(dir.set_live(3, false), "live -> dark changes state");
        assert!(!dir.set_live(3, false), "dark -> dark is a no-op");
        assert_eq!(dir.live_count(), n - 1);
        assert!(!dir.is_live(3));
        assert!(dir.set_live(3, true));
        assert_eq!(dir.live_count(), n);
        assert!(dir.is_live(3));
    }

    #[test]
    fn view_pairs_specs_with_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len()];
        let view = dir.view(&load);
        assert_eq!(view.len(), dir.len());
        let mut r = rng();
        let p = Uniform.select(&view, &mut r, 3);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one load counter per relay")]
    fn view_rejects_mismatched_load() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let load = vec![0u32; dir.len() + 1];
        let _ = dir.view(&load);
    }

    #[test]
    fn log_uniform_bandwidths_span_decade() {
        let cfg = DirectoryConfig {
            relays: 300,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        let low = dir
            .iter_specs()
            .filter(|r| r.bandwidth.as_mbps_f64() < 31.6)
            .count();
        let frac = low as f64 / 300.0;
        assert!(
            (0.35..0.65).contains(&frac),
            "log-uniform: ~half below the geometric mean, got {frac}"
        );
    }

    #[test]
    fn epoch_delta_default_is_empty() {
        assert!(EpochDelta::default().is_empty());
        assert!(!EpochDelta {
            leave: vec![1],
            join: vec![],
        }
        .is_empty());
    }
}
