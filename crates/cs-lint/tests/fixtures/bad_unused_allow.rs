// cs-lint-fixture: path = "crates/relaynet/src/stale.rs"
// An allow whose rule no longer fires on its bound line is itself a
// finding (at the annotation, so deleting the flagged line is the
// fix); a live allow nearby stays silent.

// cs-lint: allow(wall-clock, reason = "the clock read below was removed in a refactor")
//~^ unused-allow
fn no_longer_reads_the_clock() -> u64 {
    7
}

// Still-live suppression: no unused-allow here.
// cs-lint: allow(nondeterministic-iteration, reason = "membership probe, never iterated")
fn still_uses_a_set(seen: &std::collections::HashSet<u64>) -> bool {
    seen.is_empty()
}

// An allow that a policy exemption made dead is dead all the same:
// stray-threads never applies inside #[cfg(test)].
#[cfg(test)]
mod tests {
    // cs-lint: allow(stray-threads, reason = "watchdog thread in a test")
    //~^ unused-allow
    #[test]
    fn watchdog() {
        let h = std::thread::spawn(|| ());
        h.join().expect("joins");
    }
}
