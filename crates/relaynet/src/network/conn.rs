//! Pipeline stage 1 — the connection layer.
//!
//! Everything that touches raw frames on links lives here: ingress
//! dispatch of delivered frames, the per-link round-robin egress
//! scheduler, link-local circuit-id allocation, and the window-gated
//! egress pump ([`TorNetwork::pump_dir`]) that drains a hop's queue while
//! its transport has credit.
//!
//! The helpers are associated functions over *split borrows* (`net`,
//! `link_sched`, `router`, …) rather than `&mut self` methods so that
//! callers deeper in the pipeline can invoke them while holding a mutable
//! borrow of one node's circuit state.

use netsim::net::{Net, SendOutcome};
use simcore::sim::Context;

use torcell::cell::CellBody;
use torcell::ids::CircuitId;

use crate::event::TorEvent;
use crate::ids::{CircId, Direction};
use crate::node::NodeCircuit;
use crate::pool::PayloadPool;
use crate::router::Router;
use crate::scheduler::LinkScheduler;
use crate::wire::{FramePayload, WireFrame};

use super::{LinkRoute, TorNetwork, WorldStats};
use netsim::net::NodeId;

impl TorNetwork {
    /// Allocates a link-local circuit id (negotiated per connection, as
    /// in Tor) and its slot in the route table, preferring ids whose
    /// both ends were reclaimed by a teardown — under churn the table
    /// stops growing once the free list primes.
    pub(super) fn alloc_link_circ_id(&mut self) -> CircuitId {
        if let Some(id) = self.free_link_ids.pop() {
            debug_assert!(
                self.link_routes[id.0 as usize].a.is_none()
                    && self.link_routes[id.0 as usize].b.is_none(),
                "free-listed link id still routed"
            );
            return id;
        }
        let id = CircuitId(u32::try_from(self.link_routes.len()).expect("too many circuit ids"));
        self.link_routes.push(LinkRoute::default());
        id
    }

    /// Hands a frame to an overlay egress link: directly if the link is
    /// idle, otherwise into the link's round-robin scheduler (feedback has
    /// strict priority; data cells queue per circuit).
    pub(super) fn sched_send(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        ctx: &mut Context<'_, TorEvent>,
        link: netsim::link::LinkId,
        frame: WireFrame,
        data_circuit: Option<CircId>,
    ) {
        if net.is_busy(link) {
            let sched = &mut link_sched[link.index()];
            match data_circuit {
                Some(circ) => sched.push_cell(circ, frame),
                None => sched.push_feedback(frame),
            }
        } else {
            debug_assert_eq!(net.queue_len(link), 0, "idle link with queued frames");
            let outcome = net.send(ctx, link, frame);
            debug_assert_eq!(outcome, SendOutcome::Accepted, "idle link refused a frame");
        }
    }

    /// After a transmission completes, starts the next scheduled frame on
    /// the link, if any.
    pub(super) fn refill_link(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        ctx: &mut Context<'_, TorEvent>,
        link: netsim::link::LinkId,
    ) {
        if !net.is_busy(link) {
            if let Some(frame) = link_sched[link.index()].pop() {
                let outcome = net.send(ctx, link, frame);
                debug_assert_eq!(outcome, SendOutcome::Accepted);
            }
        }
    }

    /// Ingress: a frame addressed to one of our overlay nodes arrived.
    /// Classifies it and hands it to the next pipeline stage — feedback to
    /// the window layer, cells to recognition.
    pub(super) fn deliver(&mut self, ctx: &mut Context<'_, TorEvent>, frame: WireFrame) {
        let to = self.overlay_of_net[frame.dst.index()];
        let from = self.overlay_of_net[frame.src.index()];
        debug_assert!(
            to != u32::MAX && from != u32::MAX,
            "frame endpoints must host overlay participants"
        );
        let (to, from) = (crate::ids::OverlayId(to), crate::ids::OverlayId(from));
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.is_crashed(to.index()))
        {
            // A crashed relay receives nothing: everything addressed to
            // it is silently dropped (no confirm, no feedback — its
            // neighbours' windows starve and only client timers notice).
            // Frames it sent *before* crashing were already on the wire
            // and deliver normally; link-id retirement guarantees their
            // ids never resolve against a re-minted circuit. The
            // simulator still owns the payload buffer, so DATA bodies
            // return to the pool.
            self.stats.crash_frames_dropped += 1;
            if let FramePayload::Cell { cell, .. } = frame.payload {
                if let CellBody::Relay(rc) = cell.body {
                    self.payload_pool.reclaim(rc.data);
                }
            }
            return;
        }
        match frame.payload {
            FramePayload::Feedback(fb) => self.on_feedback(ctx, to, from, fb),
            FramePayload::Cell { cell, hop_seq } => self.on_cell(ctx, to, from, cell, hop_seq),
        }
    }

    /// Egress pump: drains one hop direction — sends queued cells (and, at
    /// a transferring client, freshly generated DATA/END cells) while the
    /// window allows, paying owed feedback as cells leave the queue.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn pump_dir(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        pool: &mut PayloadPool,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        nc: &mut NodeCircuit,
        dir: Direction,
    ) {
        let circ = nc.circ;
        let NodeCircuit {
            fwd, bwd, client, ..
        } = nc;
        let Some(hopdir) = (match dir {
            Direction::Forward => fwd.as_mut(),
            Direction::Backward => bwd.as_mut(),
        }) else {
            return;
        };
        loop {
            if !hopdir.transport.can_send() {
                break;
            }
            let qc = if let Some(qc) = hopdir.queue.pop_front() {
                qc
            } else if dir == Direction::Forward {
                match Self::generate_client_cell(client.as_mut(), pool, circ, ctx.now()) {
                    Some(qc) => qc,
                    None => break,
                }
            } else {
                break;
            };

            let mut cell = qc.cell;
            if let Some(hop) = qc.wrap_for_hop {
                let app = client
                    .as_mut()
                    .expect("wrap_for_hop is only set on client-originated cells");
                match &mut cell.body {
                    CellBody::Relay(rc) => app.route.wrap_for_hop(hop, rc),
                    _ => debug_assert!(false, "wrap_for_hop on a control cell"),
                }
            }
            let seq = hopdir.transport.register_send(ctx.now());
            cell.circ = hopdir.link_circ_id;
            let dst = net_node_of[hopdir.neighbor.index()];
            let frame = WireFrame {
                src: my_net,
                dst,
                payload: FramePayload::Cell { cell, hop_seq: seq },
                // Paid when the cell finishes serializing (TxComplete):
                // that is the instant the cell is "forwarded".
                confirm: qc.confirm,
            };
            Self::sched_send(
                net,
                link_sched,
                ctx,
                router.next_link(my_net, dst),
                frame,
                Some(circ),
            );
            stats.cells_sent += 1;
        }
    }
}
