//! Telemetry at consensus scale: a ~7000-relay star with epoch churn,
//! reported entirely through the streaming-telemetry layer — the
//! fixed-size completion sketch printed beside the exact sorted-sample
//! quantiles, and the full counter set rendered as a Prometheus text
//! exposition checked against a committed golden file.
//!
//! The run is bit-deterministic, so the exposition — counters *and*
//! sketch-derived quantile gauges — must be byte-identical run over
//! run; the golden file pins that, and `CS_BLESS=1` re-blesses it after
//! an intentional change. The sketch columns demonstrate the DESIGN.md
//! §13 contract: every quantile within ±1% (the default alpha) of the
//! exact value, from O(buckets) memory instead of O(flows).
//!
//! ```text
//! cargo run --release --example telemetry_scale             # 7000 relays
//! cargo run --release --example telemetry_scale -- 2000 24  # smaller (skips golden check)
//! CS_BLESS=1 cargo run --release --example telemetry_scale  # re-bless golden file
//! ```

use circuitstart::prelude::*;
use relaynet::selection::CongestionAware;
use relaynet::workload::{ArrivalSpec, EpochSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, StarScenario};
use simstats::cdf::Cdf;
use simstats::export::prometheus_text;
use simstats::registry::MetricsRegistry;
use std::path::Path;
use std::sync::Arc;

const DEFAULT_RELAYS: usize = 7000;
const DEFAULT_CIRCUITS: usize = 32;

fn scenario(relays: usize, circuits: usize) -> StarScenario {
    StarScenario {
        circuits,
        relays_per_circuit: 3,
        file_bytes: 60_000,
        directory: DirectoryConfig {
            relays,
            bandwidth_mbps: (15.0, 100.0),
            delay_ms: (2.0, 12.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::UniformJitter { max_ms: 30.0 },
            churn: None,
        },
        epochs: Some(EpochSpec {
            interval_ms: 80.0,
            epochs: 4,
            churn: relays / 100,
            standby_fraction: 0.1,
        }),
        selection: Arc::new(CongestionAware),
        ..Default::default()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let relays: usize = args
        .next()
        .map(|a| a.parse().expect("relay count"))
        .unwrap_or(DEFAULT_RELAYS);
    let circuits: usize = args
        .next()
        .map(|a| a.parse().expect("circuit count"))
        .unwrap_or(DEFAULT_CIRCUITS);

    println!(
        "telemetry_scale: {relays} relays, {circuits} circuits, 4 epochs, \
         congestion-aware selection, seed 4242"
    );
    let (mut sim, _) = scenario(relays, circuits)
        .build(Algorithm::CircuitStart.factory(CcConfig::default()), 4242);
    run_to_completion(&mut sim);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    for f in world.flows() {
        assert!(f.complete(), "a flow was stranded");
    }

    // Exact vs streaming, side by side. The exact CDF retains every
    // sample; the sketch saw the identical completions one at a time.
    let cdf: Cdf = world.flow_completion_cdf().expect("completed flows");
    let sketch = world.flow_completion_sketch();
    assert_eq!(sketch.len(), cdf.len() as u64, "sketch missed completions");
    println!(
        "\n{:>10}  {:>11}  {:>11}  {:>11}",
        "quantile", "exact [s]", "sketch [s]", "rel err"
    );
    for (label, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
        let exact = cdf.quantile(q);
        let approx = sketch.quantile(q);
        let rel = (approx - exact).abs() / exact;
        assert!(
            rel <= sketch.alpha(),
            "{label}: sketch {approx} strayed more than alpha from exact {exact}"
        );
        println!("{label:>10}  {exact:>11.4}  {approx:>11.4}  {rel:>11.2e}");
    }
    println!(
        "\nsketch: {} samples in {} buckets ({} bytes) — memory fixed by \
         alpha={}, not by flow count",
        sketch.len(),
        sketch.bucket_len(),
        sketch.memory_bytes(),
        sketch.alpha()
    );

    // The Prometheus exposition: every WorldStats counter plus the
    // merge-then-query quantile gauges.
    let mut registry = MetricsRegistry::new();
    world.stats().export_into(&mut registry);
    let text = prometheus_text(
        &registry,
        &[
            (
                "cs_completion_p50_seconds",
                "median flow completion time (sketch)",
                sketch.quantile(0.5),
            ),
            (
                "cs_completion_p99_seconds",
                "p99 flow completion time (sketch)",
                sketch.p99(),
            ),
            (
                "cs_completion_p999_seconds",
                "p999 flow completion time (sketch)",
                sketch.p999(),
            ),
            (
                "cs_completion_flows",
                "flows folded into the completion sketch",
                sketch.len() as f64,
            ),
        ],
    );

    // Golden-file pin, meaningful only for the default geometry (the
    // exposition is a pure function of the run).
    if relays == DEFAULT_RELAYS && circuits == DEFAULT_CIRCUITS {
        let golden =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_scale.prom");
        if std::env::var_os("CS_BLESS").is_some() {
            std::fs::create_dir_all(golden.parent().unwrap()).expect("golden dir");
            std::fs::write(&golden, &text).expect("write golden file");
            println!("\nblessed {}", golden.display());
        } else {
            let want = std::fs::read_to_string(&golden)
                .expect("golden file missing — run with CS_BLESS=1 once");
            assert_eq!(
                text, want,
                "Prometheus exposition diverged from the golden file \
                 (intentional? re-bless with CS_BLESS=1)"
            );
            println!(
                "\nPrometheus exposition matches {} byte for byte",
                golden.display()
            );
        }
    } else {
        println!("\n(non-default geometry: golden-file check skipped)");
    }
    println!("\n{text}");
}
