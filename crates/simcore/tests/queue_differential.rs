//! Differential property suite: the calendar queue and the legacy binary
//! heap must be observationally identical. Randomized (but seeded,
//! `SimRng`-driven) interleavings of push / cancel / pop / peek / clear
//! are replayed against both implementations through the [`PendingEvents`]
//! seam, asserting identical `(time, id, event)` pop sequences, identical
//! peeks, identical lengths, and identical cancel outcomes.

use simcore::event::{CalendarQueue, EventId, HeapQueue, PendingEvents};
use simcore::rng::SimRng;
use simcore::time::SimTime;

/// One scripted operation, generated once and applied to both queues.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(u64),
    Pop,
    Peek,
    /// Cancel the id at this (modular) offset into all ids ever issued —
    /// sometimes pending, sometimes long fired, sometimes cancelled twice.
    Cancel(u64),
    Len,
    Clear,
}

fn arb_op(rng: &mut SimRng, time_scale: u64, clear_allowed: bool) -> Op {
    match rng.range_u64(0, 100) {
        0..=44 => Op::Push(rng.range_u64(0, time_scale)),
        45..=79 => Op::Pop,
        80..=86 => Op::Peek,
        87..=94 => Op::Cancel(rng.u64()),
        95..=97 => Op::Len,
        _ if clear_allowed => Op::Clear,
        _ => Op::Len,
    }
}

/// Applies `ops` to both queues in lockstep, asserting equality of every
/// observable result.
fn run_differential(seed: u64, ops: usize, time_scale: u64, clear_allowed: bool) {
    let mut rng = SimRng::seed_from(seed);
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut issued: Vec<EventId> = Vec::new();
    let mut payload: u64 = 0;

    for step in 0..ops {
        let op = arb_op(&mut rng, time_scale, clear_allowed);
        match op {
            Op::Push(t) => {
                payload += 1;
                let time = SimTime::from_nanos(t);
                let a = cal.push(time, payload);
                let b = heap.push(time, payload);
                assert_eq!(a, b, "seed {seed} step {step}: ids diverge");
                issued.push(a);
            }
            Op::Pop => {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed} step {step}: pops diverge");
            }
            Op::Peek => {
                assert_eq!(
                    cal.peek_time(),
                    heap.peek_time(),
                    "seed {seed} step {step}: peeks diverge"
                );
            }
            Op::Cancel(raw) => {
                if !issued.is_empty() {
                    let id = issued[(raw % issued.len() as u64) as usize];
                    let a = cal.cancel(id);
                    let b = heap.cancel(id);
                    assert_eq!(a, b, "seed {seed} step {step}: cancel outcomes diverge");
                }
            }
            Op::Len => {
                assert_eq!(
                    cal.len(),
                    heap.len(),
                    "seed {seed} step {step}: lens diverge"
                );
                assert_eq!(cal.is_empty(), heap.is_empty());
            }
            Op::Clear => {
                cal.clear();
                heap.clear();
            }
        }
    }
    // Drain both completely; the full remaining sequences must match.
    loop {
        let a = cal.pop();
        let b = heap.pop();
        assert_eq!(a, b, "seed {seed}: drain diverges");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(cal.pushed_total(), heap.pushed_total());
}

#[test]
fn random_interleavings_match_across_seeds() {
    for seed in 0..20 {
        run_differential(0xD1FF_0000 + seed, 4_000, 1_000_000, false);
    }
}

#[test]
fn clustered_times_match() {
    // Few distinct instants — the regime that exercises same-time FIFO
    // runs and the width estimator's duplicate detection.
    for seed in 0..10 {
        run_differential(0xC1_0000 + seed, 4_000, 50, false);
    }
}

#[test]
fn wide_time_range_matches() {
    // Sparse far-future events exercise the empty-year global-scan path.
    for seed in 0..10 {
        run_differential(0x31DE_0000 + seed, 2_000, u64::MAX / 4, false);
    }
}

#[test]
fn interleavings_with_clear_match() {
    for seed in 0..10 {
        run_differential(0xC1EA_0000 + seed, 3_000, 10_000, true);
    }
}

#[test]
fn cancel_heavy_workload_matches() {
    // Cancel more often than the default mix: half of pushes die young.
    for seed in 0..10u64 {
        let mut rng = SimRng::seed_from(0xCA_0000 + seed);
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut pending: Vec<EventId> = Vec::new();
        for i in 0..2_000u64 {
            let t = SimTime::from_nanos(rng.range_u64(0, 10_000));
            let a = cal.push(t, i);
            let b = heap.push(t, i);
            assert_eq!(a, b);
            pending.push(a);
            if rng.range_u64(0, 2) == 0 {
                let idx = rng.range_usize(0, pending.len());
                let id = pending.swap_remove(idx);
                assert_eq!(cal.cancel(id), heap.cancel(id));
            }
            if rng.range_u64(0, 3) == 0 {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let a = cal.pop();
            assert_eq!(a, heap.pop(), "seed {seed}: drain diverges");
            if a.is_none() {
                break;
            }
        }
    }
}
