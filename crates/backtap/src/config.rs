//! Congestion-control parameters.

/// Parameters shared by the delay-based congestion controllers.
///
/// Defaults follow the paper: initial window of 2 cells, Vegas-style
/// thresholds with `γ = 4` for leaving the ramp-up, and `α = 2`, `β = 4`
/// for congestion avoidance.
#[derive(Clone, Copy, Debug)]
pub struct CcConfig {
    /// Congestion window at circuit start, in cells (paper: 2).
    pub init_cwnd: u32,
    /// Lower bound for the window at all times (paper: 2, the initial
    /// window — compensation never goes below it).
    pub min_cwnd: u32,
    /// Upper bound for the window; a safety rail against runaway doubling
    /// on extremely fat paths, far above anything the experiments reach.
    pub max_cwnd: u32,
    /// Ramp-exit threshold γ: leave slow start when the Vegas backlog
    /// estimate `diff = cwnd·(currentRtt/baseRtt − 1)`, evaluated on the
    /// **first feedback of a round**, exceeds γ cells. The first cell of a
    /// train carries no self-queueing, so this test detects *persistent*
    /// queues (cross traffic), exactly as in TCP Vegas.
    pub gamma: f64,
    /// Ramp-overrun threshold θ: leave slow start the moment a round has
    /// been outstanding longer than `(1 + θ)·baseRtt`. A train no longer
    /// than the path's BDP feeds back within ≈ one extra `baseRtt`
    /// (bottleneck-paced); the moment the round overruns that budget, the
    /// cells already fed back are "the packet train the successor could
    /// forward without additional delay" (paper §2) — i.e. the count the
    /// overshoot compensation turns into the new window. See DESIGN.md §4.
    pub theta: f64,
    /// Congestion-avoidance lower threshold α: grow the window by one when
    /// `diff < α`.
    pub alpha: f64,
    /// Congestion-avoidance upper threshold β: shrink the window by one
    /// when `diff > β`.
    pub beta: f64,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            init_cwnd: 2,
            min_cwnd: 2,
            max_cwnd: 1 << 16,
            gamma: 4.0,
            theta: 1.0,
            alpha: 2.0,
            beta: 4.0,
        }
    }
}

impl CcConfig {
    /// Validates parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero windows, inverted bounds,
    /// non-positive or non-finite thresholds, α > β).
    pub fn validate(&self) {
        assert!(self.min_cwnd >= 1, "min_cwnd must be at least 1");
        assert!(
            self.init_cwnd >= self.min_cwnd,
            "init_cwnd {} below min_cwnd {}",
            self.init_cwnd,
            self.min_cwnd
        );
        assert!(
            self.max_cwnd >= self.init_cwnd,
            "max_cwnd {} below init_cwnd {}",
            self.max_cwnd,
            self.init_cwnd
        );
        assert!(
            self.gamma.is_finite() && self.gamma > 0.0,
            "gamma must be positive and finite"
        );
        assert!(
            self.theta.is_finite() && self.theta > 0.0,
            "theta must be positive and finite"
        );
        assert!(
            self.alpha.is_finite() && self.alpha >= 0.0,
            "alpha must be non-negative and finite"
        );
        assert!(
            self.beta.is_finite() && self.beta >= self.alpha,
            "beta must be finite and >= alpha"
        );
    }

    /// Clamps a window value into `[min_cwnd, max_cwnd]`.
    pub fn clamp_cwnd(&self, cwnd: u32) -> u32 {
        cwnd.clamp(self.min_cwnd, self.max_cwnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CcConfig::default();
        assert_eq!(c.init_cwnd, 2);
        assert_eq!(c.min_cwnd, 2);
        assert_eq!(c.gamma, 4.0);
        assert_eq!(c.alpha, 2.0);
        assert_eq!(c.beta, 4.0);
        c.validate();
    }

    #[test]
    fn clamp() {
        let c = CcConfig {
            min_cwnd: 2,
            max_cwnd: 100,
            ..Default::default()
        };
        assert_eq!(c.clamp_cwnd(0), 2);
        assert_eq!(c.clamp_cwnd(2), 2);
        assert_eq!(c.clamp_cwnd(50), 50);
        assert_eq!(c.clamp_cwnd(1000), 100);
    }

    #[test]
    #[should_panic(expected = "init_cwnd")]
    fn init_below_min_rejected() {
        CcConfig {
            init_cwnd: 1,
            min_cwnd: 2,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_cwnd")]
    fn max_below_init_rejected() {
        CcConfig {
            init_cwnd: 10,
            max_cwnd: 5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn nonpositive_gamma_rejected() {
        CcConfig {
            gamma: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_below_alpha_rejected() {
        CcConfig {
            alpha: 5.0,
            beta: 4.0,
            ..Default::default()
        }
        .validate();
    }
}
