//! Static next-hop routing between network nodes.
//!
//! Overlay nodes address frames to the *network* node of the adjacent
//! overlay hop. In the path topology that node is directly connected; in
//! the star topology the frame crosses the hub, which forwards it using
//! this table. Routes are computed once at build time — topologies are
//! static for the lifetime of an experiment.
//!
//! Node ids are dense small integers, so the table is an array indexed by
//! the current node, with two per-node shapes: a *uniform* route (every
//! destination leaves over one link — a star leaf's uplink; O(1) memory
//! however many destinations exist) and a *per-destination* array (the
//! hub). Lookups are two array indexes; nothing is hashed or compared.

use netsim::link::LinkId;
use netsim::net::NodeId;

/// Routing state of one node.
#[derive(Clone, Debug, Default)]
enum NodeRoutes {
    /// No routes installed at this node.
    #[default]
    Empty,
    /// Every destination leaves over this link (a star leaf's uplink).
    Uniform(LinkId),
    /// Outgoing link per destination node index.
    PerDst(Vec<Option<LinkId>>),
}

/// A `(current node, final destination) → outgoing link` table.
#[derive(Clone, Debug, Default)]
pub struct Router {
    per_node: Vec<NodeRoutes>,
    installed: usize,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    fn slot(&mut self, at: NodeId) -> &mut NodeRoutes {
        if self.per_node.len() <= at.index() {
            self.per_node
                .resize_with(at.index() + 1, NodeRoutes::default);
        }
        &mut self.per_node[at.index()]
    }

    /// Installs a route: at `at`, frames for `dst` leave via `link`.
    ///
    /// # Panics
    ///
    /// Panics if the pair already has a different route — conflicting
    /// routes mean a topology-construction bug.
    pub fn install(&mut self, at: NodeId, dst: NodeId, link: LinkId) {
        let slot = self.slot(at);
        match slot {
            NodeRoutes::Empty => {
                let mut v = vec![None; dst.index() + 1];
                v[dst.index()] = Some(link);
                *slot = NodeRoutes::PerDst(v);
                self.installed += 1;
            }
            NodeRoutes::Uniform(l) => {
                assert!(
                    *l == link,
                    "conflicting route installed at {at:?} for {dst:?}"
                );
            }
            NodeRoutes::PerDst(v) => {
                if v.len() <= dst.index() {
                    v.resize(dst.index() + 1, None);
                }
                let prev = v[dst.index()];
                assert!(
                    prev.is_none() || prev == Some(link),
                    "conflicting route installed at {at:?} for {dst:?}"
                );
                if prev.is_none() {
                    v[dst.index()] = Some(link);
                    self.installed += 1;
                }
            }
        }
    }

    /// Installs a uniform route: at `at`, frames for *every* destination
    /// leave via `link` (a star leaf's single uplink). O(1) memory
    /// regardless of network size.
    ///
    /// # Panics
    ///
    /// Panics if `at` already has any per-destination route.
    pub fn install_uniform(&mut self, at: NodeId, link: LinkId) {
        let slot = self.slot(at);
        match slot {
            NodeRoutes::Empty => {
                *slot = NodeRoutes::Uniform(link);
                self.installed += 1;
            }
            NodeRoutes::Uniform(l) => {
                assert!(*l == link, "conflicting uniform route at {at:?}");
            }
            NodeRoutes::PerDst(_) => {
                panic!("uniform route over per-destination routes at {at:?}")
            }
        }
    }

    /// The outgoing link at `at` for frames addressed to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if no route exists — frames must never be addressed to
    /// unreachable nodes.
    #[inline]
    pub fn next_link(&self, at: NodeId, dst: NodeId) -> LinkId {
        self.try_next_link(at, dst)
            .unwrap_or_else(|| panic!("no route from {at:?} to {dst:?}"))
    }

    /// Like [`Router::next_link`] but returns `None` instead of panicking.
    #[inline]
    pub fn try_next_link(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        match self.per_node.get(at.index())? {
            NodeRoutes::Empty => None,
            NodeRoutes::Uniform(l) => Some(*l),
            NodeRoutes::PerDst(v) => v.get(dst.index()).copied().flatten(),
        }
    }

    /// Number of installed routes (a uniform route counts once).
    pub fn len(&self) -> usize {
        self.installed
    }

    /// `true` if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.installed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireFrame;
    use netsim::bandwidth::Bandwidth;
    use netsim::link::LinkConfig;
    use netsim::net::Net;
    use simcore::time::SimDuration;

    fn tiny_net() -> (Net<WireFrame>, Vec<NodeId>, Vec<LinkId>) {
        let mut net = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let c = net.add_node("c");
        let cfg = LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO);
        let ab = net.add_link(a, b, cfg);
        let bc = net.add_link(b, c, cfg);
        (net, vec![a, b, c], vec![ab, bc])
    }

    #[test]
    fn install_and_lookup() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[1], nodes[2], links[1]);
        assert_eq!(r.next_link(nodes[0], nodes[2]), links[0]);
        assert_eq!(r.next_link(nodes[1], nodes[2]), links[1]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn reinstalling_same_route_is_ok() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[0], nodes[2], links[0]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting route")]
    fn conflicting_route_panics() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[0], nodes[2], links[1]);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let (_, nodes, _) = tiny_net();
        let r = Router::new();
        let _ = r.next_link(nodes[0], nodes[1]);
    }

    #[test]
    fn try_next_link_is_total() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[1], links[0]);
        assert_eq!(r.try_next_link(nodes[0], nodes[1]), Some(links[0]));
        assert_eq!(r.try_next_link(nodes[1], nodes[0]), None);
        assert_eq!(r.try_next_link(nodes[2], nodes[0]), None);
    }

    #[test]
    fn uniform_route_serves_every_destination() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install_uniform(nodes[0], links[0]);
        assert_eq!(r.next_link(nodes[0], nodes[1]), links[0]);
        assert_eq!(r.next_link(nodes[0], nodes[2]), links[0]);
        assert_eq!(r.len(), 1);
        // Re-declaring the same uniform link is fine; a per-dst install
        // of the same link is tolerated as agreeing.
        r.install_uniform(nodes[0], links[0]);
        r.install(nodes[0], nodes[2], links[0]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting route")]
    fn uniform_conflicting_per_dst_panics() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install_uniform(nodes[0], links[0]);
        r.install(nodes[0], nodes[2], links[1]);
    }
}
