//! The async relay runtime: the same protocol code on one thread or
//! across cores, with the deterministic `World` as the oracle.
//!
//! # Why and what (DESIGN.md §10)
//!
//! The paper's claims are about emergent multi-hop dynamics, which only
//! show up at experiment scale — millions of circuits, many seeds, many
//! policies. One deterministic event loop cannot provide that
//! throughput, but it *is* the correctness story: every observable of a
//! run must stay bit-for-bit reproducible. This module squares the two:
//!
//! * **Sharding.** A large experiment is decomposed into independent
//!   **shards** — each a complete [`StarScenario`] world (its relays,
//!   clients, servers, circuits, placement state and randomness streams
//!   are derived from the shard index), executed by the unmodified
//!   single-threaded [`simcore::sim::Simulator`]. Per-relay state is
//!   owned by whichever task runs the shard; nothing is shared.
//! * **The runtime seam.** [`ShardedStar::run`] hands the shard jobs to
//!   any [`Executor`]: [`DeterministicExecutor`]
//!   runs them in order on the calling thread (the oracle),
//!   [`ThreadedExecutor`] spreads them over a
//!   work-stealing pool whose results stream back through bounded
//!   channels. Outputs are re-ordered by shard index, so **the executor
//!   choice is unobservable**: `tests/async_runtime.rs` asserts the
//!   threaded runtime reproduces the deterministic fingerprints —
//!   flows, slabs, pool, counters — bit for bit, across seeds and
//!   policies.
//! * **Mergeable aggregation.** Shard outcomes fold into experiment
//!   totals: [`WorldStats::merge`] for counters, and the completion-time
//!   distribution under a [`StatsKind`] seam — exact mode concatenates
//!   and sorts every raw sample (O(flows) memory, the fingerprint
//!   currency), sketch mode merges fixed-size
//!   [`QuantileSketch`](simstats::sketch::QuantileSketch)es bucket-wise
//!   (O(buckets), order-independent by construction; DESIGN.md §13).
//!
//! # Stage tasks over bounded channels
//!
//! [`StagePipeline`] is the intra-world half of the story: the
//! `conn → recognition → consume` stage contract expressed as
//! communicating tasks — one task per relay plus the two endpoints,
//! SPSC data channels whose bounded capacity plays the role of link
//! serialization (a full channel blocks the producer), and a feedback
//! channel per hop carrying window credit upstream. It runs the
//! windowed forwarding discipline of `network::conn::pump_dir` /
//! `network::feedback` over real OS threads and proves the fabric's two
//! load-bearing properties, which the full protocol port will inherit:
//!
//! 1. **Deadlock freedom under a backpressure cycle.** Data flows
//!    forward, credit flows backward — a cycle. It cannot deadlock
//!    because (a) a hop's unconfirmed cells never exceed its window, so
//!    a feedback channel with `capacity == window` never fills, and
//!    (b) the sink always consumes; induction up the path unblocks
//!    every data send.
//! 2. **Window-bounded relay queues.** A relay confirms a cell only
//!    when it *forwards* it, so its local queue can never hold more
//!    than the predecessor's window — the same backpressure bound
//!    `tests/backprop.rs` pins for the event-driven pipeline.
//!
//! Porting the full cell protocol (onion layers, control plane,
//! teardown) onto these per-relay tasks is the recorded follow-on; the
//! sharded runtime above is what the ROADMAP's million-circuit
//! experiments actually consume today.

use std::collections::VecDeque;
use std::sync::Arc;

use simcore::chan;
use simcore::event::QueueKind;
use simcore::exec::{execute_typed, Executor};
use simcore::rng::SimRng;
use simcore::sim::{RunLimits, StopReason};
use simcore::time::{SimDuration, SimTime};
use simstats::sketch::QuantileSketch;

use crate::builder::StarScenario;
use crate::network::{TorNetwork, WorldStats};
use crate::node::CcFactory;

/// Safety horizon for shard runs: a healthy shard quiesces long before
/// this; hitting it means a protocol deadlock, which must fail loudly.
const MAX_SHARD_SIM_TIME_S: u64 = 3_600;
/// Safety cap on events per shard (same rationale).
const MAX_SHARD_EVENTS: u64 = 2_000_000_000;

/// Constructs the congestion-control factory inside each shard task.
/// [`CcFactory`] itself is a `Box<dyn Fn>` and neither `Clone` nor
/// `Send`, so shards share the *maker* and build their own.
pub type FactoryMaker = Arc<dyn Fn() -> CcFactory + Send + Sync>;

/// Everything observable about one finished world, in exact (integer /
/// fixed-point) form: per-flow outcomes, per-node slab telemetry,
/// route-table and pool state, protocol counters, event count, and the
/// placement load view. Two runs are "the same run" iff their
/// fingerprints are equal — this is the currency of every differential
/// suite (queue × queue, runtime × runtime).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldFingerprint {
    /// Per flow: (requested, delivered, cells, completion time).
    pub flows: Vec<(u64, u64, u64, Option<SimDuration>)>,
    /// Circuit records registered (every incarnation counts).
    pub incarnations: usize,
    /// Per overlay node: (slab capacity, reclaimed free slots).
    pub node_slabs: Vec<(usize, usize)>,
    /// Link-route table size (slots, live or free).
    pub link_route_slots: usize,
    /// Reclaimed link-local ids awaiting reuse.
    pub free_link_routes: usize,
    /// Payload pool: (allocated, reused, returned, idle, idle high-water).
    pub pool: (u64, u64, u64, usize, usize),
    /// Global protocol counters.
    pub stats: WorldStats,
    /// Events the simulator processed.
    pub events_processed: u64,
    /// Live per-relay circuit loads (placement seam), empty without one.
    pub relay_loads: Vec<u32>,
    /// Per-relay load high-water marks, empty without a placement seam.
    pub relay_load_hwms: Vec<u32>,
    /// Per-relay liveness at run end (epoch churn), empty without a
    /// placement seam.
    pub relay_live: Vec<bool>,
}

/// Captures the full fingerprint of a finished world.
pub fn fingerprint(world: &TorNetwork, events_processed: u64) -> WorldFingerprint {
    let pool = world.payload_pool();
    let (allocated, reused) = pool.stats();
    WorldFingerprint {
        flows: world
            .flows()
            .iter()
            .map(|f| {
                (
                    f.requested,
                    f.delivered,
                    f.cells_delivered,
                    f.completion_time(),
                )
            })
            .collect(),
        incarnations: world.circuit_count(),
        node_slabs: (0..world.node_count())
            .map(|i| {
                let n = world.node(crate::ids::OverlayId(i as u32));
                (n.slab_len(), n.free_slot_count())
            })
            .collect(),
        link_route_slots: world.link_route_slots(),
        free_link_routes: world.free_link_routes(),
        pool: (
            allocated,
            reused,
            pool.returned(),
            pool.idle(),
            pool.idle_hwm(),
        ),
        stats: *world.stats(),
        events_processed,
        relay_loads: world.relay_loads().map(<[_]>::to_vec).unwrap_or_default(),
        relay_load_hwms: world
            .relay_load_hwms()
            .map(<[_]>::to_vec)
            .unwrap_or_default(),
        relay_live: world.relay_live().map(<[_]>::to_vec).unwrap_or_default(),
    }
}

/// How a sharded experiment aggregates its completion-time
/// distribution — the telemetry seam, mirroring the
/// [`QueueKind`]/[`SamplerKind`](crate::sampler::SamplerKind) pattern:
/// the default keeps every observable bit-exact, the alternative trades
/// a documented relative error for fixed memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsKind {
    /// Retain every raw completion sample per shard (O(flows) memory).
    /// The fingerprint suites and the exact CDF harness run here.
    #[default]
    Exact,
    /// Retain only the fixed-size quantile sketch per shard
    /// (O(buckets) memory); [`SweepReport::completion_samples`] is
    /// unavailable and panics. The scale path.
    Sketch,
}

/// The outcome of one shard: its fingerprint plus the aggregates the
/// experiment level consumes.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// Shard index within the experiment.
    pub shard: usize,
    /// The seed the shard's world was built from.
    pub seed: u64,
    /// The full observable state of the finished world.
    pub fingerprint: WorldFingerprint,
    /// DATA cells delivered across the shard's flows.
    pub cells_delivered: u64,
    /// Payload bytes delivered across the shard's flows.
    pub bytes_delivered: u64,
    /// Request-to-last-byte completion times of the completed flows.
    /// Empty under [`StatsKind::Sketch`] — the sketch is the record.
    pub flow_completions: Vec<SimDuration>,
    /// The shard world's streaming completion sketch (always populated;
    /// recording is deterministic, so it costs no fingerprint).
    pub completion_sketch: QuantileSketch,
}

/// Experiment-level aggregation of every shard (see [`ShardedStar::run`]).
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-shard outcomes, in shard order regardless of which worker
    /// finished first.
    pub shards: Vec<ShardReport>,
    /// Merged protocol counters ([`WorldStats::merge`]).
    pub stats: WorldStats,
    /// Total DATA cells delivered.
    pub cells_delivered: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// The aggregation mode the experiment ran under.
    pub stats_kind: StatsKind,
    /// Bucket-wise merge of every shard's completion sketch.
    pub completion_sketch: QuantileSketch,
}

impl SweepReport {
    /// All shards' flow completion times, sorted — the experiment-level
    /// CDF samples (sorting makes the merge order-independent).
    ///
    /// # Panics
    ///
    /// Panics under [`StatsKind::Sketch`]: the raw samples were never
    /// retained, and silently returning an empty set would read as "no
    /// flow completed".
    pub fn completion_samples(&self) -> Vec<SimDuration> {
        assert_eq!(
            self.stats_kind,
            StatsKind::Exact,
            "completion_samples needs StatsKind::Exact; sketch mode drops raw samples"
        );
        let mut all: Vec<SimDuration> = self
            .shards
            .iter()
            .flat_map(|s| s.flow_completions.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// The merged flow-completion CDF, if any flow completed.
    ///
    /// # Panics
    ///
    /// Panics under [`StatsKind::Sketch`] (see
    /// [`completion_samples`](Self::completion_samples)); use
    /// [`completion_sketch`](Self::completion_sketch) there.
    pub fn completion_cdf(&self) -> Option<simstats::cdf::Cdf> {
        simstats::cdf::Cdf::from_samples(
            self.completion_samples()
                .iter()
                .map(|d| d.as_secs_f64())
                .collect(),
        )
    }

    /// The merged completion-time sketch (seconds) — available in both
    /// modes, within its configured relative error of the exact CDF.
    pub fn completion_sketch(&self) -> &QuantileSketch {
        &self.completion_sketch
    }
}

/// A star experiment decomposed into independent shards — the unit of
/// parallelism of the async runtime. Shard `i` runs `scenario` under a
/// seed derived from `(seed, i)`, so the decomposition itself is part
/// of the experiment definition: the same spec run on any executor, or
/// shard by shard by hand, produces the same worlds.
#[derive(Clone)]
pub struct ShardedStar {
    /// The per-shard world template.
    pub scenario: StarScenario,
    /// Number of independent worlds.
    pub shards: usize,
    /// Master seed; shard seeds derive from it.
    pub seed: u64,
    /// Event-queue implementation every shard runs on.
    pub queue: QueueKind,
    /// Completion-distribution aggregation mode (the telemetry seam).
    pub stats: StatsKind,
}

impl ShardedStar {
    /// The derived seed of shard `shard`.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        SimRng::seed_from(self.seed)
            .derive_indexed("shard", shard as u64)
            .u64()
    }

    /// Runs one shard to quiescence on the calling thread — the
    /// single-threaded oracle. The executor path runs exactly this.
    ///
    /// # Panics
    ///
    /// Panics if the shard fails to quiesce within the safety limits or
    /// records a protocol error.
    pub fn run_shard(&self, shard: usize, factory: CcFactory) -> ShardReport {
        assert!(shard < self.shards, "shard index out of range");
        let seed = self.shard_seed(shard);
        let (mut sim, _circuits) = self.scenario.build_with_queue(factory, seed, self.queue);
        let report = sim.run_with_limits(RunLimits {
            until: Some(SimTime::from_secs(MAX_SHARD_SIM_TIME_S)),
            max_events: Some(MAX_SHARD_EVENTS),
        });
        assert_eq!(
            report.reason,
            StopReason::QueueEmpty,
            "shard {shard} (seed {seed}) did not quiesce: {report:?}"
        );
        let events = sim.events_processed();
        let world = sim.world();
        assert_eq!(
            world.stats().protocol_errors,
            0,
            "shard {shard} (seed {seed}) recorded protocol errors"
        );
        let fingerprint = fingerprint(world, events);
        let cells_delivered = world.flows().iter().map(|f| f.cells_delivered).sum();
        let bytes_delivered = world.flows().iter().map(|f| f.delivered).sum();
        // Sketch mode is where the O(flows) concatenation is the
        // problem, so that mode ships only the fixed-size record.
        let flow_completions = match self.stats {
            StatsKind::Exact => world
                .flows()
                .iter()
                .filter_map(|f| f.completion_time())
                .collect(),
            StatsKind::Sketch => Vec::new(),
        };
        ShardReport {
            shard,
            seed,
            fingerprint,
            cells_delivered,
            bytes_delivered,
            flow_completions,
            completion_sketch: world.flow_completion_sketch().clone(),
        }
    }

    /// Runs every shard on `exec` and merges the outcomes. Shard
    /// reports come back in shard order and each shard's world is
    /// driven by the deterministic event loop, so the result is
    /// bit-identical across executors and worker counts — the property
    /// the differential suite pins.
    pub fn run(&self, exec: &dyn Executor, make_factory: FactoryMaker) -> SweepReport {
        let jobs: Vec<Box<dyn FnOnce() -> ShardReport + Send>> = (0..self.shards)
            .map(|shard| {
                let spec = self.clone();
                let make = make_factory.clone();
                Box::new(move || spec.run_shard(shard, make()))
                    as Box<dyn FnOnce() -> ShardReport + Send>
            })
            .collect();
        let shards = execute_typed(exec, jobs);
        let mut stats = WorldStats::default();
        let mut total_cells = 0;
        let mut total_bytes = 0;
        let mut sketch = QuantileSketch::default();
        for s in &shards {
            // Exhaustive destructure (no `..`), the WorldStats::merge
            // contract extended to the shard level: a new ShardReport
            // field is a compile error here until its aggregation is
            // decided, never a silently-dropped experiment observable.
            let ShardReport {
                shard: _,
                seed: _,
                fingerprint,
                cells_delivered,
                bytes_delivered,
                flow_completions: _, // queried via completion_samples()
                completion_sketch,
            } = s;
            stats.merge(&fingerprint.stats);
            total_cells += cells_delivered;
            total_bytes += bytes_delivered;
            sketch.merge(completion_sketch);
        }
        SweepReport {
            shards,
            stats,
            cells_delivered: total_cells,
            bytes_delivered: total_bytes,
            stats_kind: self.stats,
            completion_sketch: sketch,
        }
    }
}

// ---------------------------------------------------------------------
// Stage tasks over bounded channels
// ---------------------------------------------------------------------

/// A message on a stage task's data channel (the forward direction of
/// the `conn → recognition → consume` contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageMsg {
    /// One cell, identified by its circuit-aggregate index.
    Cell {
        /// Send-order index (the sink asserts FIFO delivery).
        id: u64,
    },
    /// End of stream: the sender has forwarded everything.
    Close,
}

/// The windowed 3-stage relay pipeline as communicating tasks — see the
/// [module docs](self) for what this models and proves.
#[derive(Clone, Copy, Debug)]
pub struct StagePipeline {
    /// Relay tasks between the client and server endpoints.
    pub relays: usize,
    /// Cells the client originates.
    pub cells: u64,
    /// Per-hop window: unconfirmed cells a sender may have outstanding.
    pub window: u32,
    /// Capacity of each data channel — the serialization analogue. A
    /// capacity below the window is what makes backpressure engage.
    pub link_capacity: usize,
}

/// What one pipeline run observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Cells the server consumed (must equal the spec's `cells`).
    pub delivered: u64,
    /// Window credits processed across all hops.
    pub confirms: u64,
    /// Times a data-channel send blocked on a full channel — proof the
    /// bounded capacity actually throttled a producer.
    pub blocked_sends: u64,
    /// Largest relay-local queue observed; bounded by the predecessor's
    /// window (the backpressure property).
    pub relay_queue_hwm: usize,
}

/// One stage task's contribution to the report.
struct TaskReport {
    confirms: u64,
    blocked_sends: u64,
    queue_hwm: usize,
    delivered: u64,
}

impl StagePipeline {
    /// Number of OS tasks the pipeline spawns (client + relays + server).
    pub fn tasks(&self) -> usize {
        self.relays + 2
    }

    /// Runs the pipeline on `exec` until every cell is consumed and
    /// every credit returned.
    ///
    /// # Panics
    ///
    /// Panics if `exec` has fewer workers than the pipeline has tasks —
    /// the tasks block on each other's channels, so each needs its own
    /// worker (a sequential executor would deadlock by construction).
    pub fn run(&self, exec: &dyn Executor) -> StageReport {
        assert!(self.cells > 0 && self.window > 0 && self.link_capacity > 0);
        let tasks = self.tasks();
        assert!(
            exec.workers() >= tasks,
            "stage pipeline needs one worker per task ({tasks} tasks, {} workers)",
            exec.workers()
        );
        let hops = self.relays + 1;
        let window = self.window;
        let cells = self.cells;

        let mut data_tx = Vec::with_capacity(hops);
        let mut data_rx = VecDeque::with_capacity(hops);
        let mut fb_tx = VecDeque::with_capacity(hops);
        let mut fb_rx = Vec::with_capacity(hops);
        for _ in 0..hops {
            let (tx, rx) = chan::bounded::<StageMsg>(self.link_capacity);
            data_tx.push(tx);
            data_rx.push_back(rx);
            // capacity == window: a hop's unconfirmed cells never exceed
            // its window, so this channel can never fill — the credit
            // path cannot join a deadlock cycle.
            let (tx, rx) = chan::bounded::<u64>(window as usize);
            fb_tx.push_back(tx);
            fb_rx.push(rx);
        }

        let mut jobs: Vec<Box<dyn FnOnce() -> TaskReport + Send>> = Vec::with_capacity(tasks);
        // Client: originates `cells`, gated by its window.
        {
            let tx_down = data_tx.remove(0);
            let rx_fb = fb_rx.remove(0);
            jobs.push(Box::new(move || {
                let mut in_flight = 0u32;
                let mut confirms = 0u64;
                for id in 0..cells {
                    while in_flight >= window {
                        rx_fb.recv().expect("credit path died");
                        in_flight -= 1;
                        confirms += 1;
                    }
                    tx_down.send(StageMsg::Cell { id }).expect("data path died");
                    in_flight += 1;
                }
                tx_down.send(StageMsg::Close).expect("data path died");
                while in_flight > 0 {
                    rx_fb.recv().expect("credit path died");
                    in_flight -= 1;
                    confirms += 1;
                }
                TaskReport {
                    confirms,
                    blocked_sends: tx_down.stats().blocked_sends,
                    queue_hwm: 0,
                    delivered: 0,
                }
            }));
        }
        // Relays: receive, queue, forward under their own window,
        // confirming upstream at forward time (strict credit priority,
        // as the LinkScheduler orders feedback frames first).
        for _ in 0..self.relays {
            let rx_up = data_rx.pop_front().expect("one data rx per hop");
            let tx_fb_up = fb_tx.pop_front().expect("one credit tx per hop");
            let tx_down = data_tx.remove(0);
            let rx_fb_down = fb_rx.remove(0);
            jobs.push(Box::new(move || {
                let mut queue: VecDeque<u64> = VecDeque::new();
                let mut queue_hwm = 0usize;
                let mut in_flight = 0u32;
                let mut confirms = 0u64;
                let mut closing = false;
                loop {
                    // Credit first.
                    if rx_fb_down.try_recv().is_ok() {
                        in_flight -= 1;
                        confirms += 1;
                        continue;
                    }
                    // Forward while the window allows.
                    if in_flight < window {
                        if let Some(id) = queue.pop_front() {
                            tx_down.send(StageMsg::Cell { id }).expect("data path died");
                            in_flight += 1;
                            // Taking the cell out of the queue is the
                            // moment the confirm is owed upstream.
                            tx_fb_up.send(id).expect("credit path died");
                            continue;
                        }
                    }
                    match rx_up.try_recv() {
                        Ok(StageMsg::Cell { id }) => {
                            queue.push_back(id);
                            queue_hwm = queue_hwm.max(queue.len());
                            continue;
                        }
                        Ok(StageMsg::Close) => {
                            closing = true;
                            continue;
                        }
                        Err(chan::TryRecvError::Empty | chan::TryRecvError::Disconnected) => {}
                    }
                    if closing && queue.is_empty() {
                        while in_flight > 0 {
                            rx_fb_down.recv().expect("credit path died");
                            in_flight -= 1;
                            confirms += 1;
                        }
                        tx_down.send(StageMsg::Close).expect("data path died");
                        break;
                    }
                    std::thread::yield_now();
                }
                TaskReport {
                    confirms,
                    blocked_sends: tx_down.stats().blocked_sends,
                    queue_hwm,
                    delivered: 0,
                }
            }));
        }
        // Server: consumes in order and returns credit immediately.
        {
            let rx_up = data_rx.pop_front().expect("server data rx");
            let tx_fb_up = fb_tx.pop_front().expect("server credit tx");
            jobs.push(Box::new(move || {
                let mut delivered = 0u64;
                while let StageMsg::Cell { id } = rx_up.recv().expect("data path died") {
                    assert_eq!(id, delivered, "cells must arrive in send order");
                    delivered += 1;
                    tx_fb_up.send(id).expect("credit path died");
                }
                TaskReport {
                    confirms: 0,
                    blocked_sends: 0,
                    queue_hwm: 0,
                    delivered,
                }
            }));
        }

        let reports = execute_typed(exec, jobs);
        let mut out = StageReport {
            delivered: 0,
            confirms: 0,
            blocked_sends: 0,
            relay_queue_hwm: 0,
        };
        for r in reports {
            out.delivered += r.delivered;
            out.confirms += r.confirms;
            out.blocked_sends += r.blocked_sends;
            out.relay_queue_hwm = out.relay_queue_hwm.max(r.queue_hwm);
        }
        assert_eq!(out.delivered, cells, "pipeline lost or duplicated cells");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::fixed_window_factory;
    use crate::directory::DirectoryConfig;
    use crate::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
    use simcore::exec::{DeterministicExecutor, ThreadedExecutor};

    fn small_sharded() -> ShardedStar {
        ShardedStar {
            scenario: StarScenario {
                circuits: 2,
                file_bytes: 20_000,
                directory: DirectoryConfig {
                    relays: 6,
                    bandwidth_mbps: (20.0, 60.0),
                    delay_ms: (2.0, 6.0),
                },
                workload: WorkloadSpec {
                    streams_per_circuit: 2,
                    arrival: ArrivalSpec::Immediate,
                    churn: Some(ChurnSpec {
                        teardown_after_ms: (30.0, 60.0),
                        rebuild_delay_ms: 5.0,
                        cycles: 1,
                    }),
                },
                ..Default::default()
            },
            shards: 3,
            seed: 77,
            queue: QueueKind::default(),
            stats: StatsKind::default(),
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let e = small_sharded();
        let seeds: Vec<u64> = (0..e.shards).map(|i| e.shard_seed(i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "shard seeds collided: {seeds:?}");
        assert_eq!(
            seeds,
            (0..e.shards).map(|i| e.shard_seed(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn executor_choice_is_unobservable() {
        let e = small_sharded();
        let make: FactoryMaker = Arc::new(|| fixed_window_factory(8));
        let oracle = e.run(&DeterministicExecutor, make.clone());
        let threaded = e.run(&ThreadedExecutor::new(4), make);
        assert_eq!(oracle.shards, threaded.shards, "threaded run diverged");
        assert_eq!(oracle.stats, threaded.stats);
        assert_eq!(oracle.cells_delivered, threaded.cells_delivered);
    }

    #[test]
    fn executor_path_runs_the_oracle_code() {
        let e = small_sharded();
        let make: FactoryMaker = Arc::new(|| fixed_window_factory(8));
        let sweep = e.run(&DeterministicExecutor, make);
        for (i, s) in sweep.shards.iter().enumerate() {
            let direct = e.run_shard(i, fixed_window_factory(8));
            assert_eq!(*s, direct, "shard {i} diverged from a direct run");
        }
        // Merged counters equal the per-shard sums.
        let mut stats = WorldStats::default();
        for s in &sweep.shards {
            stats.merge(&s.fingerprint.stats);
        }
        assert_eq!(stats, sweep.stats);
        assert!(sweep.completion_cdf().is_some());
        assert!(sweep.bytes_delivered > 0);
    }

    #[test]
    fn sketch_mode_drops_samples_but_keeps_the_distribution() {
        let exact = small_sharded();
        let sketchy = ShardedStar {
            stats: StatsKind::Sketch,
            ..exact.clone()
        };
        let make: FactoryMaker = Arc::new(|| fixed_window_factory(8));
        let e = exact.run(&DeterministicExecutor, make.clone());
        let s = sketchy.run(&DeterministicExecutor, make);
        // The seam changes retention, never the simulation: fingerprints
        // and the merged sketch are identical across modes.
        for (a, b) in e.shards.iter().zip(&s.shards) {
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.completion_sketch, b.completion_sketch);
            assert!(b.flow_completions.is_empty(), "sketch mode retains samples");
        }
        assert_eq!(e.completion_sketch, s.completion_sketch);
        assert_eq!(
            e.completion_samples().len() as u64,
            s.completion_sketch().len()
        );
    }

    #[test]
    #[should_panic(expected = "StatsKind::Exact")]
    fn sketch_mode_refuses_raw_sample_queries() {
        let e = ShardedStar {
            stats: StatsKind::Sketch,
            ..small_sharded()
        };
        let make: FactoryMaker = Arc::new(|| fixed_window_factory(8));
        let sweep = e.run(&DeterministicExecutor, make);
        let _ = sweep.completion_samples();
    }

    #[test]
    fn stage_pipeline_conserves_cells_under_tight_links() {
        let spec = StagePipeline {
            relays: 2,
            cells: 2_000,
            window: 8,
            link_capacity: 2,
        };
        let report = spec.run(&ThreadedExecutor::new(spec.tasks()));
        assert_eq!(report.delivered, 2_000);
        assert!(
            report.blocked_sends > 0,
            "2-slot links under an 8-cell window must backpressure"
        );
        assert!(
            report.relay_queue_hwm <= 8,
            "relay queue {} exceeded the predecessor window",
            report.relay_queue_hwm
        );
        // Every cell is confirmed once per hop it was forwarded on
        // (client hop + relay hops).
        assert_eq!(report.confirms, 2_000 * 3);
    }

    #[test]
    #[should_panic(expected = "one worker per task")]
    fn stage_pipeline_rejects_undersized_pools() {
        let spec = StagePipeline {
            relays: 2,
            cells: 10,
            window: 4,
            link_capacity: 2,
        };
        let _ = spec.run(&DeterministicExecutor);
    }
}
