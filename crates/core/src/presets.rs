//! Paper-parameter presets: the exact configurations the figure
//! regeneration binaries and EXPERIMENTS.md use.
//!
//! The poster does not publish its simulation parameters; these values
//! are chosen so that the *axes* match the paper's plots (source cwnd
//! 0–70 KB over 0–300 ms; TTLB CDF over 0–3 s) and are recorded, together
//! with the measured outcomes, in EXPERIMENTS.md.

use backtap::config::CcConfig;
use netsim::bandwidth::Bandwidth;
use relaynet::builder::StarScenario;
use relaynet::directory::DirectoryConfig;
use relaynet::network::WorldConfig;
use relaynet::selection::SelectionPolicy;
use simcore::time::SimDuration;

use crate::algorithm::Algorithm;
use crate::harness::{CdfScenarioConfig, TraceScenarioConfig};

/// Figure 1 (upper panels): the cwnd-trace geometry with the bottleneck
/// at the given distance from the source (1 = Figure 1a, 3 = Figure 1b).
pub fn fig1_trace(distance: usize, algorithm: Algorithm) -> TraceScenarioConfig {
    TraceScenarioConfig {
        relays: 3,
        fast: Bandwidth::from_mbps(100),
        bottleneck: Bandwidth::from_mbps(20),
        bottleneck_link: distance,
        hop_delay: SimDuration::from_millis(5),
        file_bytes: 1 << 20, // 1 MiB
        algorithm,
        cc: CcConfig::default(),
        seed: 1,
    }
}

/// Figure 1 (lower panel): 50 concurrent circuits over a randomly
/// generated star of 30 relays; CircuitStart vs plain BackTap.
pub fn fig1_cdf() -> CdfScenarioConfig {
    CdfScenarioConfig {
        star: StarScenario {
            directory: DirectoryConfig {
                relays: 30,
                bandwidth_mbps: (20.0, 100.0),
                delay_ms: (3.0, 10.0),
            },
            circuits: 50,
            relays_per_circuit: 3,
            endpoint_rate: Bandwidth::from_mbps(200),
            endpoint_delay_ms: (3.0, 8.0),
            file_bytes: 1 << 20,
            start_jitter_ms: 50.0,
            world: WorldConfig {
                verify_payload: true,
                trace_client_cwnd: false, // 50 traces are noise here
            },
            ..Default::default()
        },
        // The paper's pairing is CircuitStart vs plain BackTap (Vegas
        // only — its cited weakness is precisely the missing startup
        // phase). The classic halving slow start rides along as a third
        // series for the discussion in EXPERIMENTS.md.
        algorithms: vec![
            Algorithm::CircuitStart,
            Algorithm::NoSlowStart,
            Algorithm::ClassicBacktap,
        ],
        cc: CcConfig::default(),
        seed: 1,
        repetitions: 3,
    }
}

/// The path-selection experiment: the Figure-1c star with the selection
/// policy as the experimental axis (CircuitStart only — selection, not
/// the controller, is what varies). Run once per policy over identical
/// seeds; see `examples/path_policies.rs` and the `policies` ablation.
pub fn policy_cdf(selection: SelectionPolicy) -> CdfScenarioConfig {
    let mut cfg = fig1_cdf();
    cfg.star.selection = selection;
    cfg.algorithms = vec![Algorithm::CircuitStart];
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_trace_geometry() {
        let a = fig1_trace(1, Algorithm::CircuitStart);
        let hops = a.hops();
        assert_eq!(hops.len(), 4, "3 relays → 4 links");
        assert_eq!(hops[1].rate, Bandwidth::from_mbps(20));
        assert_eq!(hops[0].rate, Bandwidth::from_mbps(100));
        let b = fig1_trace(3, Algorithm::ClassicBacktap);
        assert_eq!(b.hops()[3].rate, Bandwidth::from_mbps(20));
        assert_eq!(b.hops()[1].rate, Bandwidth::from_mbps(100));
    }

    #[test]
    fn fig1_trace_optimal_in_paper_axis_range() {
        // The paper's upper plots span 0–70 KB with the optimum well
        // inside; our preset must land there too.
        let m = fig1_trace(1, Algorithm::CircuitStart).model();
        let kib = m.optimal_source_cwnd_kib();
        assert!(
            (10.0..40.0).contains(&kib),
            "optimal window {kib} KiB should sit inside the paper's axis"
        );
    }

    #[test]
    fn fig1_cdf_matches_paper_workload() {
        let c = fig1_cdf();
        assert_eq!(c.star.circuits, 50);
        assert_eq!(c.star.relays_per_circuit, 3);
        assert_eq!(c.algorithms.len(), 3);
        assert_eq!(c.algorithms[1], Algorithm::NoSlowStart);
        assert_eq!(c.star.file_bytes, 1 << 20);
    }

    #[test]
    fn policy_cdf_varies_only_the_selection_axis() {
        let c = policy_cdf(std::sync::Arc::new(relaynet::selection::CongestionAware));
        assert_eq!(c.star.circuits, fig1_cdf().star.circuits);
        assert_eq!(
            c.algorithms,
            vec![Algorithm::CircuitStart],
            "one controller; selection is the axis"
        );
    }
}
