//! Workload-engine property tests: byte conservation and slot
//! reclamation under randomly drawn stream counts, arrival offsets, and
//! churn points — in the style of `proptest_system.rs` (SimRng-driven
//! loops with fixed master seeds: proptest-style coverage with
//! bit-for-bit reproducibility and no external dependencies).
//!
//! Churn is the first workload that reclaims and reuses circuit-id
//! slots, route-table slots, and pooled payload buffers mid-run, so
//! these properties are what make the rest of the suite trustworthy:
//! if a teardown leaked a slot or a byte, arbitrary later state would
//! silently alias it.

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{PathScenario, WorldConfig};
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// Arbitrary small path geometry: 1–3 relays, 8–60 Mbit/s links,
/// 1–10 ms delays.
fn arb_hops(rng: &mut SimRng) -> Vec<LinkConfig> {
    let n = rng.range_usize(2, 5);
    (0..n)
        .map(|_| {
            let mbps = rng.range_u64(8, 61);
            let ms = rng.range_u64(1, 11);
            LinkConfig::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis(ms))
        })
        .collect()
}

/// Arbitrary workload: 1–4 streams, any arrival process, and (when
/// `churn` is set) 1–3 teardown/rebuild cycles placed early enough to
/// race in-flight DATA.
fn arb_workload(rng: &mut SimRng, churn: bool) -> WorkloadSpec {
    let arrival = match rng.range_usize(0, 3) {
        0 => ArrivalSpec::Immediate,
        1 => ArrivalSpec::UniformJitter {
            max_ms: rng.range_f64(1.0, 60.0),
        },
        _ => ArrivalSpec::OnOff {
            burst: rng.range_usize(1, 3),
            gap_ms: (5.0, rng.range_f64(6.0, 50.0)),
        },
    };
    WorkloadSpec {
        streams_per_circuit: rng.range_usize(1, 5),
        arrival,
        churn: churn.then(|| ChurnSpec {
            teardown_after_ms: (rng.range_f64(10.0, 40.0), rng.range_f64(40.0, 120.0)),
            rebuild_delay_ms: rng.range_f64(0.0, 10.0),
            cycles: rng.range_usize(1, 4) as u32,
        }),
    }
}

fn build_and_run(
    hops: Vec<LinkConfig>,
    file_bytes: u64,
    workload: WorkloadSpec,
    seed: u64,
) -> simcore::sim::Simulator<relaynet::TorNetwork> {
    let scenario = PathScenario {
        hops,
        file_bytes,
        workload,
        faults: None,
        world: WorldConfig::default(),
    };
    let (mut sim, _) = scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), seed);
    run_to_completion(&mut sim);
    sim
}

/// Bytes are conserved under any workload: the sum of per-stream
/// delivered bytes equals the sum requested — streams never lose bytes
/// to a teardown (the rebuilt circuit re-attaches the remainder) and
/// never duplicate them (re-sends start exactly at the delivered
/// prefix).
#[test]
fn no_byte_lost_or_duplicated_under_random_workloads() {
    let mut gen = SimRng::seed_from(0x5EED_0010);
    for case in 0..20 {
        let hops = arb_hops(&mut gen);
        let churn = case % 2 == 0;
        let workload = arb_workload(&mut gen, churn);
        let file = gen.range_u64(20, 121) * 1000;
        let seed = gen.u64();
        let sim = build_and_run(hops, file, workload, seed);
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0, "case {case}");
        assert_eq!(world.net().total_drops(), 0, "case {case}");
        let mut requested = 0;
        let mut delivered = 0;
        for f in world.flows() {
            assert!(f.complete(), "case {case}: stranded flow {f:?}");
            assert!(f.delivered <= f.requested, "case {case}: duplicated bytes");
            requested += f.requested;
            delivered += f.delivered;
        }
        assert_eq!(requested, file, "case {case}: workload covers the file");
        assert_eq!(delivered, requested, "case {case}: conservation");
    }
}

/// Every torn-down circuit's slots are reclaimed: after quiescence only
/// the final incarnations hold slab slots, the reclaimed-slot count
/// matches the teardown count exactly, and pooled payload buffers all
/// found their way home.
#[test]
fn teardown_reclaims_every_slot_and_buffer() {
    let mut gen = SimRng::seed_from(0x5EED_0011);
    for case in 0..12 {
        let hops = arb_hops(&mut gen);
        let path_nodes = hops.len() + 1;
        let workload = arb_workload(&mut gen, true);
        let file = gen.range_u64(30, 101) * 1000;
        let seed = gen.u64();
        let sim = build_and_run(hops, file, workload, seed);
        let world = sim.world();
        assert!(world.stats().rebuilds >= 1, "case {case}: churn must fire");
        // A circuit is live iff its client still holds a participation;
        // torn-down incarnations must be gone from *every* node on the
        // path — a partially reclaimed teardown (say, a relay stuck with
        // a dead slot) is exactly the leak this test exists to catch.
        let mut live = 0usize;
        for c in 0..world.circuit_count() {
            let circ = relaynet::CircId(c as u32);
            let path = world.circuit_info(circ).path.clone();
            if world.node(path[0]).circuit(circ).is_some() {
                live += 1;
                continue;
            }
            for &n in &path {
                assert!(
                    world.node(n).circuit(circ).is_none(),
                    "case {case}: node {n} still holds torn-down {circ}"
                );
            }
        }
        let torn = world.circuit_count() - live;
        assert!(torn >= 1, "case {case}: at least one incarnation was torn");
        // Slot accounting is consistent at every node: slab = live + free.
        for n in 0..path_nodes {
            let node = world.node(relaynet::OverlayId(n as u32));
            assert_eq!(
                node.slab_len(),
                node.circuit_count() + node.free_slot_count(),
                "case {case}: node {n} slab books do not balance"
            );
            assert_eq!(
                node.circuit_count(),
                live,
                "case {case}: node {n} keeps only the live incarnations"
            );
        }
        // Post-build teardowns send exactly one DESTROY per hop per wave;
        // mid-build teardowns reach only the built prefix, so the total
        // is bounded by the full-path count.
        assert!(
            world.stats().destroys_sent >= 2
                && world.stats().destroys_sent <= torn as u64 * 2 * (path_nodes as u64 - 1),
            "case {case}: destroy count {} outside [2, {}]",
            world.stats().destroys_sent,
            torn as u64 * 2 * (path_nodes as u64 - 1)
        );
        // Every pooled payload buffer handed out was handed back —
        // through delivery, closed-circuit drops, or teardown drains.
        let pool = world.payload_pool();
        assert_eq!(
            pool.returned(),
            pool.acquired(),
            "case {case}: payload buffers leaked in flight"
        );
    }
}

/// Slab sizes are a function of peak concurrency, not of churn volume:
/// doubling the number of teardown/rebuild cycles leaves the node
/// slabs and the link-route table exactly as large. This is the
/// "no slab growth across rebuild cycles" invariant — rebuilds recycle
/// reclaimed slots instead of appending.
#[test]
fn slab_sizes_flat_across_extra_rebuild_cycles() {
    let mut gen = SimRng::seed_from(0x5EED_0012);
    for case in 0..6 {
        let hops = arb_hops(&mut gen);
        let path_nodes = hops.len() + 1;
        let streams = gen.range_usize(1, 4);
        let file = gen.range_u64(40, 101) * 1000;
        let seed = gen.u64();
        let measure = |cycles: u32| {
            let workload = WorkloadSpec {
                streams_per_circuit: streams,
                arrival: ArrivalSpec::Immediate,
                churn: Some(ChurnSpec {
                    teardown_after_ms: (15.0, 45.0),
                    rebuild_delay_ms: 3.0,
                    cycles,
                }),
            };
            let sim = build_and_run(hops.clone(), file, workload, seed);
            let world = sim.world();
            let slabs: Vec<usize> = (0..path_nodes)
                .map(|n| world.node(relaynet::OverlayId(n as u32)).slab_len())
                .collect();
            (slabs, world.link_route_slots(), world.stats().rebuilds)
        };
        let (slabs_short, routes_short, rebuilds_short) = measure(2);
        let (slabs_long, routes_long, rebuilds_long) = measure(4);
        assert!(
            rebuilds_long > rebuilds_short,
            "case {case}: the longer run must churn more ({rebuilds_short} vs {rebuilds_long})"
        );
        assert_eq!(
            slabs_short, slabs_long,
            "case {case}: extra churn cycles grew a node slab"
        );
        assert_eq!(
            routes_short, routes_long,
            "case {case}: extra churn cycles grew the route table"
        );
    }
}

/// Determinism as a property, now under churn: replaying any workload
/// configuration with the same seed reproduces identical per-flow
/// completion times and identical reclamation counters.
#[test]
fn workload_determinism_over_random_configs() {
    let mut gen = SimRng::seed_from(0x5EED_0013);
    for case in 0..8 {
        let hops = arb_hops(&mut gen);
        let workload = arb_workload(&mut gen, case % 2 == 0);
        let file = gen.range_u64(20, 81) * 1000;
        let seed = gen.u64();
        let fingerprint = |sim: &simcore::sim::Simulator<relaynet::TorNetwork>| {
            let world = sim.world();
            (
                world
                    .flows()
                    .iter()
                    .map(|f| (f.delivered, f.completed_at))
                    .collect::<Vec<_>>(),
                world.stats().slots_reclaimed,
                world.stats().rebuilds,
                sim.events_processed(),
            )
        };
        let a = build_and_run(hops.clone(), file, workload, seed);
        let b = build_and_run(hops, file, workload, seed);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "case {case}: same seed must replay identically"
        );
    }
}
