//! Scenario builders: wire topology, overlay, circuits, and start events
//! into a ready-to-run [`Simulator`].
//!
//! Two canonical scenarios cover the paper's evaluation:
//!
//! * [`PathScenario`] — one circuit over a chain of nodes with explicit
//!   per-hop link parameters (Figure 1 upper panels: put the bottleneck at
//!   a chosen distance from the source).
//! * [`StarScenario`] — nstor's network model: every relay, client, and
//!   server hangs off a central switch by its own access link; many
//!   circuits run concurrently over randomly selected relays (Figure 1
//!   lower panel).

use backtap::cc::UnlimitedCc;
use backtap::config::CcConfig;
use backtap::delay_cc::DelayCc;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use netsim::net::Net;
use netsim::topology::{AccessConfig, Path, Star};
use simcore::event::QueueKind;
use simcore::rng::SimRng;
use simcore::sim::Simulator;
use simcore::time::{SimDuration, SimTime};

use std::sync::Arc;

use crate::directory::{Directory, DirectoryConfig};
use crate::event::TorEvent;
use crate::ids::{CircId, Direction};
use crate::network::{TorNetwork, WorldConfig};
use crate::node::{CcFactory, NodeRole};
use crate::router::Router;
use crate::sampler::SamplerKind;
use crate::selection::{SelectionPolicy, Uniform};
use crate::workload::{EpochSpec, FaultSpec, WorkloadSpec};

/// A single circuit over an explicit chain of links.
#[derive(Clone, Debug)]
pub struct PathScenario {
    /// Per-hop link parameters: `hops[0]` is client↔first relay, the last
    /// entry is exit↔server. A circuit with `k` relays has `k + 1` hops.
    pub hops: Vec<LinkConfig>,
    /// Payload bytes the client transfers (split across the workload's
    /// streams).
    pub file_bytes: u64,
    /// Stream multiplexing, arrival process, and churn (default: one
    /// immediate bulk stream, no churn — the paper's shape).
    pub workload: WorkloadSpec,
    /// Fault injection (see [`FaultSpec`]): relay crashes and transient
    /// link stalls, with the client's timer/backoff machinery armed.
    /// `None` (the default) keeps the run bit-identical to pre-fault
    /// builds (the "faults" RNG stream is only derived when this is
    /// set). With no placement seam, a crashed relay stays on the
    /// rebuild path — the lineage retries under backoff until the retry
    /// cap parks it, deterministically.
    pub faults: Option<FaultSpec>,
    /// World switches.
    pub world: WorldConfig,
}

impl Default for PathScenario {
    fn default() -> Self {
        PathScenario {
            hops: Vec::new(),
            file_bytes: 1 << 20,
            workload: WorkloadSpec::default(),
            faults: None,
            world: WorldConfig::default(),
        }
    }
}

/// Handles into a built [`PathScenario`]: the circuit plus the link and
/// node ids needed for telemetry and mid-flow interventions.
#[derive(Clone, Debug)]
pub struct PathHandles {
    /// The single circuit.
    pub circ: CircId,
    /// Forward links, `fwd[i]` carrying hop `i` (client side = 0).
    pub fwd_links: Vec<netsim::link::LinkId>,
    /// Reverse links (feedback path).
    pub rev_links: Vec<netsim::link::LinkId>,
    /// Overlay nodes in path order.
    pub overlay_path: Vec<crate::ids::OverlayId>,
}

impl PathScenario {
    /// Builds the network and returns the simulator plus handles.
    /// The circuit starts at `t = 0`.
    pub fn build(&self, factory: CcFactory, seed: u64) -> (Simulator<TorNetwork>, PathHandles) {
        self.build_with_queue(factory, seed, QueueKind::default())
    }

    /// [`PathScenario::build`] with an explicit event-queue implementation
    /// — the seam the differential determinism tests drive (calendar vs
    /// legacy heap must produce bit-identical experiments).
    pub fn build_with_queue(
        &self,
        factory: CcFactory,
        seed: u64,
        queue: QueueKind,
    ) -> (Simulator<TorNetwork>, PathHandles) {
        assert!(
            self.hops.len() >= 2,
            "a path circuit needs at least client↔relay↔server"
        );
        let mut net: Net<crate::wire::WireFrame> = Net::new();
        let topo = Path::build(&mut net, &self.hops);
        let mut router = Router::new();
        for i in 0..topo.hop_count() {
            router.install(topo.nodes[i], topo.nodes[i + 1], topo.fwd[i]);
            router.install(topo.nodes[i + 1], topo.nodes[i], topo.rev[i]);
        }
        let master = SimRng::seed_from(seed);
        let mut world = TorNetwork::new(
            net,
            router,
            self.world,
            factory,
            master.derive("handshakes"),
        );
        let last = topo.nodes.len() - 1;
        let overlay_path: Vec<_> = topo
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &nn)| {
                let (role, name) = if i == 0 {
                    (NodeRole::Client, "client".to_string())
                } else if i == last {
                    (NodeRole::Server, "server".to_string())
                } else {
                    (NodeRole::Relay, format!("relay-{i}"))
                };
                world.add_overlay(nn, role, &name)
            })
            .collect();
        let mut wl_rng = master.derive("workload");
        let workload = self
            .workload
            .resolve(self.file_bytes, &mut wl_rng, |bytes| world.add_flow(bytes));
        let circ = world.add_circuit_with_workload(overlay_path.clone(), workload, 0);
        // Like epochs, the fault schedule draws from a stream that is
        // only derived when faults are configured — a fault-free build
        // consumes exactly the randomness it always did.
        let fault_schedule = self.faults.as_ref().map(|spec| {
            let frng = master.derive("faults");
            let mut srng = frng.derive("schedule");
            // Interior relays, named by overlay id directly (no
            // placement seam in a path world).
            let candidates: Vec<u32> = (1..last as u32).collect();
            let schedule = spec.resolve(&candidates, &mut srng);
            world.install_faults(*spec, frng.derive("backoff"));
            schedule
        });
        let mut sim = Simulator::with_queue(world, queue);
        sim.schedule_at(SimTime::ZERO, TorEvent::StartCircuit(circ));
        if let Some(schedule) = fault_schedule {
            let spec = self.faults.as_ref().expect("schedule implies spec");
            for (at, relay) in schedule.crashes {
                sim.schedule_at(SimTime::ZERO + at, TorEvent::RelayCrash { relay });
            }
            for s in schedule.stalls {
                // Relay overlay id `r` sits between hops `r-1` and `r`:
                // throttle its upstream hop in both directions, then
                // restore the provisioned rate.
                let r = s.relay as usize;
                let full = self.hops[r - 1].rate;
                let throttled = Bandwidth::from_bps(
                    ((full.bps() as f64 / spec.stall_factor.max(1.0)).floor() as u64).max(1),
                );
                for &link in &[topo.fwd[r - 1], topo.rev[r - 1]] {
                    sim.schedule_at(
                        SimTime::ZERO + s.at,
                        TorEvent::SetLinkRate {
                            link,
                            rate: throttled,
                        },
                    );
                    sim.schedule_at(
                        SimTime::ZERO + s.at + s.duration,
                        TorEvent::SetLinkRate { link, rate: full },
                    );
                }
            }
        }
        let handles = PathHandles {
            circ,
            fwd_links: topo.fwd,
            rev_links: topo.rev,
            overlay_path,
        };
        (sim, handles)
    }
}

/// Many circuits over a randomly generated relay population in a star.
#[derive(Clone, Debug)]
pub struct StarScenario {
    /// Relay population parameters.
    pub directory: DirectoryConfig,
    /// Number of concurrent circuits (each gets its own client and server
    /// leaf).
    pub circuits: usize,
    /// Relays per circuit (Tor default: 3).
    pub relays_per_circuit: usize,
    /// Access rate of client and server leaves (fast, so relays are the
    /// bottleneck, as in the paper's setup).
    pub endpoint_rate: Bandwidth,
    /// Client/server access delay range (uniform, one-way, ms).
    pub endpoint_delay_ms: (f64, f64),
    /// Payload bytes per circuit.
    pub file_bytes: u64,
    /// Circuit starts are jittered uniformly over `[0, start_jitter_ms]`
    /// to avoid artificial phase lock between 50 identical state machines.
    pub start_jitter_ms: f64,
    /// Path-selection policy (see [`crate::selection`]): how each
    /// circuit picks its relays from the generated directory, with live
    /// load telemetry fed back on build and teardown. Default:
    /// [`Uniform`]. Churn rebuilds re-select through the same policy.
    pub selection: SelectionPolicy,
    /// Stream multiplexing, arrival process, and churn, applied to every
    /// circuit (resolved independently per circuit from the master
    /// seed). Default: one immediate bulk stream, no churn.
    pub workload: WorkloadSpec,
    /// Consensus epoch churn (see [`EpochSpec`]): relays join/leave the
    /// live set at epoch boundaries, tearing down crossing circuits.
    /// `None` (the default) keeps every relay live forever — and keeps
    /// the run bit-identical to pre-epoch builds (the "epochs" RNG
    /// stream is only derived when this is set).
    pub epochs: Option<EpochSpec>,
    /// Which weighted-sampler implementation backs the selection engine
    /// (picks are identical either way; see [`crate::sampler`]).
    /// Default: [`SamplerKind::Auto`].
    pub sampler: SamplerKind,
    /// Fault injection (see [`FaultSpec`]): relay crashes and transient
    /// access-link stalls drawn from the initially-live relay set, with
    /// the client-side timer/backoff/blame recovery loop armed. `None`
    /// (the default) keeps the run bit-identical to pre-fault builds
    /// (the "faults" RNG stream is only derived when this is set).
    pub faults: Option<FaultSpec>,
    /// World switches.
    pub world: WorldConfig,
}

impl Default for StarScenario {
    fn default() -> Self {
        StarScenario {
            directory: DirectoryConfig::default(),
            circuits: 50,
            relays_per_circuit: 3,
            endpoint_rate: Bandwidth::from_mbps(200),
            endpoint_delay_ms: (3.0, 8.0),
            file_bytes: 1 << 20,
            start_jitter_ms: 50.0,
            selection: Arc::new(Uniform),
            workload: WorkloadSpec::default(),
            epochs: None,
            sampler: SamplerKind::Auto,
            faults: None,
            world: WorldConfig::default(),
        }
    }
}

impl StarScenario {
    /// Builds the network and returns the simulator plus all circuit ids.
    pub fn build(&self, factory: CcFactory, seed: u64) -> (Simulator<TorNetwork>, Vec<CircId>) {
        self.build_with_queue(factory, seed, QueueKind::default())
    }

    /// [`StarScenario::build`] with an explicit event-queue implementation
    /// (see [`PathScenario::build_with_queue`]).
    pub fn build_with_queue(
        &self,
        factory: CcFactory,
        seed: u64,
        queue: QueueKind,
    ) -> (Simulator<TorNetwork>, Vec<CircId>) {
        assert!(self.circuits > 0, "need at least one circuit");
        assert!(
            self.relays_per_circuit >= 1,
            "need at least one relay per circuit"
        );
        let master = SimRng::seed_from(seed);
        let mut directory = Directory::generate(&self.directory, &master.derive("directory"));
        let relay_count = directory.len();
        let mut endpoint_rng = master.derive("endpoints");
        let mut jitter_rng = master.derive("start-jitter");
        // The epoch schedule is drawn from its own labelled stream, and
        // that stream is only derived when epochs are configured — a
        // no-epoch build consumes exactly the randomness it always did.
        let epoch_schedule = self.epochs.as_ref().map(|spec| {
            let mut rng = master.derive("epochs");
            spec.resolve(relay_count, self.relays_per_circuit, &mut rng)
        });

        // Leaves: all relays first, then client/server pairs per circuit.
        // Every provisioned relay keeps its access link — epochs only
        // toggle liveness, never the physical topology.
        let mut accesses: Vec<AccessConfig> = directory
            .iter_specs()
            .map(|r| AccessConfig {
                rate: r.bandwidth,
                delay: r.delay,
            })
            .collect();
        for _ in 0..self.circuits {
            for _ in 0..2 {
                let delay_ms = if self.endpoint_delay_ms.1 > self.endpoint_delay_ms.0 {
                    endpoint_rng.range_f64(self.endpoint_delay_ms.0, self.endpoint_delay_ms.1)
                } else {
                    self.endpoint_delay_ms.0
                };
                accesses.push(AccessConfig {
                    rate: self.endpoint_rate,
                    delay: SimDuration::from_secs_f64(delay_ms / 1e3),
                });
            }
        }

        let mut net: Net<crate::wire::WireFrame> = Net::new();
        let star = Star::build(&mut net, &accesses);
        let mut router = Router::new();
        for (i, &leaf) in star.leaves.iter().enumerate() {
            // Frames leaving a leaf always take its uplink (a uniform
            // route — O(1) instead of O(leaves) per leaf); the hub picks
            // the destination's downlink.
            router.install_uniform(leaf, star.up[i]);
            router.install(star.hub, leaf, star.down[i]);
        }

        let mut world = TorNetwork::new(
            net,
            router,
            self.world,
            factory,
            master.derive("handshakes"),
        );
        // Size the payload pool from the scenario: with many concurrent
        // circuits the default idle cap would sit below the steady-state
        // in-flight population and thrash alloc/free.
        world.set_payload_pool_cap(crate::pool::PayloadPool::scenario_max_idle(self.circuits));
        let relay_overlays: Vec<_> = (0..relay_count)
            .map(|i| world.add_overlay(star.leaves[i], NodeRole::Relay, &format!("relay-{i}")))
            .collect();
        // The initial standby pool goes dark before placement installs,
        // so the first circuits already select from the live set only.
        if let Some(sched) = &epoch_schedule {
            for &r in &sched.initial_dark {
                directory.set_live(r as usize, false);
            }
        }
        // The placement seam: the network owns the relay store, the
        // policy, and the "paths" stream, so both the initial placement
        // below and churn-driven rebuilds select through the same
        // policy — each placement seeing the load left by its
        // predecessors.
        world.install_placement_with_sampler(
            directory,
            relay_overlays,
            self.selection.clone(),
            master.derive("paths"),
            self.sampler,
        );
        // Like epochs, the fault schedule draws from a stream that is
        // only derived when faults are configured — a fault-free build
        // consumes exactly the randomness it always did. Victims come
        // from the initially-live set so faults hit relays circuits can
        // actually cross.
        let relay_rates: Vec<Bandwidth> = accesses[..relay_count].iter().map(|a| a.rate).collect();
        let fault_schedule = self.faults.as_ref().map(|spec| {
            let frng = master.derive("faults");
            let mut srng = frng.derive("schedule");
            let dark: Vec<bool> = {
                let mut v = vec![false; relay_count];
                if let Some(sched) = &epoch_schedule {
                    for &r in &sched.initial_dark {
                        v[r as usize] = true;
                    }
                }
                v
            };
            let candidates: Vec<u32> = (0..relay_count as u32)
                .filter(|&r| !dark[r as usize])
                .collect();
            let schedule = spec.resolve(&candidates, &mut srng);
            world.install_faults(*spec, frng.derive("backoff"));
            schedule
        });

        let mut circuits = Vec::with_capacity(self.circuits);
        let mut sim_events: Vec<(SimTime, CircId)> = Vec::with_capacity(self.circuits);
        for c in 0..self.circuits {
            let client_leaf = star.leaves[relay_count + 2 * c];
            let server_leaf = star.leaves[relay_count + 2 * c + 1];
            let client = world.add_overlay(client_leaf, NodeRole::Client, &format!("client-{c}"));
            let server = world.add_overlay(server_leaf, NodeRole::Server, &format!("server-{c}"));
            let picks = world.select_relays(self.relays_per_circuit);
            let mut path = Vec::with_capacity(self.relays_per_circuit + 2);
            path.push(client);
            path.extend(picks);
            path.push(server);
            let mut wl_rng = master.derive_indexed("workload", c as u64);
            let workload = self
                .workload
                .resolve(self.file_bytes, &mut wl_rng, |bytes| world.add_flow(bytes));
            let circ = world.add_circuit_with_workload(path, workload, 0);
            let start = if self.start_jitter_ms > 0.0 {
                SimTime::from_secs_f64(jitter_rng.range_f64(0.0, self.start_jitter_ms) / 1e3)
            } else {
                SimTime::ZERO
            };
            sim_events.push((start, circ));
            circuits.push(circ);
        }

        if let Some(sched) = epoch_schedule {
            world.install_epochs(sched.deltas);
        }
        let mut sim = Simulator::with_queue(world, queue);
        for (t, circ) in sim_events {
            sim.schedule_at(t, TorEvent::StartCircuit(circ));
        }
        if let Some(spec) = &self.epochs {
            let interval = spec.interval();
            for i in 0..spec.epochs {
                sim.schedule_at(
                    SimTime::ZERO + interval * u64::from(i + 1),
                    TorEvent::Epoch(i),
                );
            }
        }
        if let Some(schedule) = fault_schedule {
            let spec = self.faults.as_ref().expect("schedule implies spec");
            for (at, relay) in schedule.crashes {
                sim.schedule_at(SimTime::ZERO + at, TorEvent::RelayCrash { relay });
            }
            for s in schedule.stalls {
                // A stalled relay's access link (both directions) drops
                // to `rate / stall_factor`, restoring at the end of the
                // stall — the "slow relay" failure mode, recoverable
                // without blame.
                let r = s.relay as usize;
                let full = relay_rates[r];
                let throttled = Bandwidth::from_bps(
                    ((full.bps() as f64 / spec.stall_factor.max(1.0)).floor() as u64).max(1),
                );
                for &link in &[star.up[r], star.down[r]] {
                    sim.schedule_at(
                        SimTime::ZERO + s.at,
                        TorEvent::SetLinkRate {
                            link,
                            rate: throttled,
                        },
                    );
                    sim.schedule_at(
                        SimTime::ZERO + s.at + s.duration,
                        TorEvent::SetLinkRate { link, rate: full },
                    );
                }
            }
        }
        (sim, circuits)
    }
}

/// The paper's "without CircuitStart" baseline: BackTap's delay-based
/// controller with the traditional halving exit on every forward hop;
/// backward (control-only) hops are unwindowed.
pub fn baseline_factory(cfg: CcConfig) -> CcFactory {
    Box::new(move |ctx| match ctx.direction {
        Direction::Forward => Box::new(DelayCc::with_ramp(
            "backtap-classic",
            cfg,
            Box::new(backtap::cc::HalvingExit),
        )),
        Direction::Backward => Box::new(UnlimitedCc),
    })
}

/// JumpStart-style factory: no ramp-up at all, the forward window opens at
/// `jump_cwnd` immediately (the paper cites this family as unsuitable for
/// multi-hop overlays — used as an ablation baseline).
pub fn jumpstart_factory(cfg: CcConfig, jump_cwnd: u32) -> CcFactory {
    Box::new(move |ctx| match ctx.direction {
        Direction::Forward => Box::new(DelayCc::without_ramp("jumpstart", cfg, jump_cwnd)),
        Direction::Backward => Box::new(UnlimitedCc),
    })
}

/// Fixed per-hop windows (vanilla-Tor-flavoured ablation).
pub fn fixed_window_factory(window: u32) -> CcFactory {
    Box::new(move |ctx| match ctx.direction {
        Direction::Forward => Box::new(backtap::cc::FixedWindowCc::new(window)),
        Direction::Backward => Box::new(UnlimitedCc),
    })
}

/// No windows anywhere — relays forward as fast as links allow. Useful to
/// measure raw path capacity and as a worst-case queueing baseline.
pub fn unlimited_factory() -> CcFactory {
    Box::new(|_| Box::new(UnlimitedCc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalSpec, ChurnSpec};
    use simcore::sim::StopReason;

    fn hop(mbps: u64, delay_ms: u64) -> LinkConfig {
        LinkConfig::new(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis(delay_ms),
        )
    }

    /// Full-stack smoke test: 2-relay circuit, fixed windows, small file.
    #[test]
    fn path_transfer_completes_with_fixed_windows() {
        let scenario = PathScenario {
            hops: vec![hop(10, 2), hop(10, 2), hop(10, 2)],
            file_bytes: 10_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(8), 1);
        let circ = h.circ;
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        let r = world.result_of(circ);
        assert!(r.completed, "transfer must complete");
        assert_eq!(r.bytes_delivered, 10_000);
        assert_eq!(r.cells_delivered, 21); // ceil(10000/496)
        assert_eq!(r.payload_errors, 0);
        assert_eq!(world.stats().protocol_errors, 0);
        assert_eq!(world.net().total_drops(), 0);
        assert!(r.transfer_time().unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn path_transfer_with_delay_cc_baseline() {
        let scenario = PathScenario {
            hops: vec![hop(50, 2), hop(8, 5), hop(50, 2), hop(50, 2)],
            file_bytes: 200_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(baseline_factory(CcConfig::default()), 7);
        let circ = h.circ;
        sim.run();
        let world = sim.world();
        let r = world.result_of(circ);
        assert!(r.completed);
        assert_eq!(r.bytes_delivered, 200_000);
        assert_eq!(r.payload_errors, 0);
        assert_eq!(world.stats().protocol_errors, 0);
        // The client ramped: its cwnd trace must contain a doubling.
        let trace = world.source_cwnd_trace(circ).expect("tracing enabled");
        assert!(trace.len() >= 2, "cwnd must have changed during ramp-up");
        assert_eq!(trace[0].1, 2, "initial window is 2 cells");
    }

    #[test]
    fn single_relay_minimal_path() {
        let scenario = PathScenario {
            hops: vec![hop(10, 1), hop(10, 1)],
            file_bytes: 496,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(4), 3);
        let circ = h.circ;
        sim.run();
        let r = sim.world().result_of(circ);
        assert!(r.completed);
        assert_eq!(r.cells_delivered, 1);
        assert_eq!(sim.world().stats().protocol_errors, 0);
    }

    #[test]
    fn long_path_five_relays() {
        let scenario = PathScenario {
            hops: vec![hop(20, 1); 6],
            file_bytes: 50_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(baseline_factory(CcConfig::default()), 5);
        let circ = h.circ;
        sim.run();
        let r = sim.world().result_of(circ);
        assert!(r.completed);
        assert_eq!(r.bytes_delivered, 50_000);
        assert_eq!(sim.world().stats().protocol_errors, 0);
    }

    #[test]
    fn data_path_reuses_payload_buffers() {
        // The zero-alloc steady state: across a multi-thousand-cell
        // transfer, fresh payload allocations stay bounded by the cells
        // in flight (window-sized), with everything else served by pool
        // reuse. Guards the pool plumbing against a silent revert to
        // one-allocation-per-cell.
        let scenario = PathScenario {
            hops: vec![hop(50, 2), hop(50, 2), hop(50, 2)],
            file_bytes: 1 << 20, // 2115 DATA cells
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(32), 4);
        sim.run();
        let world = sim.world();
        let r = world.result_of(h.circ);
        assert!(r.completed);
        let (allocated, reused) = world.payload_pool().stats();
        assert_eq!(
            allocated + reused,
            r.cells_delivered,
            "one acquire per DATA cell"
        );
        assert!(
            allocated <= 64,
            "fresh allocations ({allocated}) must stay window-bounded, not per-cell"
        );
        assert!(
            reused > r.cells_delivered / 2,
            "most payloads must come from pool reuse (got {reused})"
        );
    }

    #[test]
    fn relay_queue_is_bounded_by_backpressure() {
        // Slow middle link: the first relay's forward queue must stay
        // bounded by the client's window, not grow with the file.
        let scenario = PathScenario {
            hops: vec![hop(100, 1), hop(5, 5), hop(100, 1)],
            file_bytes: 300_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(10), 2);
        let circ = h.circ;
        sim.run();
        let world = sim.world();
        let r = world.result_of(circ);
        assert!(r.completed);
        let relay1 = world.circuit_info(circ).path[1];
        let hwm = world
            .fwd_queue_hwm(relay1, circ)
            .expect("relay forward queue");
        assert!(
            hwm <= 10,
            "queue high-water {hwm} must be bounded by the 10-cell window"
        );
    }

    #[test]
    fn star_two_circuits_complete() {
        let scenario = StarScenario {
            circuits: 2,
            file_bytes: 30_000,
            directory: DirectoryConfig {
                relays: 6,
                bandwidth_mbps: (20.0, 50.0),
                delay_ms: (2.0, 5.0),
            },
            ..Default::default()
        };
        let (mut sim, circuits) = scenario.build(baseline_factory(CcConfig::default()), 11);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        for c in circuits {
            let r = world.result_of(c);
            assert!(r.completed, "{c} incomplete");
            assert_eq!(r.bytes_delivered, 30_000);
            assert_eq!(r.payload_errors, 0);
        }
        assert_eq!(world.stats().protocol_errors, 0);
        assert_eq!(world.net().total_drops(), 0);
    }

    #[test]
    fn star_circuits_share_relays_fairly_enough_to_finish() {
        // Tiny relay pool forces sharing.
        let scenario = StarScenario {
            circuits: 4,
            relays_per_circuit: 2,
            file_bytes: 20_000,
            directory: DirectoryConfig {
                relays: 3,
                bandwidth_mbps: (10.0, 20.0),
                delay_ms: (2.0, 4.0),
            },
            ..Default::default()
        };
        let (mut sim, circuits) = scenario.build(baseline_factory(CcConfig::default()), 13);
        sim.run();
        let world = sim.world();
        for c in circuits {
            assert!(world.result_of(c).completed);
        }
        assert_eq!(world.stats().protocol_errors, 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let scenario = PathScenario {
            hops: vec![hop(30, 2), hop(10, 3), hop(30, 2)],
            file_bytes: 100_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let run = |seed| {
            let (mut sim, h) = scenario.build(baseline_factory(CcConfig::default()), seed);
            let circ = h.circ;
            sim.run();
            let w = sim.world();
            (
                w.result_of(circ).last_byte_at,
                w.source_cwnd_trace(circ).unwrap().to_vec(),
                w.stats().cells_sent,
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce identical runs");
        let c = run(43);
        assert_eq!(a.0.is_some(), c.0.is_some());
    }

    #[test]
    fn jumpstart_overshoots_but_completes() {
        let scenario = PathScenario {
            hops: vec![hop(50, 2), hop(8, 5), hop(50, 2)],
            file_bytes: 150_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(jumpstart_factory(CcConfig::default(), 100), 9);
        let circ = h.circ;
        sim.run();
        let world = sim.world();
        assert!(world.result_of(circ).completed);
        // With a 100-cell initial window everywhere, the burst piles up in
        // front of the bottleneck link (hop 1) — the behaviour the paper
        // warns about. Queueing lives in the link's round-robin scheduler
        // (links take one frame at a time).
        let hwm = world.sched_backlog_hwm(h.fwd_links[1]);
        assert!(
            hwm > 30,
            "jumpstart should pile up a large queue, got {hwm}"
        );
    }

    #[test]
    fn unlimited_factory_moves_data() {
        let scenario = PathScenario {
            hops: vec![hop(10, 1), hop(10, 1)],
            file_bytes: 5_000,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(unlimited_factory(), 21);
        let circ = h.circ;
        sim.run();
        assert!(sim.world().result_of(circ).completed);
    }

    #[test]
    fn teardown_destroys_circuit_state() {
        let scenario = PathScenario {
            hops: vec![hop(10, 1), hop(10, 1), hop(10, 1)],
            file_bytes: 4_960,
            world: WorldConfig::default(),
            ..Default::default()
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(4), 17);
        let circ = h.circ;
        sim.run();
        assert!(sim.world().result_of(circ).completed);
        let slots_before = sim.world().link_route_slots();
        // Tear down after completion; the DESTROY wave and its echo must
        // propagate silently and reclaim every participation.
        sim.schedule_in(SimDuration::from_millis(1), TorEvent::Teardown(circ));
        sim.run();
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0);
        let path = world.circuit_info(circ).path.clone();
        for &n in &path {
            assert!(
                world.node(n).circuit(circ).is_none(),
                "{n} must reclaim the torn-down circuit's slot"
            );
            assert_eq!(world.node(n).free_slot_count(), 1);
        }
        // One DESTROY per hop per wave direction: 3 hops, 2 waves.
        assert_eq!(world.stats().destroys_sent, 2 * (path.len() as u64 - 1));
        assert_eq!(world.stats().slots_reclaimed, path.len() as u64);
        // Both ends of every link-local id were cleared.
        assert_eq!(world.link_route_slots(), slots_before);
        assert_eq!(world.free_link_routes(), path.len() - 1);
        // Completed flows do not trigger a rebuild.
        assert_eq!(world.stats().rebuilds, 0);
        assert!(world.flows()[0].complete());
    }

    #[test]
    fn multi_stream_circuit_delivers_every_flow() {
        let scenario = PathScenario {
            hops: vec![hop(20, 2), hop(20, 2), hop(20, 2)],
            file_bytes: 60_000,
            workload: WorkloadSpec {
                streams_per_circuit: 3,
                arrival: ArrivalSpec::UniformJitter { max_ms: 20.0 },
                churn: None,
            },
            faults: None,
            world: WorldConfig::default(),
        };
        let (mut sim, h) = scenario.build(fixed_window_factory(8), 5);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0);
        assert_eq!(world.flows().len(), 3);
        let mut total = 0;
        for f in world.flows() {
            assert!(f.complete(), "every flow must finish");
            assert!(f.completion_time().unwrap() > SimDuration::ZERO);
            total += f.delivered;
        }
        assert_eq!(total, 60_000, "no byte lost or duplicated");
        // The aggregate circuit result still sees the union.
        let r = world.result_of(h.circ);
        assert!(r.completed, "all ENDs consumed");
        assert_eq!(r.bytes_delivered, 60_000);
        assert_eq!(r.payload_errors, 0);
        let cdf = world.flow_completion_cdf().expect("3 completed flows");
        assert_eq!(cdf.len(), 3);
    }

    #[test]
    fn churn_rebuilds_and_conserves_bytes() {
        // Teardown fires mid-transfer twice; the flows must still
        // deliver every byte, and the slabs must not leak slots.
        let scenario = PathScenario {
            hops: vec![hop(10, 2), hop(10, 2), hop(10, 2)],
            file_bytes: 120_000,
            workload: WorkloadSpec {
                streams_per_circuit: 2,
                arrival: ArrivalSpec::Immediate,
                churn: Some(ChurnSpec {
                    teardown_after_ms: (30.0, 60.0),
                    rebuild_delay_ms: 5.0,
                    cycles: 2,
                }),
            },
            faults: None,
            world: WorldConfig::default(),
        };
        let (mut sim, h) = scenario.build(baseline_factory(CcConfig::default()), 23);
        let report = sim.run();
        assert_eq!(report.reason, StopReason::QueueEmpty);
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0);
        assert_eq!(world.stats().rebuilds, 2, "two churn cycles");
        assert_eq!(world.circuit_count(), 3, "one record per incarnation");
        let mut total = 0;
        for f in world.flows() {
            assert!(f.complete(), "churn must not strand a flow");
            assert_eq!(f.carried_by, 3, "each flow rode every incarnation");
            total += f.delivered;
        }
        assert_eq!(total, 120_000);
        // Mid-flight teardown drops in-flight cells; the rebuilt circuit
        // re-sends them, so the wire saw *more* cells than the payload
        // needs — but the flows never over-count.
        assert!(world.stats().cells_dropped_closed > 0 || world.stats().cells_drained > 0);
        // Slot reclamation: only the final incarnation's participations
        // remain; every torn-down incarnation's slots were reused.
        for &n in &world.circuit_info(h.circ).path {
            let node = world.node(n);
            assert_eq!(node.circuit_count(), 1, "only the live incarnation");
            assert_eq!(node.slab_len(), 1, "rebuilds reuse reclaimed slots");
        }
        assert_eq!(world.stats().slots_reclaimed, 2 * 4);
    }
}
