//! Benchmarks for the cell codec and onion layering (P1 in DESIGN.md §5)
//! — the per-cell costs a real relay implementation would pay on its fast
//! path.

use cs_bench::harness::bench_throughput;
use torcell::prelude::*;

fn bench_cell_codec() {
    let cell = Cell::relay_data(CircuitId(7), StreamId(1), vec![0xAB; RELAY_DATA_MAX]);
    let wire = encode_cell(&cell);

    bench_throughput("torcell/codec/encode_data_cell", CELL_LEN as u64, || {
        std::hint::black_box(encode_cell(std::hint::black_box(&cell)));
    });
    bench_throughput("torcell/codec/decode_data_cell", CELL_LEN as u64, || {
        std::hint::black_box(decode_cell(std::hint::black_box(&wire)).expect("valid"));
    });
}

fn bench_feedback_codec() {
    let fb = Feedback {
        circ: CircuitId(9),
        seq: 123_456,
    };
    let wire = encode_feedback(&fb);
    bench_throughput("torcell/feedback/encode", FEEDBACK_WIRE_LEN as u64, || {
        std::hint::black_box(encode_feedback(std::hint::black_box(&fb)));
    });
    bench_throughput("torcell/feedback/decode", FEEDBACK_WIRE_LEN as u64, || {
        std::hint::black_box(decode_feedback(std::hint::black_box(&wire)).expect("valid"));
    });
}

fn bench_onion_layers() {
    bench_throughput(
        "torcell/onion/wrap_3_hops_and_strip",
        RELAY_DATA_MAX as u64,
        || {
            let keys = [LayerKey(11), LayerKey(22), LayerKey(33)];
            let mut route = OnionRoute::new();
            let mut relays: Vec<RelayCrypt> = keys
                .iter()
                .map(|&k| {
                    route.push_layer(k);
                    RelayCrypt::new(k)
                })
                .collect();
            let mut cell = RelayCell::data(StreamId(1), vec![0x5A; RELAY_DATA_MAX]);
            route.wrap_for_hop(2, &mut cell);
            for relay in &mut relays {
                if relay.strip_forward(&mut cell) {
                    break;
                }
            }
            assert!(cell.digest_ok());
        },
    );
}

fn main() {
    bench_cell_codec();
    bench_feedback_codec();
    bench_onion_layers();
}
