//! Figure 1 (lower panel), scaled interactively: concurrent circuits over
//! a randomly generated relay network in a star topology; CDF of
//! time-to-last-byte with vs without CircuitStart.
//!
//! The full 50-circuit, 3-repetition preset is what the bench binary
//! runs; this example defaults to a faster 15-circuit single run so it
//! finishes in seconds in debug builds.
//!
//! ```text
//! cargo run --release --example star_download              # 15 circuits
//! cargo run --release --example star_download -- 50 3      # the paper's scale
//! ```

use circuitstart::prelude::*;
use simstats::ascii::{plot_lines, PlotConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let circuits: usize = args
        .next()
        .map(|a| a.parse().expect("circuit count"))
        .unwrap_or(15);
    let repetitions: u32 = args
        .next()
        .map(|a| a.parse().expect("repetitions"))
        .unwrap_or(1);

    let mut config = fig1_cdf();
    config.star.circuits = circuits;
    config.repetitions = repetitions;

    println!(
        "running {} circuits × {} repetition(s) over {} relays, 1 MiB each …",
        circuits, repetitions, config.star.directory.relays
    );
    let report = run_cdf(&config);

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for s in &report.series {
        println!(
            "{:>14}: median {:.3} s, p90 {:.3} s, worst {:.3} s ({} samples, {} incomplete)",
            s.algorithm_key,
            s.cdf.median(),
            s.cdf.quantile(0.9),
            s.cdf.max(),
            s.cdf.len(),
            s.incomplete,
        );
    }
    let cs = report.get("circuitstart").expect("series exists");
    let classic = report.get("classic").expect("series exists");
    let gain = cs.cdf.max_quantile_improvement_over(&classic.cdf);
    println!("largest quantile improvement of CircuitStart: {gain:.3} s");

    series.push(("circuitstart", cs.cdf.points()));
    series.push(("without circuitstart", classic.cdf.points()));

    let plot = plot_lines(
        &series,
        &PlotConfig {
            width: 90,
            height: 22,
            title: "cumulative distribution vs time to last byte [s]".to_string(),
            x_label: "time to last byte [s]".to_string(),
            y_label: "cumulative fraction".to_string(),
        },
    );
    println!("\n{plot}");
    println!("(compare with Figure 1, lower panel, of the paper)");
}
