//! Topology builders.
//!
//! Three canonical shapes cover every experiment in the paper:
//!
//! * [`Path`] — a chain `n0 — n1 — … — nk`, used for the single-circuit
//!   cwnd traces (Figure 1 upper panels) where one hop is the bottleneck.
//! * [`Star`] — every node hangs off a central switch by its own access
//!   link; this is how nstor models "the Internet" between Tor relays
//!   (Figure 1 lower panel). The switch itself is infinitely fast — only
//!   access links constrain traffic.
//! * [`Dumbbell`] — n sources and n sinks sharing one bottleneck link,
//!   used by transport-fairness tests and ablations.

use simcore::time::SimDuration;

use crate::bandwidth::Bandwidth;
use crate::frame::Frame;
use crate::link::{LinkConfig, LinkId};
use crate::net::{Net, NodeId};

/// A chain of nodes with duplex links between neighbours.
#[derive(Clone, Debug)]
pub struct Path {
    /// Nodes in chain order: `nodes[0]` is the left end.
    pub nodes: Vec<NodeId>,
    /// `fwd[i]` carries traffic `nodes[i] → nodes[i+1]`.
    pub fwd: Vec<LinkId>,
    /// `rev[i]` carries traffic `nodes[i+1] → nodes[i]`.
    pub rev: Vec<LinkId>,
}

impl Path {
    /// Builds a chain with one [`LinkConfig`] per hop (applied to both
    /// directions of that hop).
    ///
    /// # Panics
    ///
    /// Panics if `hop_configs` is empty.
    pub fn build<F: Frame>(net: &mut Net<F>, hop_configs: &[LinkConfig]) -> Path {
        assert!(!hop_configs.is_empty(), "a path needs at least one hop");
        let nodes: Vec<NodeId> = (0..=hop_configs.len())
            .map(|i| net.add_node(&format!("path-{i}")))
            .collect();
        let mut fwd = Vec::with_capacity(hop_configs.len());
        let mut rev = Vec::with_capacity(hop_configs.len());
        for (i, cfg) in hop_configs.iter().enumerate() {
            let (f, r) = net.add_duplex(nodes[i], nodes[i + 1], *cfg);
            fwd.push(f);
            rev.push(r);
        }
        Path { nodes, fwd, rev }
    }

    /// Number of hops (links), one less than the number of nodes.
    pub fn hop_count(&self) -> usize {
        self.fwd.len()
    }

    /// The position of `node` in the chain, if it belongs to it.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// The forward link leaving `node` (toward higher indices), if any.
    pub fn fwd_link_from(&self, node: NodeId) -> Option<LinkId> {
        let pos = self.position(node)?;
        self.fwd.get(pos).copied()
    }

    /// The reverse link leaving `node` (toward lower indices), if any.
    pub fn rev_link_from(&self, node: NodeId) -> Option<LinkId> {
        let pos = self.position(node)?;
        pos.checked_sub(1).map(|p| self.rev[p])
    }
}

/// Per-leaf access parameters for a [`Star`].
#[derive(Clone, Copy, Debug)]
pub struct AccessConfig {
    /// Rate of the leaf's access link (both directions).
    pub rate: Bandwidth,
    /// One-way propagation delay of the access link.
    pub delay: SimDuration,
}

/// A star: leaves connected to a central switch by individual access links.
///
/// The switch node forwards instantly (zero rate limit, zero delay is
/// modelled by the *caller* re-sending on the downlink in the same event);
/// all queueing happens on the access links, which is exactly nstor's
/// network abstraction.
#[derive(Clone, Debug)]
pub struct Star {
    /// The central switch.
    pub hub: NodeId,
    /// Leaf nodes, in creation order.
    pub leaves: Vec<NodeId>,
    /// `up[i]` carries `leaves[i] → hub`.
    pub up: Vec<LinkId>,
    /// `down[i]` carries `hub → leaves[i]`.
    pub down: Vec<LinkId>,
}

impl Star {
    /// Builds a star with the given per-leaf access configurations.
    /// Access-link egress queues are unbounded (backpressure keeps them
    /// finite; experiments assert zero drops).
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty.
    pub fn build<F: Frame>(net: &mut Net<F>, accesses: &[AccessConfig]) -> Star {
        assert!(!accesses.is_empty(), "a star needs at least one leaf");
        let hub = net.add_node("hub");
        let mut leaves = Vec::with_capacity(accesses.len());
        let mut up = Vec::with_capacity(accesses.len());
        let mut down = Vec::with_capacity(accesses.len());
        for (i, acc) in accesses.iter().enumerate() {
            let leaf = net.add_node(&format!("leaf-{i}"));
            let cfg = LinkConfig::new(acc.rate, acc.delay);
            up.push(net.add_link(leaf, hub, cfg));
            down.push(net.add_link(hub, leaf, cfg));
            leaves.push(leaf);
        }
        Star {
            hub,
            leaves,
            up,
            down,
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The index of a leaf node, if it is one.
    pub fn leaf_index(&self, node: NodeId) -> Option<usize> {
        self.leaves.iter().position(|&n| n == node)
    }

    /// The uplink (`leaf → hub`) of a leaf node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf of this star.
    pub fn uplink_of(&self, node: NodeId) -> LinkId {
        self.up[self
            .leaf_index(node)
            .expect("node is not a leaf of this star")]
    }

    /// The downlink (`hub → leaf`) of a leaf node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf of this star.
    pub fn downlink_of(&self, node: NodeId) -> LinkId {
        self.down[self
            .leaf_index(node)
            .expect("node is not a leaf of this star")]
    }
}

/// A dumbbell: `n` sources, `n` sinks, one shared bottleneck.
#[derive(Clone, Debug)]
pub struct Dumbbell {
    /// Source nodes (left side).
    pub sources: Vec<NodeId>,
    /// Sink nodes (right side).
    pub sinks: Vec<NodeId>,
    /// Left aggregation router.
    pub left_router: NodeId,
    /// Right aggregation router.
    pub right_router: NodeId,
    /// `source_links[i]` carries `sources[i] → left_router` (with reverse
    /// as the next id).
    pub source_links: Vec<(LinkId, LinkId)>,
    /// `sink_links[i]` carries `right_router → sinks[i]` (with reverse).
    pub sink_links: Vec<(LinkId, LinkId)>,
    /// Bottleneck `left_router → right_router`.
    pub bottleneck_fwd: LinkId,
    /// Bottleneck reverse direction.
    pub bottleneck_rev: LinkId,
}

impl Dumbbell {
    /// Builds a dumbbell with `n` source/sink pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build<F: Frame>(
        net: &mut Net<F>,
        n: usize,
        edge: LinkConfig,
        bottleneck: LinkConfig,
    ) -> Dumbbell {
        assert!(n > 0, "a dumbbell needs at least one flow");
        let left_router = net.add_node("left-router");
        let right_router = net.add_node("right-router");
        let (bottleneck_fwd, bottleneck_rev) =
            net.add_duplex(left_router, right_router, bottleneck);
        let mut sources = Vec::with_capacity(n);
        let mut sinks = Vec::with_capacity(n);
        let mut source_links = Vec::with_capacity(n);
        let mut sink_links = Vec::with_capacity(n);
        for i in 0..n {
            let s = net.add_node(&format!("src-{i}"));
            let t = net.add_node(&format!("dst-{i}"));
            source_links.push(net.add_duplex(s, left_router, edge));
            sink_links.push(net.add_duplex(right_router, t, edge));
            sources.push(s);
            sinks.push(t);
        }
        Dumbbell {
            sources,
            sinks,
            left_router,
            right_router,
            source_links,
            sink_links,
            bottleneck_fwd,
            bottleneck_rev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::RawFrame;

    fn cfg(mbps: u64, delay_ms: u64) -> LinkConfig {
        LinkConfig::new(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis(delay_ms),
        )
    }

    #[test]
    fn path_structure() {
        let mut net: Net<RawFrame> = Net::new();
        let p = Path::build(&mut net, &[cfg(10, 1), cfg(5, 2), cfg(10, 1)]);
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 6);
        // fwd[i] runs nodes[i] → nodes[i+1]
        for i in 0..3 {
            assert_eq!(net.link_ends(p.fwd[i]), (p.nodes[i], p.nodes[i + 1]));
            assert_eq!(net.link_ends(p.rev[i]), (p.nodes[i + 1], p.nodes[i]));
        }
        assert_eq!(net.link_config(p.fwd[1]).rate, Bandwidth::from_mbps(5));
    }

    #[test]
    fn path_link_lookups() {
        let mut net: Net<RawFrame> = Net::new();
        let p = Path::build(&mut net, &[cfg(10, 1), cfg(10, 1)]);
        let (a, b, c) = (p.nodes[0], p.nodes[1], p.nodes[2]);
        assert_eq!(p.position(b), Some(1));
        assert_eq!(p.fwd_link_from(a), Some(p.fwd[0]));
        assert_eq!(p.fwd_link_from(b), Some(p.fwd[1]));
        assert_eq!(p.fwd_link_from(c), None); // right end has no fwd
        assert_eq!(p.rev_link_from(a), None); // left end has no rev
        assert_eq!(p.rev_link_from(c), Some(p.rev[1]));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_rejected() {
        let mut net: Net<RawFrame> = Net::new();
        let _ = Path::build(&mut net, &[]);
    }

    #[test]
    fn star_structure() {
        let mut net: Net<RawFrame> = Net::new();
        let acc = AccessConfig {
            rate: Bandwidth::from_mbps(20),
            delay: SimDuration::from_millis(10),
        };
        let s = Star::build(&mut net, &[acc, acc, acc]);
        assert_eq!(s.leaf_count(), 3);
        assert_eq!(net.node_count(), 4); // hub + 3 leaves
        assert_eq!(net.link_count(), 6);
        for i in 0..3 {
            assert_eq!(net.link_ends(s.up[i]), (s.leaves[i], s.hub));
            assert_eq!(net.link_ends(s.down[i]), (s.hub, s.leaves[i]));
        }
        let leaf1 = s.leaves[1];
        assert_eq!(s.leaf_index(leaf1), Some(1));
        assert_eq!(s.uplink_of(leaf1), s.up[1]);
        assert_eq!(s.downlink_of(leaf1), s.down[1]);
        assert_eq!(s.leaf_index(s.hub), None);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn star_uplink_of_hub_panics() {
        let mut net: Net<RawFrame> = Net::new();
        let acc = AccessConfig {
            rate: Bandwidth::from_mbps(20),
            delay: SimDuration::ZERO,
        };
        let s = Star::build(&mut net, &[acc]);
        let _ = s.uplink_of(s.hub);
    }

    #[test]
    fn star_heterogeneous_access_rates() {
        let mut net: Net<RawFrame> = Net::new();
        let mk = |mbps| AccessConfig {
            rate: Bandwidth::from_mbps(mbps),
            delay: SimDuration::ZERO,
        };
        let s = Star::build(&mut net, &[mk(10), mk(50)]);
        assert_eq!(net.link_config(s.up[0]).rate, Bandwidth::from_mbps(10));
        assert_eq!(net.link_config(s.down[1]).rate, Bandwidth::from_mbps(50));
    }

    #[test]
    fn dumbbell_structure() {
        let mut net: Net<RawFrame> = Net::new();
        let d = Dumbbell::build(&mut net, 2, cfg(100, 1), cfg(10, 5));
        assert_eq!(d.sources.len(), 2);
        assert_eq!(d.sinks.len(), 2);
        // 2 routers + 2 sources + 2 sinks
        assert_eq!(net.node_count(), 6);
        // bottleneck duplex + 2 source duplex + 2 sink duplex = 10 simplex
        assert_eq!(net.link_count(), 10);
        assert_eq!(
            net.link_ends(d.bottleneck_fwd),
            (d.left_router, d.right_router)
        );
        assert_eq!(
            net.link_config(d.bottleneck_fwd).rate,
            Bandwidth::from_mbps(10)
        );
        assert_eq!(
            net.link_ends(d.source_links[0].0),
            (d.sources[0], d.left_router)
        );
        assert_eq!(
            net.link_ends(d.sink_links[1].0),
            (d.right_router, d.sinks[1])
        );
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_dumbbell_rejected() {
        let mut net: Net<RawFrame> = Net::new();
        let _ = Dumbbell::build(&mut net, 0, cfg(1, 0), cfg(1, 0));
    }
}
