// cs-lint-fixture: path = "crates/torcell/src/badprint.rs"
use std::fmt::Write as _;

fn report(cells: u64) {
    println!("cells: {cells}"); //~ no-println-in-lib
    eprintln!("warning"); //~ no-println-in-lib
    let _ = dbg!(cells); //~ no-println-in-lib
}

// Formatting into a buffer is not stdout.
fn render(cells: u64) -> String {
    let mut out = String::new();
    let _ = write!(out, "cells: {cells}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_print_freely() {
        println!("diagnostic output on failure");
    }
}
