//! A hand-rolled Rust lexer, sufficient for token-stream linting.
//!
//! This is not a full grammar: it produces a flat token stream with
//! source positions, which is all the rule engine (DESIGN.md §14) needs.
//! What it **must** get exactly right is the boundary between code and
//! non-code, because every lint rule keys off identifier tokens and a
//! violation spelled inside a string or comment must never fire:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** .. */`),
//! * string literals with escapes, multi-line strings, byte strings,
//!   and raw (byte) strings with arbitrary hash fences (`r#"…"#`),
//! * char literals vs. lifetimes (`'a'` vs `'a`), including `'\''` and
//!   non-ASCII chars,
//! * raw identifiers (`r#fn`).
//!
//! Numbers and multi-character operators are tokenized with maximal
//! munch so `+=` and `::` arrive as single tokens the rules can match.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers.
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavor (plain, byte, raw, raw byte).
    StrLit,
    /// Numeric literal, suffix included (`1_000u64`, `0.5`, `0xFF`).
    NumLit,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
    /// `//`-style comment, doc comments included. Text keeps the `//`.
    LineComment,
    /// `/* */`-style comment, nesting and doc forms included.
    BlockComment,
}

/// One lexeme with its position. `start..end` indexes the source text.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Multi-character operators, longest first so maximal munch is a plain
/// prefix scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tracks byte position plus 1-based line/column while scanning.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes ident-continue bytes.
    fn eat_ident(&mut self) {
        while !self.at_end() && is_ident_continue(self.peek(0)) {
            self.bump();
        }
    }

    /// Consumes a quote-delimited literal with `\`-escapes; the opening
    /// quote is already consumed. Stops after the closing quote (or at
    /// end of input on unterminated literals).
    fn eat_escaped_until(&mut self, quote: u8) {
        while !self.at_end() {
            let b = self.peek(0);
            if b == b'\\' {
                self.bump();
                if !self.at_end() {
                    self.bump();
                }
            } else if b == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string body: the cursor sits just after `r##...#"`;
    /// stops after `"` followed by `hashes` `#` bytes.
    fn eat_raw_until(&mut self, hashes: usize) {
        while !self.at_end() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Returns `Some(hashes)` when the bytes at `c.pos + offset` begin a raw
/// string fence `#*"` (zero or more hashes then a quote).
fn raw_fence_at(c: &Cursor<'_>, offset: usize) -> Option<usize> {
    let mut hashes = 0;
    while c.peek(offset + hashes) == b'#' {
        hashes += 1;
    }
    (c.peek(offset + hashes) == b'"').then_some(hashes)
}

/// Lexes `src` and drops comment tokens: the stream the item parser,
/// call graph, and rule matchers all run on. (The engine still lexes
/// with comments once per file — it needs them for annotations — and
/// partitions; this helper serves tests and single-purpose callers.)
pub fn code_tokens(src: &str) -> Vec<Token> {
    lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect()
}

/// Lexes `src` into a flat token stream, comments included.
///
/// Never panics on malformed input: unterminated literals and comments
/// extend to end of input, and unknown bytes become 1-byte punct tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor::new(src);
    let mut out = Vec::with_capacity(src.len() / 6);

    while !c.at_end() {
        let b = c.peek(0);
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        let (start, line, col) = (c.pos, c.line, c.col);
        let kind = match b {
            b'/' if c.peek(1) == b'/' => {
                while !c.at_end() && c.peek(0) != b'\n' {
                    c.bump();
                }
                TokenKind::LineComment
            }
            b'/' if c.peek(1) == b'*' => {
                c.bump_n(2);
                let mut depth = 1usize;
                while !c.at_end() && depth > 0 {
                    if c.peek(0) == b'/' && c.peek(1) == b'*' {
                        depth += 1;
                        c.bump_n(2);
                    } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                        depth -= 1;
                        c.bump_n(2);
                    } else {
                        c.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                c.bump();
                c.eat_escaped_until(b'"');
                TokenKind::StrLit
            }
            b'r' if raw_fence_at(&c, 1).is_some() => {
                // r"..." or r#"..."# raw string. (A raw *identifier*
                // `r#ident` has no quote after the hashes and falls
                // through to the ident arm below.)
                let hashes = raw_fence_at(&c, 1).expect("checked by guard");
                c.bump_n(1 + hashes + 1);
                c.eat_raw_until(hashes);
                TokenKind::StrLit
            }
            b'b' if c.peek(1) == b'"' => {
                c.bump_n(2);
                c.eat_escaped_until(b'"');
                TokenKind::StrLit
            }
            b'b' if c.peek(1) == b'\'' => {
                c.bump_n(2);
                c.eat_escaped_until(b'\'');
                TokenKind::CharLit
            }
            b'b' if c.peek(1) == b'r' && raw_fence_at(&c, 2).is_some() => {
                let hashes = raw_fence_at(&c, 2).expect("checked by guard");
                c.bump_n(2 + hashes + 1);
                c.eat_raw_until(hashes);
                TokenKind::StrLit
            }
            b'\'' => {
                // Char literal or lifetime. After the opening quote:
                //   * `\`  — definitely a char literal (`'\n'`, `'\''`);
                //   * ident-start — consume the ident run; a closing `'`
                //     right after means char (`'a'`), none means
                //     lifetime (`'a`, `'static`, `'_`);
                //   * anything else (digit, punct, non-ASCII byte) — a
                //     char literal like `'é'` or `'('`.
                c.bump();
                if c.peek(0) == b'\\' {
                    c.eat_escaped_until(b'\'');
                    TokenKind::CharLit
                } else if is_ident_start(c.peek(0)) {
                    c.eat_ident();
                    if c.peek(0) == b'\'' {
                        c.bump();
                        TokenKind::CharLit
                    } else {
                        TokenKind::Lifetime
                    }
                } else {
                    c.eat_escaped_until(b'\'');
                    TokenKind::CharLit
                }
            }
            b'r' if c.peek(1) == b'#' && is_ident_start(c.peek(2)) => {
                // Raw identifier `r#fn`.
                c.bump_n(2);
                c.eat_ident();
                TokenKind::Ident
            }
            _ if is_ident_start(b) => {
                c.eat_ident();
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                TokenKind::NumLit
            }
            _ => {
                let rest = &src[c.pos..];
                let munch = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match munch {
                    Some(p) => c.bump_n(p.len()),
                    None => c.bump(),
                }
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: c.pos,
            line,
            col,
        });
    }
    out
}

/// Consumes a numeric literal: int/float, radix prefixes, `_`
/// separators, exponents with signs, and type suffixes. The fraction
/// dot is taken only when a digit follows, so `1..2` and `x.0` lex as
/// expected.
fn lex_number(c: &mut Cursor<'_>) {
    // Integer part (also swallows hex digits, `e`, and suffixes since
    // they are ident-continue bytes).
    c.eat_ident();
    // Fraction: `.` only counts when followed by a digit, otherwise it
    // is a range operator or a method dot.
    if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
        c.bump();
        c.eat_ident();
    }
    // Signed exponent (`1e+5`, `2.5E-3`): the `e` was already consumed
    // by an ident run above; take the sign and digits it left behind.
    if (c.peek(0) == b'+' || c.peek(0) == b'-')
        && matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        && c.peek(1).is_ascii_digit()
    {
        c.bump();
        c.eat_ident();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_text(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r####"let s = r#"Instant::now()"#; let t = r"HashMap";"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(strs, vec![r####"r#"Instant::now()"#"####, r#"r"HashMap""#]);
    }

    #[test]
    fn raw_string_multi_hash_fence() {
        let src = "r##\"a \"# b\"## thread";
        let toks = kinds_and_text(src);
        assert_eq!(toks[0], (TokenKind::StrLit, "r##\"a \"# b\"##".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "thread".to_string()));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("r#fn + r#type"), vec!["r#fn", "r#type"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"b"ab\"c" br#"un"wrap"# b'x' b'\''"###;
        let toks = kinds_and_text(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::StrLit, r#"b"ab\"c""#.to_string()),
                (TokenKind::StrLit, r###"br#"un"wrap"#"###.to_string()),
                (TokenKind::CharLit, "b'x'".to_string()),
                (TokenKind::CharLit, r"b'\''".to_string()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* HashMap */ y */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// `HashMap` example\n//! inner\n/** block doc */\nfn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
        let comments = lex(src)
            .iter()
            .filter(|t| t.kind != TokenKind::Ident)
            .count();
        assert!(comments >= 3);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a u8) -> char { 'a' }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn tricky_char_literals_do_not_desync() {
        // If `'\''` or `'"'` were mis-lexed, the following quote would
        // open a phantom string and swallow the `spawn` ident.
        for src in [
            "let c = '\\''; thread",
            "let c = '\"'; thread",
            "let c = '_'; thread",
        ] {
            assert!(
                idents(src).contains(&"thread".to_string()),
                "desync on {src:?}"
            );
        }
        assert_eq!(idents("let c = 'é'; ok"), vec!["let", "c", "ok"]);
        // `'_` alone is a lifetime.
        let src = "&'_ u8";
        assert_eq!(lex(src)[1].kind, TokenKind::Lifetime);
    }

    #[test]
    fn strings_with_escapes_and_newlines() {
        let src = "let s = \"a\\\"b\nc\"; spawn";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "spawn"]);
        // Line numbers continue correctly after the embedded newline.
        let spawn = lex(src)
            .into_iter()
            .find(|t| t.text(src) == "spawn")
            .expect("spawn token");
        assert_eq!(spawn.line, 2);
    }

    #[test]
    fn numbers_with_dots_suffixes_exponents() {
        for src in ["1.0f64", "0xFF_u8", "1_000", "1e-5", "2.5E+3", "7usize"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src} should be one token, got {toks:?}");
            assert_eq!(toks[0].kind, TokenKind::NumLit);
        }
        // Range and tuple-field dots stay separate.
        let toks = kinds_and_text("1..2");
        assert_eq!(
            toks,
            vec![
                (TokenKind::NumLit, "1".to_string()),
                (TokenKind::Punct, "..".to_string()),
                (TokenKind::NumLit, "2".to_string()),
            ]
        );
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let texts: Vec<_> = kinds_and_text("a += b; c::d; e -> f")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert!(texts.contains(&"+=".to_string()));
        assert!(texts.contains(&"::".to_string()));
        assert!(texts.contains(&"->".to_string()));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'a", "b'"] {
            let _ = lex(src);
        }
    }
}
