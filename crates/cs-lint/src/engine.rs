//! The scan pipeline: lex → split code/comments → parse items → build
//! the workspace call graph → parse `allow` annotations → mark test
//! regions → run token + semantic rules → scope + suppress → report
//! dead suppressions.
//!
//! # Annotation grammar (DESIGN.md §14)
//!
//! ```text
//! // cs-lint: allow(<rule-name>, reason = "<non-empty text>")
//! ```
//!
//! The comment must be **alone on its line** and suppresses findings of
//! that rule on the next line holding any code token (doc comments and
//! blank lines in between are skipped, so an annotation can sit above a
//! documented item). Stacked annotations all bind to that same line. A
//! `cs-lint:` comment that does not parse — unknown rule, missing or
//! empty reason, trailing position — is itself reported as
//! `malformed-annotation`, which cannot be suppressed.
//!
//! # Unused suppressions
//!
//! An allow whose rule produces no finding on its bound line reports
//! `unused-allow` at the annotation itself. Like `malformed-annotation`
//! it lives outside the [`Rule`] enum, so `allow(unused-allow, …)` is
//! not even parseable: suppression debt can be paid down but never
//! rolled over.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::graph::{self, DepMap, FileView};
use crate::items::{self, ItemIndex};
use crate::lexer::{self, Token, TokenKind};
use crate::policy;
use crate::rules::{self, RawFinding, Rule};

/// Rule name used for unparseable `cs-lint:` comments.
pub const MALFORMED: &str = "malformed-annotation";

/// Rule name used for allows that no longer suppress anything.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Kebab-case rule name.
    pub rule: String,
    pub message: String,
    /// The source line the finding points at, trimmed — context for the
    /// human report and for `--fix-annotations` indentation.
    pub snippet: String,
}

/// A parsed, well-formed allow annotation.
struct Allow {
    rule: Rule,
    /// Line/col the annotation comment sits on.
    line: u32,
    col: u32,
    /// The code line it binds to (the next line with a code token), or
    /// `None` when nothing follows it.
    target: Option<u32>,
    /// Set when the allow suppressed at least one applicable finding;
    /// still-false allows become `unused-allow` findings.
    used: bool,
}

/// Everything the per-file front half of the pipeline produces; the
/// back half (rules, graph, suppression) runs over a batch of these.
struct FileAnalysis {
    ctx: policy::FileCtx,
    src: String,
    /// Comment-free token stream.
    code: Vec<Token>,
    items: ItemIndex,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(u32, u32)>,
    allows: Vec<Allow>,
    /// Malformed-annotation findings, complete as parsed.
    malformed: Vec<Finding>,
}

/// Lexes, parses, and annotation-scans one file (no rules yet).
fn analyze_file(rel_path: &str, src: &str) -> FileAnalysis {
    let ctx = policy::classify(rel_path);
    let tokens = lexer::lex(src);
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .into_iter()
        .partition(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment));
    let items = items::parse(src, &code);
    let test_regions = test_regions(src, &code);

    // Lines that hold at least one code token, for annotation binding.
    let code_lines: BTreeSet<u32> = code.iter().map(|t| t.line).collect();
    let mut allows: Vec<Allow> = Vec::new();
    let mut malformed: Vec<Finding> = Vec::new();
    for c in &comments {
        if c.kind != TokenKind::LineComment {
            continue;
        }
        let text = c.text(src);
        let Some(rest) = annotation_body(text) else {
            continue;
        };
        let alone = !code_lines.contains(&c.line);
        match (parse_allow(rest), alone) {
            (Some(rule), true) => allows.push(Allow {
                rule,
                line: c.line,
                col: c.col,
                target: code_lines.range(c.line + 1..).next().copied(),
                used: false,
            }),
            (Some(_), false) => malformed.push(Finding {
                path: rel_path.to_string(),
                line: c.line,
                col: c.col,
                rule: MALFORMED.to_string(),
                message: "annotation must be alone on the line preceding the finding, not \
                          trailing code"
                    .to_string(),
                snippet: line_snippet(src, c.line),
            }),
            (None, _) => malformed.push(Finding {
                path: rel_path.to_string(),
                line: c.line,
                col: c.col,
                rule: MALFORMED.to_string(),
                message: format!(
                    "cannot parse annotation; expected `// cs-lint: allow(<rule>, reason = \
                     \"...\")` with a known rule and non-empty reason; rules: {}",
                    rules::ALL_RULES
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                snippet: line_snippet(src, c.line),
            }),
        }
    }

    FileAnalysis {
        ctx,
        src: src.to_string(),
        code,
        items,
        test_regions,
        allows,
        malformed,
    }
}

/// Scans a batch of files as one workspace: token rules per file,
/// semantic rules over the shared call graph (`deps` gates cross-crate
/// edges; `None` means every edge is link-plausible, the single-file
/// case). Input pairs are `(workspace-relative path, source)`.
pub fn scan_files(inputs: &[(String, String)], deps: Option<&DepMap>) -> Vec<Finding> {
    let mut files: Vec<FileAnalysis> = inputs
        .iter()
        .map(|(rel, src)| analyze_file(rel, src))
        .collect();

    let mut raw: Vec<(usize, RawFinding)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        raw.extend(rules::detect(&f.src, &f.code).into_iter().map(|r| (fi, r)));
    }
    {
        let views: Vec<FileView<'_>> = files
            .iter()
            .zip(inputs)
            .map(|(f, (rel, _))| FileView {
                rel_path: rel,
                krate: &f.ctx.krate,
                src: &f.src,
                code: &f.code,
                items: &f.items,
            })
            .collect();
        raw.extend(graph::analyze(&views, deps));
    }

    let mut findings: Vec<Finding> = Vec::new();
    for (fi, r) in raw {
        let applies = {
            let f = &files[fi];
            let test_code = f.ctx.kind == policy::TargetKind::TestFile
                || f.test_regions
                    .iter()
                    .any(|&(a, b)| (a..=b).contains(&r.line));
            policy::rule_applies(r.rule, &f.ctx, test_code)
        };
        if !applies {
            continue;
        }
        let mut suppressed = false;
        for a in &mut files[fi].allows {
            if a.rule == r.rule && a.target == Some(r.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if suppressed {
            continue;
        }
        let f = &files[fi];
        let message = match &r.detail {
            Some(d) => format!("{} — {d}", r.rule.message()),
            None => r.rule.message().to_string(),
        };
        findings.push(Finding {
            path: f.ctx.rel_path.clone(),
            line: r.line,
            col: r.col,
            rule: r.rule.name().to_string(),
            message,
            snippet: line_snippet(&f.src, r.line),
        });
    }

    // Allows that suppressed nothing are themselves findings — at the
    // annotation, so deleting the flagged line is always the fix.
    for f in &files {
        for a in &f.allows {
            if a.used {
                continue;
            }
            let target = match a.target {
                Some(l) => format!("its bound line {l}"),
                None => "any code line (nothing follows it)".to_string(),
            };
            findings.push(Finding {
                path: f.ctx.rel_path.clone(),
                line: a.line,
                col: a.col,
                rule: UNUSED_ALLOW.to_string(),
                message: format!(
                    "allow({}) suppresses nothing on {target}: the finding it guarded is \
                     gone, so delete the annotation (unused suppressions cannot be \
                     suppressed)",
                    a.rule.name()
                ),
                snippet: line_snippet(&f.src, a.line),
            });
        }
    }

    for f in &mut files {
        findings.append(&mut f.malformed);
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    findings
}

/// Scans one file's source in isolation. `rel_path` drives policy
/// scoping and is echoed into findings. Cross-crate call edges are
/// link-plausible by default here (no manifest knowledge).
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    scan_files(&[(rel_path.to_string(), src.to_string())], None)
}

/// Returns the text after a `cs-lint:` marker in a line comment, or
/// `None` when the comment is not an annotation at all.
fn annotation_body(comment: &str) -> Option<&str> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    body.strip_prefix("cs-lint:").map(str::trim_start)
}

/// Parses `allow(<rule>, reason = "<non-empty>")`. Returns the rule on
/// success.
fn parse_allow(body: &str) -> Option<Rule> {
    let inner = body.strip_prefix("allow")?.trim_start().strip_prefix('(')?;
    let inner = inner.trim_end().strip_suffix(')')?;
    let (rule_name, rest) = inner.split_once(',')?;
    let rule = Rule::from_name(rule_name.trim())?;
    let reason = rest
        .trim()
        .strip_prefix("reason")?
        .trim_start()
        .strip_prefix('=')?;
    let reason = reason.trim().strip_prefix('"')?.strip_suffix('"')?;
    (!reason.trim().is_empty()).then_some(rule)
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items. Token
/// scan: a `#[...]` attribute whose idents include `test` (and not
/// `not`, so `#[cfg(not(test))]` stays production code) marks the next
/// brace-delimited item; a `;` before any `{` means the attribute
/// decorated a braceless item and no region is produced.
fn test_regions(src: &str, code: &[Token]) -> Vec<(u32, u32)> {
    let text = |i: usize| code[i].text(src);
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(text(i) == "#" && text(i + 1) == "[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < code.len() {
            match text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Attribute marks a test item: find its body's `{`, bailing at a
        // same-level `;` (braceless item).
        let mut k = j + 1;
        while k < code.len() && text(k) != "{" && text(k) != ";" {
            k += 1;
        }
        if k < code.len() && text(k) == "{" {
            let open_line = code[k].line;
            let mut brace = 0usize;
            while k < code.len() {
                match text(k) {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let close_line = if k < code.len() {
                code[k].line
            } else {
                u32::MAX
            };
            regions.push((open_line, close_line));
        }
        i = k;
    }
    regions
}

/// The 1-based `line` of `src`, trimmed; empty string when out of range.
fn line_snippet(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Raw (untrimmed) source line, for `--fix-annotations` indentation.
pub fn raw_line(src: &str, line: u32) -> String {
    src.lines().nth(line as usize - 1).unwrap_or("").to_string()
}

/// Result of a workspace scan.
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Path suffix of the known-bad lint fixture corpus — scanning it would
/// (correctly) light up every rule.
const FIXTURES_DIR: &str = "crates/cs-lint/tests/fixtures";

/// Walks the workspace rooted at `root` and scans every `.rs` file,
/// deterministically ordered, with call-graph edges gated by the
/// manifests' declared dependencies.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        inputs.push((rel_unix(root, file), src));
    }
    let deps = workspace_deps(root);
    let findings = scan_files(&inputs, (!deps.is_empty()).then_some(&deps));
    Ok(ScanReport {
        findings,
        files_scanned: inputs.len(),
    })
}

/// Reads `package name → direct dependency names` from the workspace
/// manifests (root + `crates/*/Cargo.toml`). Hand-rolled line scan in
/// the same dependency-free discipline as the lexer: section headers,
/// `name = "…"` under `[package]`, and the leading key of each entry
/// under `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`.
pub fn workspace_deps(root: &Path) -> DepMap {
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(rd) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let m = d.join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    let mut deps = DepMap::new();
    for m in manifests {
        let Ok(text) = std::fs::read_to_string(&m) else {
            continue;
        };
        if let Some((name, d)) = parse_manifest(&text) {
            deps.insert(name, d);
        }
    }
    deps
}

/// Parses one manifest's `(package name, dependency names)`. Returns
/// `None` for virtual manifests (workspace root without `[package]`
/// would be one; ours has a root package).
fn parse_manifest(text: &str) -> Option<(String, BTreeSet<String>)> {
    let mut name: Option<String> = None;
    let mut section = String::new();
    let mut deps = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim_matches('[').to_string();
            continue;
        }
        if section == "package" && name.is_none() {
            if let Some(v) = line
                .strip_prefix("name")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
            {
                name = Some(v.trim().trim_matches('"').to_string());
            }
        }
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) {
            if let Some((dep, _)) = line.split_once('=') {
                let dep = dep.trim();
                if !dep.is_empty()
                    && dep
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    deps.insert(dep.to_string());
                }
            }
        }
    }
    Some((name?, deps))
}

/// Writes one allow annotation above every *annotatable* finding
/// (rules in the [`Rule`] enum; `malformed-annotation` / `unused-allow`
/// have no annotation form by design). The inserted reason is a
/// placeholder the author must rewrite — `--apply` automates the
/// mechanical half of triage, never the judgment half. Returns
/// `(inserted, skipped)` counts; idempotent because each inserted
/// annotation suppresses exactly the finding that produced it.
pub fn apply_annotations(root: &Path, findings: &[Finding]) -> Result<(usize, usize), String> {
    let mut by_file: BTreeMap<&str, BTreeSet<(u32, &str)>> = BTreeMap::new();
    let mut skipped = 0usize;
    for f in findings {
        if Rule::from_name(&f.rule).is_none() {
            skipped += 1;
            continue;
        }
        by_file
            .entry(&f.path)
            .or_default()
            .insert((f.line, &f.rule));
    }
    let mut inserted = 0usize;
    for (path, sites) in by_file {
        let abs = root.join(path);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        // Descending line order so earlier insertions never shift the
        // remaining targets.
        for &(line, rule) in sites.iter().rev() {
            let idx = (line as usize).saturating_sub(1).min(lines.len());
            let indent: String = lines
                .get(idx)
                .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                .unwrap_or_default();
            lines.insert(
                idx,
                format!(
                    "{indent}// cs-lint: allow({rule}, reason = \"TODO(triage): state the \
                     invariant that makes this safe\")"
                ),
            );
            inserted += 1;
        }
        let mut out = lines.join("\n");
        if src.ends_with('\n') {
            out.push('\n');
        }
        std::fs::write(&abs, out).map_err(|e| format!("cannot write {}: {e}", abs.display()))?;
    }
    Ok((inserted, skipped))
}

fn rel_unix(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            if rel_unix(root, &path) == FIXTURES_DIR {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<(String, u32)> {
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
    }

    #[test]
    fn allow_suppresses_next_code_line_only() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"membership only\")
use std::collections::HashSet;
use std::collections::HashMap;
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![("nondeterministic-iteration".to_string(), 3)]
        );
    }

    #[test]
    fn allow_skips_doc_comments_between() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"membership only\")
/// Documented field.
struct S { m: HashSet<u64> }
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stacked_allows_bind_to_same_line() {
        let src = "\
// cs-lint: allow(nondeterministic-iteration, reason = \"fixture\")
// cs-lint: allow(no-bare-unwrap-in-lib, reason = \"fixture\")
fn f(m: HashMap<u8, u8>) { m.get(&1).unwrap(); }
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wrong_rule_does_not_suppress_and_is_itself_flagged() {
        let src = "\
// cs-lint: allow(wall-clock, reason = \"mismatched\")
use std::collections::HashMap;
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![
                (UNUSED_ALLOW.to_string(), 1),
                ("nondeterministic-iteration".to_string(), 2)
            ]
        );
    }

    #[test]
    fn unused_allow_fires_even_with_no_code_after_it() {
        let src = "fn fine() {}\n// cs-lint: allow(wall-clock, reason = \"stale\")\n";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![(UNUSED_ALLOW.to_string(), 2)]);
    }

    #[test]
    fn allow_suppressing_a_policy_exempt_site_is_unused() {
        // wall-clock does not apply in cs-bench, so the allow is dead
        // weight and unused-allow says so.
        let src = "\
// cs-lint: allow(wall-clock, reason = \"bench timing\")
let t = std::time::Instant::now();
";
        let f = scan_source("crates/bench/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![(UNUSED_ALLOW.to_string(), 1)]);
    }

    #[test]
    fn malformed_annotations_are_findings() {
        for bad in [
            "// cs-lint: allow(unknown-rule, reason = \"x\")",
            "// cs-lint: allow(wall-clock)",
            "// cs-lint: allow(wall-clock, reason = \"\")",
            "// cs-lint: disallow(wall-clock, reason = \"x\")",
            // The engine-level rules have no annotation form at all.
            "// cs-lint: allow(unused-allow, reason = \"x\")",
            "// cs-lint: allow(malformed-annotation, reason = \"x\")",
        ] {
            let f = scan_source("crates/relaynet/src/x.rs", bad);
            assert_eq!(rules_of(&f), vec![(MALFORMED.to_string(), 1)], "for {bad}");
        }
        // Trailing-position annotation is malformed even when parseable.
        let f = scan_source(
            "crates/relaynet/src/x.rs",
            "let x = 1; // cs-lint: allow(wall-clock, reason = \"x\")",
        );
        assert_eq!(rules_of(&f), vec![(MALFORMED.to_string(), 1)]);
        // A plain comment mentioning the tool is not an annotation.
        let f = scan_source(
            "crates/relaynet/src/x.rs",
            "// run cs-lint before pushing\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_where_policy_says() {
        let src = "\
fn lib_code() { std::thread::spawn(|| {}); }

#[cfg(test)]
mod tests {
    fn helper() { std::thread::spawn(|| {}); }
}
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 1)]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "\
#[cfg(not(test))]
mod prod {
    fn f() { std::thread::spawn(|| {}); }
}
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 3)]);
    }

    #[test]
    fn braceless_cfg_test_item_marks_no_region() {
        let src = "\
#[cfg(test)]
use helper::thing;
fn f() { std::thread::spawn(|| {}); }
";
        let f = scan_source("crates/simcore/src/chan.rs", src);
        assert_eq!(rules_of(&f), vec![("stray-threads".to_string(), 3)]);
    }

    #[test]
    fn hash_rule_reaches_cfg_test_in_visible_crates() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() { let mut s = std::collections::HashSet::new(); s.insert(1); }
}
";
        let f = scan_source("crates/torcell/src/ids.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![("nondeterministic-iteration".to_string(), 3)]
        );
    }

    #[test]
    fn transitive_findings_flow_through_scan_files() {
        let src = "\
fn stamp() -> u64 { let _ = std::time::Instant::now(); 0 }
pub fn wraps() -> u64 { stamp() }
";
        let f = scan_source("crates/relaynet/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![
                ("wall-clock".to_string(), 1),
                ("transitive-wall-clock".to_string(), 2)
            ]
        );
        // The transitive finding carries its call chain.
        assert!(f[1]
            .message
            .contains("`wraps` reaches a wall-clock read via stamp"));
    }

    #[test]
    fn manifest_parsing_reads_package_and_dep_sections() {
        let (name, deps) = parse_manifest(
            "[package]\nname = \"relaynet\"\nversion = \"0.1.0\"\n\n[dependencies]\n\
             simcore = { path = \"../simcore\" }\nnetsim = { path = \"../netsim\" }\n\n\
             [dev-dependencies]\ntorcell = { path = \"../torcell\" }\n\n[lints]\n\
             workspace = true\n",
        )
        .expect("has a package section");
        assert_eq!(name, "relaynet");
        assert_eq!(
            deps.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["netsim", "simcore", "torcell"]
        );
    }
}
