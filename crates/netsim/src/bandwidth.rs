//! Link rates and serialization-time arithmetic.
//!
//! [`Bandwidth`] is a plain bits-per-second value with exact integer
//! conversion to per-frame transmission times. Serialization time is
//! computed with *ceiling* division so that a frame never finishes
//! transmitting early — rounding down would let back-to-back frames creep
//! ahead of the physical rate over long runs.

use std::fmt;

use simcore::time::{SimDuration, NANOS_PER_SEC};

/// A transmission rate in bits per second.
///
/// # Examples
///
/// ```
/// use netsim::bandwidth::Bandwidth;
///
/// let rate = Bandwidth::from_mbps(10);
/// // 512-byte Tor cell at 10 Mbit/s: 512 * 8 / 10e6 s = 409.6 us.
/// assert_eq!(rate.transmission_time(512).as_nanos(), 409_600);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero — a zero-rate link can never transmit and
    /// would silently deadlock the simulation.
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "link bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Creates a rate from kilobits per second (10^3 bits).
    pub fn from_kbps(kbps: u64) -> Self {
        Self::from_bps(kbps * 1_000)
    }

    /// Creates a rate from megabits per second (10^6 bits).
    pub fn from_mbps(mbps: u64) -> Self {
        Self::from_bps(mbps * 1_000_000)
    }

    /// Creates a rate from gigabits per second (10^9 bits).
    pub fn from_gbps(gbps: u64) -> Self {
        Self::from_bps(gbps * 1_000_000_000)
    }

    /// Creates a rate from fractional megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not finite or not positive.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps > 0.0,
            "bandwidth must be positive and finite, got {mbps}"
        );
        Self::from_bps((mbps * 1e6).round().max(1.0) as u64)
    }

    /// The rate in bits per second.
    pub fn bps(&self) -> u64 {
        self.0
    }

    /// The rate in megabits per second as a float.
    pub fn as_mbps_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The rate in bytes per second as a float.
    pub fn bytes_per_sec_f64(&self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to serialize `bytes` onto the wire at this rate, rounded *up*
    /// to the next nanosecond.
    pub fn transmission_time(&self, bytes: u32) -> SimDuration {
        let bits = u128::from(bytes) * 8;
        let nanos = (bits * u128::from(NANOS_PER_SEC)).div_ceil(u128::from(self.0));
        SimDuration::from_nanos(u64::try_from(nanos).expect("transmission time overflows u64 ns"))
    }

    /// How many whole bytes this rate can move in `d`.
    pub fn bytes_in(&self, d: SimDuration) -> u64 {
        let bits = u128::from(self.0) * u128::from(d.as_nanos()) / u128::from(NANOS_PER_SEC);
        u64::try_from(bits / 8).expect("byte count overflows u64")
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bandwidth({self})")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0 % 1_000_000_000 == 0 {
            write!(f, "{}Gbit/s", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mbit/s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}kbit/s", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}bit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Bandwidth::from_kbps(1), Bandwidth::from_bps(1_000));
        assert_eq!(Bandwidth::from_mbps(1), Bandwidth::from_kbps(1_000));
        assert_eq!(Bandwidth::from_gbps(1), Bandwidth::from_mbps(1_000));
        assert_eq!(Bandwidth::from_mbps_f64(2.5), Bandwidth::from_kbps(2_500));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let _ = Bandwidth::from_bps(0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn negative_float_rate_rejected() {
        let _ = Bandwidth::from_mbps_f64(-1.0);
    }

    #[test]
    fn cell_serialization_times() {
        // 512 B at 1 Mbit/s → 4.096 ms exactly.
        assert_eq!(
            Bandwidth::from_mbps(1).transmission_time(512),
            SimDuration::from_micros(4_096)
        );
        // 512 B at 100 Mbit/s → 40.96 us.
        assert_eq!(
            Bandwidth::from_mbps(100).transmission_time(512).as_nanos(),
            40_960
        );
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666…s → ceil at ns granularity.
        let t = Bandwidth::from_bps(3).transmission_time(1);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(
            Bandwidth::from_mbps(10).transmission_time(0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        let bw = Bandwidth::from_mbps(8); // 1 byte/us
        assert_eq!(bw.bytes_in(SimDuration::from_micros(100)), 100);
        let t = bw.transmission_time(1_000);
        assert_eq!(bw.bytes_in(t), 1_000);
    }

    #[test]
    fn accessors() {
        let bw = Bandwidth::from_mbps(12);
        assert_eq!(bw.bps(), 12_000_000);
        assert!((bw.as_mbps_f64() - 12.0).abs() < 1e-12);
        assert!((bw.bytes_per_sec_f64() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::from_bps(500).to_string(), "500bit/s");
        assert_eq!(Bandwidth::from_kbps(64).to_string(), "64.000kbit/s");
        assert_eq!(Bandwidth::from_mbps(10).to_string(), "10.000Mbit/s");
        assert_eq!(Bandwidth::from_gbps(2).to_string(), "2Gbit/s");
    }
}
