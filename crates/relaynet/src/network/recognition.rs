//! Pipeline stage 2 — cell routing and leaky-pipe recognition.
//!
//! [`TorNetwork::on_cell`] classifies an arriving cell by command:
//! control-plane cells (CREATE/CREATED/DESTROY) go straight to the
//! [`circuit_build`](super::circuit_build) stage, padding is confirmed
//! and dropped, and relay cells enter [`TorNetwork::handle_relay`] — the
//! recognition stage proper.
//!
//! Recognition is leaky-pipe, as in Tor: a relay strips its onion layer
//! from every forward relay cell; if the digest then verifies, the cell
//! is *for this hop* and is consumed by the endpoint stage
//! ([`client_xfer`](super::client_xfer) at server/client,
//! [`circuit_build`](super::circuit_build) for EXTEND at a relay).
//! Otherwise the cell is re-queued toward the next hop and the egress
//! pump takes over. Backward cells are symmetric: relays *add* their
//! layer; only the client unwraps the full stack.

use simcore::sim::Context;

use torcell::cell::{Cell, CellBody, RelayCell};
use torcell::ids::CircuitId;

use crate::event::TorEvent;
use crate::ids::{Direction, OverlayId};
use crate::node::{PendingConfirm, QueuedCell};

use super::TorNetwork;

impl TorNetwork {
    /// Dispatches one arriving cell into the pipeline.
    pub(super) fn on_cell(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        cell: Cell,
        hop_seq: u64,
    ) {
        match cell.body {
            CellBody::Create { handshake } => {
                self.handle_create(ctx, to, from, cell.circ, handshake, hop_seq)
            }
            CellBody::Created { handshake } => {
                self.handle_created(ctx, to, from, cell.circ, handshake, hop_seq)
            }
            CellBody::Destroy { reason } => {
                self.handle_destroy(ctx, to, from, cell.circ, reason, hop_seq)
            }
            CellBody::Padding => {
                // Padding is consumed silently but still confirmed so the
                // sender's window does not leak.
                let my_net = self.net_node_of[to.index()];
                Self::send_feedback(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    ctx,
                    my_net,
                    PendingConfirm {
                        neighbor: from,
                        circ_id: cell.circ,
                        seq: hop_seq,
                    },
                );
            }
            CellBody::Relay(rc) => self.handle_relay(ctx, to, from, cell.circ, rc, hop_seq),
        }
    }

    /// A relay cell arrived from a neighbour: resolve its circuit, apply
    /// leaky-pipe recognition, and either consume or forward.
    pub(super) fn handle_relay(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
        mut rc: RelayCell,
        hop_seq: u64,
    ) {
        let Some((global, local, flow)) = self.route_of(to, from, link_id) else {
            Self::stale_or_protocol_error(
                &self.faults,
                &mut self.stats,
                "relay cell on unknown route",
            );
            self.payload_pool.reclaim(rc.data);
            return;
        };
        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let confirm = PendingConfirm {
            neighbor: from,
            circ_id: link_id,
            seq: hop_seq,
        };

        if nc.closed {
            // Torn-down circuit: confirm (so the sender's window drains),
            // return the payload buffer to the pool, and drop.
            self.stats.cells_dropped_closed += 1;
            Self::send_feedback(
                &mut self.net,
                &mut self.link_sched,
                &self.router,
                &self.net_node_of,
                &mut self.stats,
                ctx,
                my_net,
                confirm,
            );
            self.payload_pool.reclaim(rc.data);
            return;
        }

        match flow {
            Direction::Forward => {
                if nc.client.is_some() {
                    Self::protocol_error(&mut self.stats, "forward relay cell at client");
                    return;
                }
                let recognized = nc
                    .crypt
                    .as_mut()
                    .expect("non-client has crypt state")
                    .strip_forward(&mut rc);
                if recognized {
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        confirm,
                    );
                    let nc = self.nodes[to.index()].circuit_at(local);
                    if nc.server.is_some() {
                        self.server_consume(ctx, to, global, local, rc);
                    } else {
                        self.relay_consume(ctx, to, global, local, rc);
                    }
                } else {
                    if nc.server.is_some() {
                        Self::protocol_error(&mut self.stats, "unrecognized relay cell at server");
                        return;
                    }
                    let Some(fwd) = nc.fwd.as_mut() else {
                        Self::protocol_error(&mut self.stats, "forwarding past the built circuit");
                        return;
                    };
                    fwd.enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(rc),
                        },
                        confirm: Some(confirm),
                        wrap_for_hop: None,
                    });
                    Self::pump_dir(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        &mut self.payload_pool,
                        ctx,
                        my_net,
                        nc,
                        Direction::Forward,
                    );
                }
            }
            Direction::Backward => {
                if nc.client.is_some() {
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        confirm,
                    );
                    let node = &mut self.nodes[to.index()];
                    let nc = node.circuit_at_mut(local);
                    let app = nc.client.as_mut().expect("client app");
                    match app.route.unwrap_inbound(&mut rc) {
                        Some(origin) => {
                            self.client_consume_backward(ctx, to, global, local, origin, rc)
                        }
                        None => {
                            Self::protocol_error(
                                &mut self.stats,
                                "backward cell not recognized by any layer",
                            );
                        }
                    }
                } else {
                    nc.crypt
                        .as_mut()
                        .expect("relay has crypt state")
                        .add_backward(&mut rc);
                    let Some(bwd) = nc.bwd.as_mut() else {
                        Self::protocol_error(&mut self.stats, "backward cell with no client side");
                        return;
                    };
                    bwd.enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(rc),
                        },
                        confirm: Some(confirm),
                        wrap_for_hop: None,
                    });
                    Self::pump_dir(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        &mut self.payload_pool,
                        ctx,
                        my_net,
                        nc,
                        Direction::Backward,
                    );
                }
            }
        }
    }
}
