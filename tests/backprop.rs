//! Backpropagation: the paper's claim that the minimum window propagates
//! from the bottleneck relay back to the source, and that hop-by-hop
//! windows keep queues bounded (the BackTap property CircuitStart builds
//! on).

use circuitstart::prelude::*;
use relaynet::{PathScenario, WorldConfig};

/// Builds the fig-1 geometry with the bottleneck at `distance`, runs a
/// CircuitStart transfer, and returns the built simulator for inspection.
fn run_geometry(
    distance: usize,
    file: u64,
) -> (
    simcore::Simulator<relaynet::TorNetwork>,
    relaynet::builder::PathHandles,
) {
    let base = fig1_trace(distance, Algorithm::CircuitStart);
    let scenario = PathScenario {
        hops: base.hops(),
        file_bytes: file,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(Algorithm::CircuitStart.factory(base.cc), 1);
    run_to_completion(&mut sim);
    assert_eq!(sim.world().stats().protocol_errors, 0);
    assert!(sim.world().result_of(handles.circ).completed);
    (sim, handles)
}

#[test]
fn source_window_lands_at_the_bottleneck_bdp_for_every_distance() {
    for distance in 0..=3 {
        let base = fig1_trace(distance, Algorithm::CircuitStart);
        let report = run_trace(&base);
        let w_star = report.optimal_cells;
        let final_cwnd = f64::from(report.cwnd_cells.last().unwrap().1);
        assert!(
            (final_cwnd - w_star).abs() / w_star < 0.35,
            "distance {distance}: final window {final_cwnd} vs optimal {w_star}"
        );
    }
}

#[test]
fn relay_windows_converge_near_their_own_optima() {
    // With the bottleneck at the exit↔server link, every relay's forward
    // window must end near its own BDP — the backpropagated minimum.
    let (sim, handles) = run_geometry(3, 2 << 20);
    let world = sim.world();
    let base = fig1_trace(3, Algorithm::CircuitStart);
    let model = base.model();
    // Relays occupy path positions 1..=3; relay at position p sends on
    // link p (hop index p).
    for position in 1..=3usize {
        let node = handles.overlay_path[position];
        let nc = world
            .node(node)
            .circuit(handles.circ)
            .expect("relay participates");
        let cwnd = nc.fwd.as_ref().expect("forward hop").transport.cwnd();
        let w_star = model.optimal_cwnd_cells(position);
        assert!(
            (f64::from(cwnd) - w_star).abs() / w_star < 0.5,
            "relay at position {position}: window {cwnd} vs optimal {w_star:.1}"
        );
    }
}

#[test]
fn overshoot_grows_with_bottleneck_distance() {
    // The paper's motivating observation: the farther the bottleneck,
    // the longer congestion evidence takes to reach the source, so the
    // peak (pre-compensation) window is at least as large.
    let near = run_trace(&fig1_trace(1, Algorithm::CircuitStart));
    let far = run_trace(&fig1_trace(3, Algorithm::CircuitStart));
    assert!(
        far.peak_cwnd_cells() >= near.peak_cwnd_cells(),
        "far {} vs near {}",
        far.peak_cwnd_cells(),
        near.peak_cwnd_cells()
    );
}

#[test]
fn queues_stay_bounded_by_upstream_windows() {
    // BackTap's core property: per-circuit relay queues are bounded by
    // the predecessor's (peak) window — no unbounded buffering anywhere.
    let (sim, handles) = run_geometry(3, 2 << 20);
    let world = sim.world();
    let source_peak = world
        .source_cwnd_trace(handles.circ)
        .unwrap()
        .iter()
        .map(|&(_, c)| c)
        .max()
        .unwrap() as usize;
    for position in 1..=3usize {
        let node = handles.overlay_path[position];
        let hwm = world
            .fwd_queue_hwm(node, handles.circ)
            .expect("relay forward queue");
        assert!(
            hwm <= 2 * source_peak,
            "relay {position} queue hwm {hwm} vs source peak {source_peak}"
        );
    }
    // Link egress queues are similarly bounded (no runaway buffers).
    for &link in &handles.fwd_links {
        let hwm = world.net().stats(link).queue_hwm_frames;
        assert!(
            hwm <= 3 * source_peak,
            "link queue hwm {hwm} vs source peak {source_peak}"
        );
    }
}

#[test]
fn bottleneck_link_is_saturated_after_convergence() {
    let (sim, handles) = run_geometry(1, 2 << 20);
    let world = sim.world();
    let bottleneck = handles.fwd_links[1];
    let stats = world.net().stats(bottleneck);
    // Utilization accounting: busy time over the span between first and
    // last byte ≈ bottleneck share. The ramp spends some time below, so
    // require a solid but not perfect fraction over the whole run.
    let result = world.result_of(handles.circ);
    let span = result.last_byte_at.unwrap() - result.first_data_at.unwrap();
    let util = stats.busy_time.as_secs_f64() / span.as_secs_f64();
    assert!(
        util > 0.85,
        "bottleneck utilization {util:.3} too low — ramp never converged"
    );
}

#[test]
fn classic_baseline_undershoots_after_halving() {
    // The contrast the paper draws: halving lands the window at half the
    // peak, which for the near bottleneck is well below the optimum.
    let report = run_trace(&fig1_trace(1, Algorithm::ClassicBacktap));
    let peak = report.peak_cwnd_cells();
    let after_exit = report
        .cwnd_cells
        .iter()
        .skip_while(|&&(_, c)| c < peak)
        .nth(1)
        .map(|&(_, c)| c)
        .expect("exit happened");
    assert_eq!(after_exit, peak / 2, "traditional exit halves");
    assert!(
        f64::from(after_exit) < report.optimal_cells,
        "halving from 64 under the ≈50-cell optimum"
    );
}
