//! Empirical cumulative distribution functions.
//!
//! The paper's Figure 1 (lower panel) plots the empirical CDF of
//! time-to-last-byte across circuits. [`Cdf`] collects samples, sorts them
//! once on freeze, and then answers `F(x)`, quantile, and plotting-point
//! queries — **exact** answers at O(samples) memory. For streaming
//! aggregation at scale (merging shards or sweeps without holding every
//! sample), use the fixed-size [`QuantileSketch`](crate::sketch::QuantileSketch),
//! which answers the same queries within a configured relative-error
//! bound; sorting is *not* the only aggregation story (DESIGN.md §13).

use std::fmt;

/// The *lower-interpolation* rank for quantile `q` over `n` samples: the
/// smallest 1-based rank `r` with `r/n >= q`, computed so that exact rank
/// boundaries are immune to float rounding.
///
/// The naive `ceil(q * n)` misfires when `q * n` lands an ulp above an
/// integer — e.g. `0.28 * 25 = 7.000000000000001`, whose ceiling is 8,
/// selecting the 8th sample even though `F(sorted[6]) = 7/25 = 0.28 >= q`
/// already holds. We start from the float guess and then repair it in
/// integer space against the same `r/n` comparison `fraction_at_or_below`
/// uses, so `quantile` and `F` stay mutually consistent.
///
/// Callers guarantee `n > 0` and `0 < q <= 1`.
pub(crate) fn lower_rank(q: f64, n: u64) -> u64 {
    debug_assert!(n > 0 && q > 0.0 && q <= 1.0);
    let nf = n as f64;
    let mut r = ((q * nf).ceil() as u64).clamp(1, n);
    // Walk down while the previous rank already satisfies F >= q.
    while r > 1 && (r - 1) as f64 / nf >= q {
        r -= 1;
    }
    // Walk up while this rank still falls short of q.
    while r < n && (r as f64) / nf < q {
        r += 1;
    }
    r
}

/// An empirical CDF built from a set of `f64` samples.
///
/// # Examples
///
/// ```
/// use simstats::cdf::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);   // median (lower interpolation)
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Returns `None` if `samples` is empty or
    /// contains NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Cdf> {
        if samples.is_empty() || samples.iter().any(|v| v.is_nan()) {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN already excluded"));
        Some(Cdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty sample sets); present for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Empirical `F(x)`: the fraction of samples `<= x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN: `NaN <= v` is false for every sample, so the
    /// old behaviour silently returned 0.0 — a poisoned threshold now
    /// fails loudly instead of masquerading as "no samples below".
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        assert!(
            !x.is_nan(),
            "Cdf::fraction_at_or_below requires a non-NaN threshold"
        );
        // partition_point returns the index of the first element > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile with *lower* interpolation: the smallest sample `v`
    /// such that `F(v) >= q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile requires q in [0,1], got {q}"
        );
        if q == 0.0 {
            return self.min();
        }
        let rank = lower_rank(q, self.sorted.len() as u64);
        self.sorted[rank as usize - 1]
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The 99th percentile (`quantile(0.99)`) — the standard tail-latency
    /// headline. With fewer than 100 samples this is the max (lower
    /// interpolation), so report it alongside `len()`.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile (`quantile(0.999)`) — the deep tail.
    /// Meaningless below ~1000 samples (it collapses onto the max).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The classic staircase plotting points: one `(x, F(x))` pair per
    /// sample, with `F` evaluated *after* the step. Suitable for gnuplot
    /// `with steps`.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// `true` if `self` stochastically dominates `other` (is everywhere at
    /// least as "fast"/left-shifted): for every probability level `q` in the
    /// given grid, `self.quantile(q) <= other.quantile(q) + slack`.
    ///
    /// `slack` absorbs simulation noise; pass `0.0` for strict dominance.
    pub fn stochastically_dominates(&self, other: &Cdf, slack: f64) -> bool {
        let grid = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
        grid.iter()
            .all(|&q| self.quantile(q) <= other.quantile(q) + slack)
    }

    /// Largest quantile gap `other.quantile(q) − self.quantile(q)` over a
    /// uniform grid — "by how much does `self` beat `other` at best".
    /// Negative values mean `self` is never better.
    pub fn max_quantile_improvement_over(&self, other: &Cdf) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for i in 1..=19 {
            let q = i as f64 / 20.0;
            best = best.max(other.quantile(q) - self.quantile(q));
        }
        best
    }

    /// Access the sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cdf(n={}, min={:.4}, p50={:.4}, p90={:.4}, max={:.4})",
            self.len(),
            self.min(),
            self.median(),
            self.quantile(0.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(v: Vec<f64>) -> Cdf {
        Cdf::from_samples(v).unwrap()
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Cdf::from_samples(vec![]).is_none());
        assert!(Cdf::from_samples(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn fraction_at_or_below_steps() {
        let c = cdf(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.fraction_at_or_below(5.0), 0.0);
        assert_eq!(c.fraction_at_or_below(10.0), 0.25);
        assert_eq!(c.fraction_at_or_below(19.999), 0.25);
        assert_eq!(c.fraction_at_or_below(20.0), 0.5);
        assert_eq!(c.fraction_at_or_below(40.0), 1.0);
        assert_eq!(c.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn fraction_with_duplicates() {
        let c = cdf(vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(c.fraction_at_or_below(1.0), 0.75);
    }

    #[test]
    fn quantiles() {
        let c = cdf(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(0.2), 1.0);
        assert_eq!(c.quantile(0.200001), 2.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.median(), 3.0);
    }

    #[test]
    fn tail_percentile_helpers() {
        // 1000 samples 1..=1000: p99 = 990, p999 = 999 under lower
        // interpolation (smallest v with F(v) >= q).
        let c = cdf((1..=1000).map(f64::from).collect());
        assert_eq!(c.p99(), 990.0);
        assert_eq!(c.p999(), 999.0);
        // Tiny sample sets collapse the tail onto the max — documented
        // behaviour, not an error.
        let small = cdf(vec![1.0, 2.0, 3.0]);
        assert_eq!(small.p99(), 3.0);
        assert_eq!(small.p999(), 3.0);
    }

    #[test]
    #[should_panic(expected = "q in [0,1]")]
    fn quantile_out_of_range_panics() {
        cdf(vec![1.0]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "non-NaN threshold")]
    fn fraction_at_or_below_rejects_nan() {
        // Pre-fix: NaN made the partition closure false everywhere and the
        // call silently returned 0.0 — indistinguishable from a threshold
        // genuinely below every sample.
        cdf(vec![1.0, 2.0]).fraction_at_or_below(f64::NAN);
    }

    #[test]
    fn quantile_exact_rank_boundaries_survive_float_rounding() {
        // Pre-fix: quantile trusted ceil(q * n). For n = 25, q = 7/25,
        // q * 25 = 7.000000000000001 in f64, whose ceiling is 8 — the old
        // code returned sorted[7] (the 8th sample) even though
        // F(sorted[6]) = 0.28 >= q already held.
        assert_eq!(0.28_f64 * 25.0, 7.000000000000001);
        let c = cdf((1..=25).map(f64::from).collect());
        assert_eq!(c.quantile(0.28), 7.0);
        // More (numerator, n) pairs where ceil(q * n) overshoots the rank.
        for (k, n) in [
            (14u64, 25u64),
            (15, 29),
            (29, 35),
            (21, 38),
            (25, 39),
            (7, 41),
        ] {
            let c = cdf((1..=n).map(|i| i as f64).collect());
            let q = k as f64 / n as f64;
            assert_eq!(
                c.quantile(q),
                k as f64,
                "rank for q={k}/{n} must be {k}, not ceil({})",
                q * n as f64
            );
            // The repaired rank stays consistent with F: the chosen sample
            // is the smallest one whose F(v) >= q.
            assert!(c.fraction_at_or_below(c.quantile(q)) >= q);
        }
    }

    #[test]
    fn lower_rank_matches_linear_scan() {
        // Exhaustive cross-check on small n: lower_rank must agree with
        // the definitional "smallest r with r/n >= q" for every exact
        // boundary and for off-boundary probes.
        for n in 1u64..=64 {
            for k in 1..=n {
                let q = k as f64 / n as f64;
                let want = (1..=n).find(|&r| r as f64 / n as f64 >= q).unwrap();
                assert_eq!(lower_rank(q, n), want, "boundary q={k}/{n}");
                let probe = (q - 1e-9).max(1e-12);
                let want = (1..=n).find(|&r| r as f64 / n as f64 >= probe).unwrap();
                assert_eq!(lower_rank(probe, n), want, "probe below q={k}/{n}");
            }
        }
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = cdf(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.sorted_samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 3.0);
    }

    #[test]
    fn points_are_staircase() {
        let c = cdf(vec![5.0, 10.0]);
        assert_eq!(c.points(), vec![(5.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    fn mean_matches() {
        let c = cdf(vec![1.0, 2.0, 3.0]);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dominance_detects_shift() {
        let fast = cdf((0..100).map(|i| 1.0 + i as f64 / 100.0).collect());
        let slow = cdf((0..100).map(|i| 1.5 + i as f64 / 100.0).collect());
        assert!(fast.stochastically_dominates(&slow, 0.0));
        assert!(!slow.stochastically_dominates(&fast, 0.0));
        assert!(slow.stochastically_dominates(&fast, 0.6)); // slack rescues it
        let gain = fast.max_quantile_improvement_over(&slow);
        assert!((gain - 0.5).abs() < 0.02, "gain ≈ 0.5, got {gain}");
    }

    #[test]
    fn dominance_of_self() {
        let c = cdf(vec![1.0, 2.0, 3.0]);
        assert!(c.stochastically_dominates(&c, 0.0));
        assert!(c.max_quantile_improvement_over(&c).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let c = cdf(vec![1.0, 2.0, 3.0, 4.0]);
        let s = c.to_string();
        assert!(s.contains("n=4"));
        assert!(s.contains("p50"));
    }
}
