//! Relay generation and path selection.
//!
//! The paper evaluates over "a randomly generated network of Tor relays".
//! The exact distribution is not published, so this module exposes it as a
//! parameter with a heavy-tailed (log-uniform) default — relay capacity in
//! the live Tor network spans orders of magnitude. Path selection follows
//! Tor's two essential rules: relays on a path are distinct, and selection
//! can optionally be bandwidth-weighted (as Tor weights by consensus
//! bandwidth).

use netsim::bandwidth::Bandwidth;
use simcore::rng::SimRng;
use simcore::time::SimDuration;

/// A generated relay's access-link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct RelaySpec {
    /// Access-link rate (both directions).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay of the access link.
    pub delay: SimDuration,
}

/// Parameters for relay generation.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryConfig {
    /// Number of relays.
    pub relays: usize,
    /// Relay bandwidth is log-uniform in `[low, high]` Mbit/s.
    pub bandwidth_mbps: (f64, f64),
    /// Access-link one-way delay is uniform in `[low, high]` ms.
    pub delay_ms: (f64, f64),
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            relays: 30,
            bandwidth_mbps: (20.0, 100.0),
            // Chosen so per-circuit bottleneck shares land at bandwidth-
            // delay products of tens of cells (the regime the paper's
            // Figure 1 axes imply): ~5 circuits share a relay, so shares
            // run 4–20 Mbit/s over ~15–35 ms hop RTTs.
            delay_ms: (3.0, 10.0),
        }
    }
}

/// A generated set of relays plus path-selection logic.
#[derive(Clone, Debug)]
pub struct Directory {
    relays: Vec<RelaySpec>,
}

impl Directory {
    /// Samples `cfg.relays` relays using the stream derived from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.relays == 0` or ranges are invalid.
    pub fn generate(cfg: &DirectoryConfig, rng: &SimRng) -> Directory {
        assert!(cfg.relays > 0, "directory needs at least one relay");
        assert!(
            cfg.bandwidth_mbps.0 > 0.0 && cfg.bandwidth_mbps.1 > cfg.bandwidth_mbps.0,
            "invalid bandwidth range"
        );
        assert!(
            cfg.delay_ms.0 >= 0.0 && cfg.delay_ms.1 >= cfg.delay_ms.0,
            "invalid delay range"
        );
        let mut relays = Vec::with_capacity(cfg.relays);
        for i in 0..cfg.relays {
            let mut r = rng.derive_indexed("relay-spec", i as u64);
            let mbps = r.log_uniform(cfg.bandwidth_mbps.0, cfg.bandwidth_mbps.1);
            let delay = if cfg.delay_ms.1 > cfg.delay_ms.0 {
                r.range_f64(cfg.delay_ms.0, cfg.delay_ms.1)
            } else {
                cfg.delay_ms.0
            };
            relays.push(RelaySpec {
                bandwidth: Bandwidth::from_mbps_f64(mbps),
                delay: SimDuration::from_secs_f64(delay / 1e3),
            });
        }
        Directory { relays }
    }

    /// Builds a directory from explicit specs (tests, hand-tuned setups).
    pub fn from_specs(relays: Vec<RelaySpec>) -> Directory {
        assert!(!relays.is_empty(), "directory needs at least one relay");
        Directory { relays }
    }

    /// The relay specs, indexed by relay id.
    pub fn relays(&self) -> &[RelaySpec] {
        &self.relays
    }

    /// Number of relays.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// `false` (construction rejects empty directories).
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Selects `path_len` **distinct** relay indices uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `path_len` exceeds the number of relays.
    pub fn select_path_uniform(&self, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert!(
            path_len <= self.relays.len(),
            "cannot pick {path_len} distinct relays from {}",
            self.relays.len()
        );
        rng.sample_distinct(self.relays.len(), path_len)
    }

    /// Selects `path_len` distinct relay indices with probability
    /// proportional to bandwidth (Tor-style weighting), by repeated
    /// weighted draws without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `path_len` exceeds the number of relays.
    pub fn select_path_weighted(&self, rng: &mut SimRng, path_len: usize) -> Vec<usize> {
        assert!(
            path_len <= self.relays.len(),
            "cannot pick {path_len} distinct relays from {}",
            self.relays.len()
        );
        let mut chosen: Vec<usize> = Vec::with_capacity(path_len);
        let mut weights: Vec<f64> = self
            .relays
            .iter()
            .map(|r| r.bandwidth.bps() as f64)
            .collect();
        for _ in 0..path_len {
            let total: f64 = weights.iter().sum();
            debug_assert!(total > 0.0);
            let mut x = rng.range_f64(0.0, total);
            let mut pick = weights.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                if w > 0.0 && x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            chosen.push(pick);
            weights[pick] = 0.0; // without replacement
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn generate_respects_ranges() {
        let cfg = DirectoryConfig {
            relays: 50,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        assert_eq!(dir.len(), 50);
        for r in dir.relays() {
            let mbps = r.bandwidth.as_mbps_f64();
            assert!((10.0..=100.0).contains(&mbps), "bw {mbps}");
            let ms = r.delay.as_millis_f64();
            assert!((5.0..=15.0).contains(&ms), "delay {ms}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = DirectoryConfig::default();
        let a = Directory::generate(&cfg, &SimRng::seed_from(7));
        let b = Directory::generate(&cfg, &SimRng::seed_from(7));
        let c = Directory::generate(&cfg, &SimRng::seed_from(8));
        for (x, y) in a.relays().iter().zip(b.relays()) {
            assert_eq!(x.bandwidth, y.bandwidth);
            assert_eq!(x.delay, y.delay);
        }
        let same = a
            .relays()
            .iter()
            .zip(c.relays())
            .filter(|(x, y)| x.bandwidth == y.bandwidth)
            .count();
        assert!(same < 3, "different seeds should differ");
    }

    #[test]
    fn fixed_delay_range_allowed() {
        let cfg = DirectoryConfig {
            relays: 3,
            bandwidth_mbps: (10.0, 20.0),
            delay_ms: (10.0, 10.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        for r in dir.relays() {
            assert_eq!(r.delay, SimDuration::from_millis(10));
        }
    }

    #[test]
    fn uniform_paths_are_distinct() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let mut r = rng();
        for _ in 0..100 {
            let p = dir.select_path_uniform(&mut r, 3);
            assert_eq!(p.len(), 3);
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), 3);
        }
    }

    #[test]
    fn weighted_paths_prefer_fat_relays() {
        // One relay 100× the bandwidth of the others: it should appear in
        // nearly every 1-relay path.
        let mut specs = vec![
            RelaySpec {
                bandwidth: Bandwidth::from_mbps(1),
                delay: SimDuration::from_millis(10),
            };
            10
        ];
        specs[4].bandwidth = Bandwidth::from_mbps(1000);
        let dir = Directory::from_specs(specs);
        let mut r = rng();
        let hits = (0..200)
            .filter(|_| dir.select_path_weighted(&mut r, 1)[0] == 4)
            .count();
        assert!(hits > 150, "fat relay picked only {hits}/200 times");
    }

    #[test]
    fn weighted_paths_are_distinct() {
        let dir = Directory::generate(&DirectoryConfig::default(), &rng());
        let mut r = rng();
        for _ in 0..50 {
            let p = dir.select_path_weighted(&mut r, 5);
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "distinct relays")]
    fn path_longer_than_directory_panics() {
        let dir = Directory::from_specs(vec![RelaySpec {
            bandwidth: Bandwidth::from_mbps(1),
            delay: SimDuration::ZERO,
        }]);
        let mut r = rng();
        let _ = dir.select_path_uniform(&mut r, 2);
    }

    #[test]
    fn log_uniform_bandwidths_span_decade() {
        let cfg = DirectoryConfig {
            relays: 300,
            bandwidth_mbps: (10.0, 100.0),
            delay_ms: (5.0, 15.0),
        };
        let dir = Directory::generate(&cfg, &rng());
        let low = dir
            .relays()
            .iter()
            .filter(|r| r.bandwidth.as_mbps_f64() < 31.6)
            .count();
        let frac = low as f64 / 300.0;
        assert!(
            (0.35..0.65).contains(&frac),
            "log-uniform: ~half below the geometric mean, got {frac}"
        );
    }
}
