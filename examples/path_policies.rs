//! The path-selection experiment: the same star network and web-like
//! churning workload, run once per selection policy over **identical
//! seeds**, with the per-flow completion CDFs compared side by side.
//!
//! This is the experimental axis the `PathSelection` seam exists for:
//! placement decides which relays become bottlenecks, so the four
//! shipped policies — uniform, Tor's bandwidth weighting, ShorTor-style
//! latency preference, and Imani-style congestion avoidance over live
//! load telemetry — produce visibly different completion distributions
//! from the very same relay population, congestion controller, and
//! request sequence.
//!
//! ```text
//! cargo run --release --example path_policies             # 16 circuits
//! cargo run --release --example path_policies -- 40 3     # bigger sweep
//! ```

use circuitstart::prelude::*;
use relaynet::selection::{all_policies, SelectionPolicy};
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, StarScenario};
use simstats::ascii::{plot_lines, PlotConfig};
use simstats::cdf::Cdf;
use simstats::sketch::QuantileSketch;

fn scenario(circuits: usize, selection: SelectionPolicy) -> StarScenario {
    StarScenario {
        circuits,
        relays_per_circuit: 3,
        file_bytes: 300_000,
        directory: DirectoryConfig {
            relays: 20,
            bandwidth_mbps: (15.0, 100.0),
            delay_ms: (2.0, 12.0),
        },
        // Multi-stream arrivals plus churn: rebuilds re-select through
        // the policy, so load-aware placement actually feeds back.
        workload: WorkloadSpec {
            streams_per_circuit: 3,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (10.0, 60.0),
            },
            churn: Some(ChurnSpec {
                teardown_after_ms: (50.0, 150.0),
                rebuild_delay_ms: 5.0,
                cycles: 1,
            }),
        },
        selection,
        ..Default::default()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let circuits: usize = args
        .next()
        .map(|a| a.parse().expect("circuit count"))
        .unwrap_or(16);
    let repetitions: u64 = args
        .next()
        .map(|a| a.parse().expect("repetitions"))
        .unwrap_or(1);

    let policies = all_policies();
    println!(
        "path_policies: {circuits} circuits × {repetitions} seed(s), 20 relays, \
         3 streams/circuit with on/off arrivals + 1 churn cycle"
    );
    // The ~p99/~p999 columns come from the streaming sketch each world
    // feeds as flows finish — within ±1% (its alpha) of the exact
    // sorted-sample values beside them, at fixed memory.
    println!(
        "\n{:>12}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>8}  {:>13}",
        "policy",
        "p50 [s]",
        "p90 [s]",
        "p99 [s]",
        "~p99 [s]",
        "p999 [s]",
        "~p999 [s]",
        "worst [s]",
        "rebuilds",
        "peak relay load"
    );

    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for policy in &policies {
        let mut samples: Vec<f64> = Vec::new();
        let mut sketch = QuantileSketch::default();
        let mut rebuilds = 0u64;
        let mut peak_load = 0u32;
        for rep in 0..repetitions {
            // Identical seeds across policies: same relay population,
            // same endpoints, same workload draws — placement is the
            // only thing that varies.
            let (mut sim, _) = scenario(circuits, policy.clone()).build(
                Algorithm::CircuitStart.factory(CcConfig::default()),
                42 + rep,
            );
            run_to_completion(&mut sim);
            let world = sim.world();
            assert_eq!(world.stats().protocol_errors, 0);
            rebuilds += world.stats().rebuilds;
            // High-water mark, not the end-of-run snapshot: churn
            // rebuilds away mid-run hotspots, and the hotspots are the
            // thing the policies differ on.
            peak_load = peak_load.max(
                world
                    .relay_load_hwms()
                    .expect("placement installed")
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0),
            );
            for f in world.flows() {
                assert!(f.complete(), "no policy may strand a flow");
                samples.push(f.completion_time().expect("complete").as_secs_f64());
            }
            // Cross-repetition aggregation is a bucket-wise merge, not a
            // concatenation — the order-independent scale path.
            sketch.merge(world.flow_completion_sketch());
        }
        let cdf = Cdf::from_samples(samples).expect("flows completed");
        assert_eq!(sketch.len() as usize, cdf.len());
        // p99/p999 collapse onto the max at small sample counts (lower
        // interpolation) — honest tail reporting needs enough flows.
        println!(
            "{:>12}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>8}  {:>13}",
            policy.name(),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.p99(),
            sketch.p99(),
            cdf.p999(),
            sketch.p999(),
            cdf.max(),
            rebuilds,
            peak_load,
        );
        series.push((policy.name().to_string(), cdf.points()));
    }

    let series_refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    let plot = plot_lines(
        &series_refs,
        &PlotConfig {
            width: 90,
            height: 22,
            title: "flow completion CDF by path-selection policy (identical seeds)".to_string(),
            x_label: "request-to-last-byte [s]".to_string(),
            y_label: "cumulative fraction".to_string(),
        },
    );
    println!("\n{plot}");
    println!(
        "(same seeds, same controller — only circuit placement differs; \
         see DESIGN.md §9 and the `policies` ablation)"
    );
}
