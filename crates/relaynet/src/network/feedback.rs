//! Pipeline stage — per-hop feedback (the BackTap/CircuitStart control
//! plane).
//!
//! A node owes its upstream neighbour a 20-byte feedback frame the moment
//! it takes one of that neighbour's cells *out* of a per-circuit queue —
//! by physically forwarding it (paid at `TxComplete`) or by consuming it
//! locally (paid immediately). Arriving feedback credits the matching hop
//! transport's window and re-runs the egress pump, which is the only way
//! windows grow: there are no end-to-end ACKs anywhere in the overlay.

use netsim::net::{Net, NodeId};
use simcore::sim::Context;

use torcell::cell::Feedback;

use crate::event::TorEvent;
use crate::ids::OverlayId;
use crate::node::PendingConfirm;
use crate::router::Router;
use crate::scheduler::LinkScheduler;
use crate::wire::{FramePayload, WireFrame};

use super::{TorNetwork, WorldStats};

impl TorNetwork {
    /// Emits a feedback frame to `cf.neighbor`, echoing that neighbour's
    /// per-hop sequence number for the cell being confirmed.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn send_feedback(
        net: &mut Net<WireFrame>,
        link_sched: &mut [LinkScheduler],
        router: &Router,
        net_node_of: &[NodeId],
        stats: &mut WorldStats,
        ctx: &mut Context<'_, TorEvent>,
        my_net: NodeId,
        cf: PendingConfirm,
    ) {
        let dst = net_node_of[cf.neighbor.index()];
        let frame = WireFrame {
            src: my_net,
            dst,
            payload: FramePayload::Feedback(Feedback {
                circ: cf.circ_id,
                seq: cf.seq,
            }),
            confirm: None,
        };
        Self::sched_send(
            net,
            link_sched,
            ctx,
            router.next_link(my_net, dst),
            frame,
            None,
        );
        stats.feedback_sent += 1;
    }

    /// A feedback frame arrived: credit the hop transport that sent the
    /// confirmed cell and pump that direction again.
    pub(super) fn on_feedback(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        to: OverlayId,
        from: OverlayId,
        fb: Feedback,
    ) {
        let Some((_circ, local, _)) = self.route_of(to, from, fb.circ) else {
            Self::stale_or_protocol_error(
                &self.faults,
                &mut self.stats,
                "feedback on unknown route",
            );
            return;
        };
        let node = &mut self.nodes[to.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let Some(dir) = nc.direction_toward(from) else {
            Self::protocol_error(&mut self.stats, "feedback from non-neighbour");
            return;
        };
        {
            let hopdir = nc.hopdir_toward_mut(from).expect("direction just resolved");
            if hopdir.transport.on_feedback(fb.seq, ctx.now()).is_err() {
                // Under faults this is a write-off racing its own late
                // feedback: a force-abandon forgets every outstanding
                // cell, then a confirm for one of them arrives.
                Self::stale_or_protocol_error(
                    &self.faults,
                    &mut self.stats,
                    "feedback with unknown sequence",
                );
                return;
            }
        }
        let closed = nc.closed;
        Self::pump_dir(
            &mut self.net,
            &mut self.link_sched,
            &self.router,
            &self.net_node_of,
            &mut self.stats,
            &mut self.payload_pool,
            ctx,
            my_net,
            nc,
            dir,
        );
        if closed {
            // This confirm may have been the last outstanding cell of a
            // torn-down circuit — check the quiescence condition.
            self.maybe_reclaim(ctx, to, local);
        }
    }
}
