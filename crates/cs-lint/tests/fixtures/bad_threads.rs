// cs-lint-fixture: path = "crates/relaynet/src/badthreads.rs"
use std::thread;

fn launch() {
    let h = thread::spawn(|| 1 + 1); //~ stray-threads
    std::thread::scope(|s| { //~ stray-threads
        let _ = s;
    });
    let _ = h;
}

// Executor-seam methods named `spawn` are not thread creation.
fn through_the_seam(pool: &Pool) {
    pool.spawn(job);
}

#[cfg(test)]
mod tests {
    #[test]
    fn watchdogs_are_test_harness() {
        // Test watchdog threads never touch world state: exempt.
        let h = std::thread::spawn(|| ());
        h.join().expect("watchdog joins");
    }
}
