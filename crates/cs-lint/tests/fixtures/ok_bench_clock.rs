// cs-lint-fixture: path = "crates/bench/src/harness_extra.rs"
// cs-bench is the one crate whose job is reading the host clock, and
// bench targets own their master seeds. ZERO findings.
use std::time::Instant;

fn measure() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}

fn stdout_report(rate: f64) {
    println!("rate {rate:>14.0}");
}
