//! Regenerates Figure 1 (upper panels): source congestion-window traces
//! with the bottleneck 1 and 3 hops from the source, for CircuitStart and
//! the "without CircuitStart" baselines, against the model-optimal dashed
//! line.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig1_cwnd
//! cargo run --release -p cs-bench --bin fig1_cwnd -- --distance 3 --seed 9
//! ```
//!
//! Prints the series the paper plots and writes
//! `target/figures/fig1_cwnd_d<k>_<algo>.dat` (columns: `time_ms
//! cwnd_kib optimal_kib`, time re-based to transfer start).

use circuitstart::prelude::*;
use cs_bench::{write_figure, Options};
use simstats::ascii::{plot_lines, PlotConfig};
use simstats::export::Table;

fn main() {
    let opts = Options::from_env();
    let seed: u64 = opts.get("seed", 1);
    let only_distance: i64 = opts.get("distance", -1);
    let distances: Vec<usize> = if only_distance >= 0 {
        vec![only_distance as usize]
    } else {
        vec![1, 3]
    };

    for distance in distances {
        println!("━━━ Figure 1 (upper), bottleneck distance {distance} hop(s) ━━━");
        let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        let mut optimal_kib = 0.0;
        let mut t_max: f64 = 0.0;

        for (label, algorithm) in [
            ("circuitstart", Algorithm::CircuitStart),
            ("classic slow start", Algorithm::ClassicBacktap),
        ] {
            let mut cfg = fig1_trace(distance, algorithm);
            cfg.seed = seed;
            let report = run_trace(&cfg);
            optimal_kib = report.optimal_kib();
            // Re-base time to transfer start, as the paper's axis does
            // (its traces begin when data starts flowing, not when the
            // circuit build begins).
            let t0 = report
                .result
                .first_data_at
                .expect("completed")
                .as_millis_f64();
            let rebased: Vec<(f64, f64)> = report
                .cwnd_kib_series()
                .into_iter()
                .map(|(t, v)| ((t - t0).max(0.0), v))
                .collect();

            println!(
                "\n  {label}: peak {} cells, settle(±35%) {}, transfer {}",
                report.peak_cwnd_cells(),
                report
                    .settling_time_ms(0.35)
                    .map(|ms| format!("{:.0} ms (abs)", ms))
                    .unwrap_or_else(|| "never".to_string()),
                report.result.transfer_time().expect("completed"),
            );
            println!("    time_ms  cwnd_kib   (optimal {optimal_kib:.1} KiB)");
            for &(t, v) in &rebased {
                println!("    {t:7.1}  {v:8.1}");
            }

            let mut table = Table::new(vec!["time_ms", "cwnd_kib", "optimal_kib"]);
            for &(t, v) in &rebased {
                table.push_row(&[t, v, optimal_kib]);
            }
            write_figure(
                &format!("fig1_cwnd_d{distance}_{}", report.algorithm_key),
                &table,
            );

            // Step-resample for the terminal plot.
            let mut ts = simstats::timeseries::TimeSeries::new();
            for &(t, v) in &rebased {
                ts.push(t, v);
            }
            let end = ts.end_time().unwrap_or(1.0).max(300.0);
            t_max = t_max.max(end);
            series.push((label, ts.resample(0.0, end, 150)));
        }

        let optimal_line: Vec<(f64, f64)> = (0..=150)
            .map(|i| (t_max * i as f64 / 150.0, optimal_kib))
            .collect();
        series.push(("optimal (model)", optimal_line));
        let plot = plot_lines(
            &series,
            &PlotConfig {
                width: 90,
                height: 22,
                title: format!(
                    "source cwnd [KiB] vs time since transfer start [ms] — distance {distance}"
                ),
                x_label: "time [ms]".into(),
                y_label: "cwnd [KiB]".into(),
            },
        );
        println!("\n{plot}");
    }
}
