// cs-lint-fixture: path = "crates/backtap/src/badunwrap.rs"
fn first_and_last(xs: &[u64]) -> u64 {
    xs.first().unwrap() + xs.last().unwrap() //~ no-bare-unwrap-in-lib //~ no-bare-unwrap-in-lib
}

fn named_invariant(xs: &[u64]) -> u64 {
    *xs.first().expect("caller guarantees a non-empty window")
}

fn with_defaults(x: Option<u64>) -> u64 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

fn annotated(x: Option<u64>) -> u64 {
    // cs-lint: allow(no-bare-unwrap-in-lib, reason = "Some() by construction two lines up")
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
