// cs-lint-fixture: path = "crates/simstats/src/bad.rs"
use std::time::SystemTime; //~ wall-clock
use std::time::Instant;

fn stamp() -> u64 {
    let t = Instant::now(); //~ wall-clock
    let _ = SystemTime::now(); //~ wall-clock
    let _ = t;
    0
}

// A bare `Instant` in type position is storage, not a clock read.
fn takes(deadline: Instant) -> Instant {
    deadline
}
