//! End-to-end integration: full circuit builds and transfers across
//! algorithms, path lengths, and file sizes, with the invariants every
//! healthy run must satisfy.

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::{PathScenario, StarScenario, WorldConfig};
use simcore::time::SimDuration;

fn hop(mbps: u64, delay_ms: u64) -> LinkConfig {
    LinkConfig::new(
        Bandwidth::from_mbps(mbps),
        SimDuration::from_millis(delay_ms),
    )
}

/// Runs one path transfer and applies the universal health checks.
fn run_path(
    hops: Vec<LinkConfig>,
    file_bytes: u64,
    algorithm: Algorithm,
    seed: u64,
) -> relaynet::CircuitResult {
    let scenario = PathScenario {
        hops,
        file_bytes,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(algorithm.factory(CcConfig::default()), seed);
    run_to_completion(&mut sim);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0, "protocol errors");
    assert_eq!(
        world.net().total_drops(),
        0,
        "backpressure must prevent drops"
    );
    let result = world.result_of(handles.circ);
    assert!(result.completed, "transfer must complete");
    assert_eq!(result.bytes_delivered, file_bytes);
    assert_eq!(result.payload_errors, 0, "onion layering must round-trip");
    result
}

#[test]
fn every_algorithm_completes_the_fig1_geometry() {
    for algorithm in [
        Algorithm::CircuitStart,
        Algorithm::AdaptiveCircuitStart,
        Algorithm::ClassicBacktap,
        Algorithm::JumpStart(64),
        Algorithm::FixedWindow(16),
        Algorithm::NoSlowStart,
    ] {
        let hops = vec![hop(100, 5), hop(20, 5), hop(100, 5), hop(100, 5)];
        let result = run_path(hops, 300_000, algorithm, 11);
        assert!(
            result.transfer_time().unwrap() > SimDuration::ZERO,
            "{algorithm:?}"
        );
    }
}

#[test]
fn path_lengths_from_one_to_six_relays() {
    for relays in 1..=6 {
        let hops = vec![hop(50, 3); relays + 1];
        let result = run_path(hops, 100_000, Algorithm::CircuitStart, relays as u64);
        assert_eq!(result.cells_delivered, 100_000u64.div_ceil(496));
    }
}

#[test]
fn file_sizes_from_one_byte_to_megabytes() {
    for &bytes in &[1u64, 495, 496, 497, 4_960, 123_456, 2 << 20] {
        let hops = vec![hop(60, 2), hop(30, 4), hop(60, 2)];
        let result = run_path(hops, bytes, Algorithm::CircuitStart, bytes);
        assert_eq!(result.bytes_delivered, bytes);
        assert_eq!(result.cells_delivered, bytes.div_ceil(496));
    }
}

#[test]
fn goodput_respects_the_analytical_ceiling() {
    let hops = vec![hop(100, 5), hop(20, 5), hop(100, 5), hop(100, 5)];
    let model = PathModel::from_hops(&hops);
    let result = run_path(hops, 2 << 20, Algorithm::CircuitStart, 5);
    let goodput = result.goodput_bps().unwrap();
    assert!(
        goodput <= model.max_goodput_bps() * 1.001,
        "goodput {goodput} exceeds the physical ceiling {}",
        model.max_goodput_bps()
    );
    // And a transfer long enough to amortize the ramp should get close.
    assert!(
        goodput >= model.max_goodput_bps() * 0.75,
        "goodput {goodput} too far below ceiling {}",
        model.max_goodput_bps()
    );
}

#[test]
fn transfer_time_bounded_below_by_the_model() {
    let hops = vec![hop(100, 5), hop(20, 5), hop(100, 5), hop(100, 5)];
    let model = PathModel::from_hops(&hops);
    let file = 1 << 20;
    let result = run_path(hops, file, Algorithm::CircuitStart, 9);
    let measured = result.transfer_time().unwrap();
    let ideal = model.ideal_transfer_time(file);
    assert!(
        measured >= ideal,
        "measured {measured} cannot beat the ideal pipeline {ideal}"
    );
    assert!(
        measured.as_secs_f64() <= ideal.as_secs_f64() * 1.5,
        "measured {measured} too far above ideal {ideal} — startup cost exploded"
    );
}

#[test]
fn asymmetric_delays_and_rates() {
    let hops = vec![hop(80, 1), hop(12, 20), hop(35, 2), hop(90, 8)];
    let result = run_path(hops, 400_000, Algorithm::CircuitStart, 13);
    assert!(result.completed);
}

#[test]
fn very_slow_bottleneck_still_completes() {
    let hops = vec![hop(100, 5), hop(2, 5), hop(100, 5)];
    let result = run_path(hops, 100_000, Algorithm::CircuitStart, 17);
    // 100 kB at ~1.94 Mbit/s goodput ≈ 0.41 s.
    let t = result.transfer_time().unwrap().as_secs_f64();
    assert!((0.4..1.0).contains(&t), "transfer time {t}");
}

#[test]
fn star_mixed_workload_all_complete() {
    let scenario = StarScenario {
        circuits: 8,
        file_bytes: 80_000,
        start_jitter_ms: 30.0,
        directory: relaynet::DirectoryConfig {
            relays: 10,
            bandwidth_mbps: (15.0, 80.0),
            delay_ms: (3.0, 10.0),
        },
        ..Default::default()
    };
    for algorithm in [Algorithm::CircuitStart, Algorithm::ClassicBacktap] {
        let (mut sim, circuits) = scenario.build(algorithm.factory(CcConfig::default()), 23);
        run_to_completion(&mut sim);
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0);
        assert_eq!(world.net().total_drops(), 0);
        for c in circuits {
            let r = world.result_of(c);
            assert!(r.completed, "{algorithm:?} {c:?}");
            assert_eq!(r.payload_errors, 0);
        }
    }
}

#[test]
fn every_selection_policy_also_runs() {
    for selection in relaynet::selection::all_policies() {
        let scenario = StarScenario {
            circuits: 5,
            file_bytes: 40_000,
            selection: selection.clone(),
            directory: relaynet::DirectoryConfig {
                relays: 8,
                bandwidth_mbps: (10.0, 100.0),
                delay_ms: (3.0, 8.0),
            },
            ..Default::default()
        };
        let (mut sim, circuits) =
            scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 31);
        run_to_completion(&mut sim);
        let world = sim.world();
        assert_eq!(world.selection_policy_name(), Some(selection.name()));
        // Every live circuit is in the load view: 5 circuits × 3 relays.
        let loads = world.relay_loads().expect("placement installed");
        assert_eq!(loads.iter().map(|&l| u64::from(l)).sum::<u64>(), 15);
        for c in circuits {
            assert!(world.result_of(c).completed, "{}", selection.name());
        }
    }
}

#[test]
fn feedback_volume_matches_cell_volume() {
    // Every accepted cell is confirmed exactly once (forwarded or
    // consumed), so feedback frames == cell frames at quiescence.
    let scenario = PathScenario {
        hops: vec![hop(50, 3); 4],
        file_bytes: 50_000,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, _) = scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 3);
    run_to_completion(&mut sim);
    let stats = sim.world().stats();
    assert_eq!(
        stats.feedback_sent, stats.cells_sent,
        "one feedback per transmitted cell"
    );
}
