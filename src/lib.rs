//! Root package: examples and integration tests live here; the library
//! surface is re-exported from the workspace crates.
#![forbid(unsafe_code)]
pub use circuitstart;
pub use relaynet;
