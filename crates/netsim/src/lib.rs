//! # netsim — packet-level network substrate
//!
//! The CircuitStart reproduction's stand-in for ns-3's point-to-point
//! models: nodes connected by simplex rate/delay links with drop-tail
//! egress queues, simulated to the nanosecond on top of [`simcore`].
//!
//! ## Pieces
//!
//! * [`bandwidth`] — [`Bandwidth`](bandwidth::Bandwidth) and exact
//!   serialization-time arithmetic.
//! * [`frame`] — the [`Frame`](frame::Frame) trait (a frame only needs a
//!   wire size; higher layers define content and routing).
//! * [`link`] — link configuration, drop-tail queue policies, telemetry.
//! * [`net`] — the [`Net`](net::Net) state machine (send → serialize →
//!   propagate → deliver) and its two events.
//! * [`topology`] — canonical shapes: path, star (nstor's "Internet"
//!   abstraction), dumbbell.
//!
//! ## Timing model
//!
//! Store-and-forward, exactly like ns-3's point-to-point channel: a
//! `b`-byte frame sent at `t` on an idle link of rate `r` and delay `d`
//! arrives at `t + 8b/r + d`; a busy link queues the frame first. There is
//! no implicit per-hop processing delay — relays add their own if desired.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod frame;
pub mod link;
pub mod net;
pub mod topology;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bandwidth::Bandwidth;
    pub use crate::frame::{Frame, RawFrame};
    pub use crate::link::{LinkConfig, LinkId, LinkStats, QueueLimit};
    pub use crate::net::{Net, NetEvent, NodeId, SendOutcome};
    pub use crate::topology::{AccessConfig, Dumbbell, Path, Star};
}

pub use bandwidth::Bandwidth;
pub use frame::{Frame, RawFrame};
pub use link::{LinkConfig, LinkId, LinkStats, QueueLimit};
pub use net::{Net, NetEvent, NodeId, SendOutcome};
pub use topology::{AccessConfig, Dumbbell, Path, Star};
