//! Per-hop transport bookkeeping.
//!
//! One [`HopTransport`] instance exists per (node, circuit, direction):
//! it owns the congestion controller for the hop toward the successor and
//! does everything the controller should not have to: sequence-number
//! assignment, send-timestamp tracking, RTT computation, base-RTT
//! maintenance, statistics, and optional cwnd tracing.
//!
//! The relay/client logic drives it with exactly two calls:
//!
//! * [`HopTransport::register_send`] just before handing a cell to the
//!   link layer (this is the instant the RTT clock starts — deliberately
//!   *before* any queueing on the node's own access link).
//! * [`HopTransport::on_feedback`] when the successor's feedback frame for
//!   a cell arrives.

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};

use crate::cc::{CongestionControl, Phase};
use crate::rtt::RttEstimator;

/// Feedback-processing failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FeedbackError {
    /// Feedback named a sequence number that is not outstanding (never
    /// sent, or already fed back) — a protocol violation upstream.
    UnknownSeq(u64),
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackError::UnknownSeq(s) => write!(f, "feedback for unknown sequence {s}"),
        }
    }
}

impl std::error::Error for FeedbackError {}

/// Hop-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HopStats {
    /// Cells registered for sending.
    pub cells_sent: u64,
    /// Valid feedback messages processed.
    pub feedback_received: u64,
    /// Feedback messages rejected (unknown/duplicate sequence).
    pub bad_feedback: u64,
    /// Cells retired without feedback ([`HopTransport::forget`]) —
    /// registered sends that were discarded unsent at teardown.
    pub cells_forgotten: u64,
}

/// Transport state for one hop of one circuit (see module docs).
pub struct HopTransport {
    cc: Box<dyn CongestionControl + Send>,
    next_seq: u64,
    /// Cells sent but not yet fed back, ordered by sequence number
    /// (sends are monotone). Feedback almost always arrives in order, so
    /// the front is a hit and the map stays an O(1) ring — no hashing on
    /// the per-cell path.
    in_flight: VecDeque<(u64, SimTime)>,
    rtt: RttEstimator,
    stats: HopStats,
    cwnd_trace: Option<Vec<(SimTime, u32)>>,
    rtt_trace: Option<Vec<(SimTime, u64, SimDuration)>>,
}

impl HopTransport {
    /// Wraps a congestion controller.
    pub fn new(cc: Box<dyn CongestionControl + Send>) -> HopTransport {
        HopTransport {
            cc,
            next_seq: 0,
            in_flight: VecDeque::new(),
            rtt: RttEstimator::new(),
            stats: HopStats::default(),
            cwnd_trace: None,
            rtt_trace: None,
        }
    }

    /// Starts recording `(time, cwnd)` whenever the window changes, with an
    /// initial sample at `now`. Used for the Figure 1 traces.
    pub fn enable_cwnd_trace(&mut self, now: SimTime) {
        self.cwnd_trace = Some(vec![(now, self.cc.cwnd())]);
    }

    /// The recorded window trace, if tracing was enabled.
    pub fn cwnd_trace(&self) -> Option<&[(SimTime, u32)]> {
        self.cwnd_trace.as_deref()
    }

    /// Starts recording `(feedback time, seq, rtt)` for every feedback —
    /// the raw per-hop timing data behind the paper's "elaborate analysis
    /// of the timing information gathered".
    pub fn enable_rtt_trace(&mut self) {
        self.rtt_trace = Some(Vec::new());
    }

    /// The recorded RTT samples, if tracing was enabled.
    pub fn rtt_trace(&self) -> Option<&[(SimTime, u64, SimDuration)]> {
        self.rtt_trace.as_deref()
    }

    /// Whether the controller permits sending another cell now.
    pub fn can_send(&self) -> bool {
        self.cc.allow_send(self.outstanding())
    }

    /// Registers a send and returns the per-hop sequence number to attach
    /// to the cell. The RTT clock for this cell starts now.
    ///
    /// # Panics
    ///
    /// Panics if called while [`HopTransport::can_send`] is false — the
    /// caller must gate on it; sending past the window would silently
    /// defeat the protocol under test.
    pub fn register_send(&mut self, now: SimTime) -> u64 {
        assert!(
            self.can_send(),
            "register_send called while the window is closed ({} outstanding, cwnd {})",
            self.outstanding(),
            self.cwnd()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.push_back((seq, now));
        self.stats.cells_sent += 1;
        self.cc.on_sent(seq, now);
        self.trace_cwnd(now);
        seq
    }

    /// Processes the successor's feedback for cell `seq`, returning the
    /// RTT sample on success.
    pub fn on_feedback(&mut self, seq: u64, now: SimTime) -> Result<SimDuration, FeedbackError> {
        let sent_at = match self.in_flight.front() {
            Some(&(s, t)) if s == seq => {
                self.in_flight.pop_front();
                t
            }
            _ => match self.in_flight.binary_search_by_key(&seq, |&(s, _)| s) {
                Ok(idx) => self.in_flight.remove(idx).expect("index in range").1,
                Err(_) => {
                    self.stats.bad_feedback += 1;
                    return Err(FeedbackError::UnknownSeq(seq));
                }
            },
        };
        let rtt = now.saturating_duration_since(sent_at);
        self.rtt.record(rtt);
        if let Some(trace) = &mut self.rtt_trace {
            trace.push((now, seq, rtt));
        }
        let base = self.rtt.base().expect("just recorded a sample");
        self.stats.feedback_received += 1;
        self.cc.on_feedback(seq, rtt, base, now);
        self.trace_cwnd(now);
        Ok(rtt)
    }

    /// Retires cell `seq` from the in-flight set **without** a feedback
    /// round trip: no RTT sample, no controller callback, no trace
    /// entry. For teardown only — a registered cell that was discarded
    /// from an egress queue before ever reaching the wire has no
    /// neighbour to confirm it, and leaving it outstanding would block
    /// the quiescence proof forever. Returns `false` if `seq` was not
    /// outstanding (already fed back or never sent).
    pub fn forget(&mut self, seq: u64) -> bool {
        let removed = match self.in_flight.front() {
            Some(&(s, _)) if s == seq => {
                self.in_flight.pop_front();
                true
            }
            _ => match self.in_flight.binary_search_by_key(&seq, |&(s, _)| s) {
                Ok(idx) => {
                    self.in_flight.remove(idx);
                    true
                }
                Err(_) => false,
            },
        };
        if removed {
            self.stats.cells_forgotten += 1;
        }
        removed
    }

    /// Retires **every** outstanding cell at once, with the same
    /// semantics as [`HopTransport::forget`] (no RTT sample, no
    /// controller callback, no trace entry). For force-abandon: when the
    /// neighbour has crashed, none of the in-flight cells will ever be
    /// fed back, and the circuit cannot reach quiescence until they are
    /// written off wholesale. Returns how many cells were forgotten.
    pub fn forget_all(&mut self) -> u32 {
        let forgotten = u32::try_from(self.in_flight.len()).expect("outstanding exceeds u32");
        self.in_flight.clear();
        self.stats.cells_forgotten += u64::from(forgotten);
        forgotten
    }

    /// Cells sent but not yet fed back.
    pub fn outstanding(&self) -> u32 {
        u32::try_from(self.in_flight.len()).expect("outstanding exceeds u32")
    }

    /// Current congestion window.
    pub fn cwnd(&self) -> u32 {
        self.cc.cwnd()
    }

    /// Current controller phase.
    pub fn phase(&self) -> Phase {
        self.cc.phase()
    }

    /// Controller name.
    pub fn algorithm(&self) -> &'static str {
        self.cc.name()
    }

    /// Minimum RTT observed on this hop, if any.
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.rtt.base()
    }

    /// Full RTT statistics.
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Transport counters.
    pub fn stats(&self) -> &HopStats {
        &self.stats
    }

    /// The next sequence number that will be assigned (== cells sent).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Access to the controller for algorithm-specific inspection.
    pub fn controller(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    fn trace_cwnd(&mut self, now: SimTime) {
        if let Some(trace) = &mut self.cwnd_trace {
            let cwnd = self.cc.cwnd();
            if trace.last().map(|&(_, c)| c) != Some(cwnd) {
                trace.push((now, cwnd));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{FixedWindowCc, HalvingExit};
    use crate::config::CcConfig;
    use crate::delay_cc::DelayCc;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn fixed(cwnd: u32) -> HopTransport {
        HopTransport::new(Box::new(FixedWindowCc::new(cwnd)))
    }

    #[test]
    fn sequences_are_consecutive() {
        let mut h = fixed(10);
        assert_eq!(h.register_send(t(0)), 0);
        assert_eq!(h.register_send(t(0)), 1);
        assert_eq!(h.register_send(t(0)), 2);
        assert_eq!(h.next_seq(), 3);
        assert_eq!(h.stats().cells_sent, 3);
    }

    #[test]
    fn window_gates_sending() {
        let mut h = fixed(2);
        assert!(h.can_send());
        h.register_send(t(0));
        h.register_send(t(0));
        assert!(!h.can_send());
        assert_eq!(h.outstanding(), 2);
        h.on_feedback(0, t(5)).unwrap();
        assert!(h.can_send());
        assert_eq!(h.outstanding(), 1);
    }

    #[test]
    #[should_panic(expected = "window is closed")]
    fn send_past_window_panics() {
        let mut h = fixed(1);
        h.register_send(t(0));
        h.register_send(t(0));
    }

    #[test]
    fn rtt_measured_from_send_to_feedback() {
        let mut h = fixed(5);
        h.register_send(t(10));
        let rtt = h.on_feedback(0, t(25)).unwrap();
        assert_eq!(rtt, SimDuration::from_millis(15));
        assert_eq!(h.base_rtt(), Some(SimDuration::from_millis(15)));
        assert_eq!(h.rtt().count(), 1);
    }

    #[test]
    fn base_rtt_is_minimum_across_cells() {
        let mut h = fixed(5);
        h.register_send(t(0));
        h.register_send(t(0));
        h.register_send(t(0));
        h.on_feedback(0, t(20)).unwrap(); // 20 ms
        h.on_feedback(1, t(12)).unwrap(); // 12 ms
        h.on_feedback(2, t(30)).unwrap(); // 30 ms
        assert_eq!(h.base_rtt(), Some(SimDuration::from_millis(12)));
    }

    #[test]
    fn unknown_feedback_rejected_and_counted() {
        let mut h = fixed(5);
        h.register_send(t(0));
        assert_eq!(h.on_feedback(99, t(1)), Err(FeedbackError::UnknownSeq(99)));
        assert_eq!(h.stats().bad_feedback, 1);
        // Valid one still works afterwards.
        assert!(h.on_feedback(0, t(1)).is_ok());
    }

    #[test]
    fn duplicate_feedback_rejected() {
        let mut h = fixed(5);
        h.register_send(t(0));
        h.on_feedback(0, t(1)).unwrap();
        assert_eq!(h.on_feedback(0, t(2)), Err(FeedbackError::UnknownSeq(0)));
        assert_eq!(h.stats().feedback_received, 1);
        assert_eq!(h.stats().bad_feedback, 1);
    }

    #[test]
    fn forget_retires_without_feedback_side_effects() {
        let mut h = fixed(5);
        h.register_send(t(0));
        h.register_send(t(0));
        h.register_send(t(0));
        // Retire the tail (the scheduler-drain shape: newest cells never
        // reached the wire), out of order relative to the front.
        assert!(h.forget(2));
        assert!(h.forget(1));
        assert!(!h.forget(1), "double-forget is a no-op");
        assert!(!h.forget(99), "unknown seq is a no-op");
        assert_eq!(h.outstanding(), 1);
        assert_eq!(h.stats().cells_forgotten, 2);
        // No RTT sample, no feedback count, and the surviving in-flight
        // cell still confirms normally.
        assert_eq!(h.rtt().count(), 0);
        assert_eq!(h.stats().feedback_received, 0);
        assert!(h.on_feedback(0, t(9)).is_ok());
        assert_eq!(h.outstanding(), 0);
        // A forgotten cell can no longer be confirmed.
        assert_eq!(h.on_feedback(2, t(9)), Err(FeedbackError::UnknownSeq(2)));
    }

    #[test]
    fn forget_all_writes_off_every_outstanding_cell() {
        let mut h = fixed(5);
        h.register_send(t(0));
        h.register_send(t(0));
        h.register_send(t(0));
        h.on_feedback(0, t(4)).unwrap();
        assert_eq!(h.forget_all(), 2);
        assert_eq!(h.outstanding(), 0);
        assert_eq!(h.stats().cells_forgotten, 2);
        assert_eq!(h.forget_all(), 0, "idempotent on an empty set");
        // No RTT/controller side effects beyond the one real feedback.
        assert_eq!(h.rtt().count(), 1);
        assert_eq!(h.stats().feedback_received, 1);
        // Forgotten cells can no longer confirm.
        assert_eq!(h.on_feedback(1, t(9)), Err(FeedbackError::UnknownSeq(1)));
    }

    #[test]
    fn out_of_order_feedback_is_fine() {
        let mut h = fixed(5);
        h.register_send(t(0));
        h.register_send(t(0));
        h.on_feedback(1, t(4)).unwrap();
        h.on_feedback(0, t(5)).unwrap();
        assert_eq!(h.outstanding(), 0);
    }

    #[test]
    fn cwnd_trace_records_changes_only() {
        let cc = DelayCc::with_ramp("t", CcConfig::default(), Box::new(HalvingExit));
        let mut h = HopTransport::new(Box::new(cc));
        h.enable_cwnd_trace(t(0));
        // Round 1: train of 2, clean feedback → double at second feedback.
        h.register_send(t(0));
        h.register_send(t(0));
        h.on_feedback(0, t(10)).unwrap();
        h.on_feedback(1, t(10)).unwrap();
        let trace = h.cwnd_trace().unwrap();
        assert_eq!(trace, &[(t(0), 2), (t(10), 4)]);
    }

    #[test]
    fn trace_disabled_by_default() {
        let h = fixed(2);
        assert!(h.cwnd_trace().is_none());
    }

    #[test]
    fn delay_cc_full_ramp_through_transport() {
        // End-to-end sanity: flat RTTs, the transport should double per
        // round: 2 → 4 → 8 with the controller driving train boundaries.
        let cc = DelayCc::with_ramp("t", CcConfig::default(), Box::new(HalvingExit));
        let mut h = HopTransport::new(Box::new(cc));
        let mut now = SimTime::ZERO;
        for expected in [2u32, 4, 8] {
            assert_eq!(h.cwnd(), expected);
            let first = h.next_seq();
            while h.can_send() {
                h.register_send(now);
            }
            let sent = h.next_seq() - first;
            assert_eq!(sent, u64::from(expected), "train size == cwnd");
            now += SimDuration::from_millis(10);
            for seq in first..first + sent {
                h.on_feedback(seq, now).unwrap();
            }
        }
        assert_eq!(h.cwnd(), 16);
        assert_eq!(h.phase(), Phase::SlowStart);
    }

    #[test]
    fn delay_cc_ramp_exit_through_transport() {
        // Constant base from round 1; round 2's feedback is delayed enough
        // to trip γ; transport must land in CA with the halved window.
        let cc = DelayCc::with_ramp("t", CcConfig::default(), Box::new(HalvingExit));
        let mut h = HopTransport::new(Box::new(cc));
        // Round 1 (cwnd 2) at base RTT 10 ms.
        h.register_send(t(0));
        h.register_send(t(0));
        h.on_feedback(0, t(10)).unwrap();
        h.on_feedback(1, t(10)).unwrap();
        assert_eq!(h.cwnd(), 4);
        // Round 2: RTT 30 ms ⇒ diff = 4·(30/10−1) = 8 > γ → exit at first
        // feedback, compensation = halve(4) = 2.
        let first = h.next_seq();
        while h.can_send() {
            h.register_send(t(20));
        }
        h.on_feedback(first, t(50)).unwrap();
        assert_eq!(h.phase(), Phase::CongestionAvoidance);
        assert_eq!(h.cwnd(), 2);
        assert_eq!(h.algorithm(), "t");
    }
}
