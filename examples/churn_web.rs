//! Churn + web-workload demo: circuits that multiplex several streams,
//! receive bursty on/off requests, tear down mid-experiment, and rebuild
//! — the scenario family the workload engine exists for.
//!
//! Six clients run 4-stream web-like workloads over a shared relay star;
//! every circuit is torn down twice mid-run (DESTROY racing in-flight
//! DATA) and rebuilt, with its unfinished flows re-attached. Prints the
//! per-stream completion CDF, the churn ledger, and the slot/pool
//! reclamation telemetry that proves teardown leaks nothing.
//!
//! ```text
//! cargo run --release --example churn_web
//! ```

use circuitstart::prelude::*;
use relaynet::builder::StarScenario;
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::DirectoryConfig;

fn main() {
    let scenario = StarScenario {
        circuits: 6,
        file_bytes: 400_000,
        directory: DirectoryConfig {
            relays: 10,
            bandwidth_mbps: (20.0, 80.0),
            delay_ms: (2.0, 8.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 4,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (20.0, 120.0),
            },
            churn: Some(ChurnSpec {
                teardown_after_ms: (60.0, 200.0),
                rebuild_delay_ms: 15.0,
                cycles: 2,
            }),
        },
        ..Default::default()
    };
    println!("churn_web: 6 circuits x 4 streams, on/off arrivals, 2 teardown/rebuild cycles");

    let (mut sim, circuits) =
        scenario.build(Algorithm::CircuitStart.factory(CcConfig::default()), 42);
    run_to_completion(&mut sim);
    let world = sim.world();

    // -- workload outcome ------------------------------------------------
    let stats = world.stats();
    assert_eq!(stats.protocol_errors, 0, "healthy runs have no violations");
    let mut delivered = 0u64;
    let mut requested = 0u64;
    for f in world.flows() {
        assert!(f.complete(), "churn must never strand a flow");
        delivered += f.delivered;
        requested += f.requested;
    }
    println!("\nflows ({} total):", world.flows().len());
    println!("  requested        : {requested} bytes");
    println!("  delivered        : {delivered} bytes (conserved across churn)");
    let cdf = world.flow_completion_cdf().expect("completed flows");
    println!("\nper-stream completion times (request -> last byte):");
    println!("  p10   : {:7.1} ms", cdf.quantile(0.10) * 1e3);
    println!("  median: {:7.1} ms", cdf.median() * 1e3);
    println!("  p90   : {:7.1} ms", cdf.quantile(0.90) * 1e3);
    println!("  max   : {:7.1} ms", cdf.max() * 1e3);

    // -- churn ledger ----------------------------------------------------
    println!("\nchurn:");
    println!(
        "  incarnations     : {} ({} initial + {} rebuilds)",
        world.circuit_count(),
        circuits.len(),
        stats.rebuilds
    );
    println!("  DESTROYs sent    : {}", stats.destroys_sent);
    println!(
        "  cells dropped    : {} (arrived on a closed circuit)",
        stats.cells_dropped_closed
    );
    println!(
        "  cells drained    : {} (queued at teardown)",
        stats.cells_drained
    );

    // -- reclamation telemetry ------------------------------------------
    println!("\nreclamation:");
    println!("  slots reclaimed  : {}", stats.slots_reclaimed);
    println!(
        "  route table      : {} slots, {} on the free list",
        world.link_route_slots(),
        world.free_link_routes()
    );
    let (allocated, reused) = world.payload_pool().stats();
    println!(
        "  payload pool     : {} allocated, {} reused, {}/{} returned",
        allocated,
        reused,
        world.payload_pool().returned(),
        world.payload_pool().acquired()
    );
    assert_eq!(
        world.payload_pool().returned(),
        world.payload_pool().acquired(),
        "every in-flight buffer must come home"
    );
    // Spot-check slot books on the first client.
    let client = world.circuit_info(circuits[0]).path[0];
    let node = world.node(client);
    println!(
        "  client-0 slab    : {} slots ({} live, {} free)",
        node.slab_len(),
        node.circuit_count(),
        node.free_slot_count()
    );
    println!("\nok: deterministic churn workload, no leaks, no protocol errors");
}
