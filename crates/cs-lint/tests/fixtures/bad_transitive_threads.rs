// cs-lint-fixture: path = "crates/relaynet/src/badspawn.rs"
// Thread creation laundered through a helper fires at each caller
// that reaches it — through free-fn calls, method calls resolved by
// unique name, and `self.` calls alike.

fn fan_out() {
    let h = std::thread::spawn(|| ()); //~ stray-threads
    let _ = h;
}

pub struct Driver;

impl Driver {
    pub fn run(&self) {
        fan_out(); //~ transitive-threads
    }

    pub fn run_twice(&self) {
        self.run(); //~ transitive-threads
        let _ = 0;
    }
}

pub fn drive(d: &Driver) {
    d.run(); //~ transitive-threads
}
