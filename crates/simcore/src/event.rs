//! The pending-event queue.
//!
//! A thin wrapper around [`BinaryHeap`] that turns it into a *stable*
//! min-priority queue keyed on [`SimTime`]: events scheduled for the same
//! instant are popped in the order they were pushed (FIFO tie-breaking via a
//! monotonically increasing sequence number). Stability is what makes the
//! whole simulator deterministic — `BinaryHeap` alone makes no ordering
//! guarantee for equal keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, unique within one simulation run.
///
/// Returned by [`EventQueue::push`] so callers can later cancel the event
/// (see [`crate::sim::Simulator::cancel`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

// Order entries so that the *earliest* (time, id) pair is the heap maximum,
// because `BinaryHeap` is a max-heap.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, id) compares greater.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// A stable min-priority queue of timestamped events.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early-second");
///
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((1, "early")));
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((1, "early-second")));
/// assert_eq!(q.pop().map(|(t, _, e)| (t.as_millis(), e)), Some((2, "late")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Largest number of simultaneously pending events ever observed.
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with space for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` at absolute time `time` and returns its id.
    ///
    /// Events with equal timestamps are delivered in push order.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Entry { time, id, event });
        self.high_water = self.high_water.max(self.heap.len());
        id
    }

    /// Removes and returns the earliest event as `(time, id, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.heap.pop().map(|e| (e.time, e.id, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events observed so far.
    /// Useful for sizing and for detecting event-storm bugs.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Total number of events ever pushed.
    pub fn pushed_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// ids remain unique within the run).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ms(30), 'c');
        q.push(ms(10), 'a');
        q.push(ms(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(ms(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_equal_and_unequal() {
        let mut q = EventQueue::new();
        q.push(ms(1), "t1-first");
        q.push(ms(0), "t0");
        q.push(ms(1), "t1-second");
        assert_eq!(q.pop().unwrap().2, "t0");
        assert_eq!(q.pop().unwrap().2, "t1-first");
        assert_eq!(q.pop().unwrap().2, "t1-second");
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let a = q.push(ms(1), ());
        let b = q.push(ms(0), ());
        assert!(b.as_u64() > a.as_u64());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(ms(7), ());
        assert_eq!(q.peek_time(), Some(ms(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(ms(1), ());
        q.push(ms(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(ms(i), ());
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(ms(9), ());
        assert_eq!(q.high_water_mark(), 5);
        assert_eq!(q.pushed_total(), 6);
    }

    #[test]
    fn clear_keeps_id_counter() {
        let mut q = EventQueue::new();
        q.push(ms(1), ());
        q.clear();
        assert!(q.is_empty());
        let id = q.push(ms(1), ());
        assert_eq!(id.as_u64(), 1);
    }

    #[test]
    fn large_randomish_workload_sorted() {
        // Pseudo-random but deterministic insertion order.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(SimTime::from_nanos(x % 10_000), x);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
