//! Static next-hop routing between network nodes.
//!
//! Overlay nodes address frames to the *network* node of the adjacent
//! overlay hop. In the path topology that node is directly connected; in
//! the star topology the frame crosses the hub, which forwards it using
//! this table. Routes are computed once at build time — topologies are
//! static for the lifetime of an experiment.

use std::collections::HashMap;

use netsim::link::LinkId;
use netsim::net::NodeId;

/// A `(current node, final destination) → outgoing link` table.
#[derive(Clone, Debug, Default)]
pub struct Router {
    next: HashMap<(NodeId, NodeId), LinkId>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Installs a route: at `at`, frames for `dst` leave via `link`.
    ///
    /// # Panics
    ///
    /// Panics if the pair already has a different route — conflicting
    /// routes mean a topology-construction bug.
    pub fn install(&mut self, at: NodeId, dst: NodeId, link: LinkId) {
        let prev = self.next.insert((at, dst), link);
        assert!(
            prev.is_none() || prev == Some(link),
            "conflicting route installed at {at:?} for {dst:?}"
        );
    }

    /// The outgoing link at `at` for frames addressed to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if no route exists — frames must never be addressed to
    /// unreachable nodes.
    pub fn next_link(&self, at: NodeId, dst: NodeId) -> LinkId {
        *self
            .next
            .get(&(at, dst))
            .unwrap_or_else(|| panic!("no route from {at:?} to {dst:?}"))
    }

    /// Like [`Router::next_link`] but returns `None` instead of panicking.
    pub fn try_next_link(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next.get(&(at, dst)).copied()
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// `true` if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireFrame;
    use netsim::bandwidth::Bandwidth;
    use netsim::link::LinkConfig;
    use netsim::net::Net;
    use simcore::time::SimDuration;

    fn tiny_net() -> (Net<WireFrame>, Vec<NodeId>, Vec<LinkId>) {
        let mut net = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let c = net.add_node("c");
        let cfg = LinkConfig::new(Bandwidth::from_mbps(1), SimDuration::ZERO);
        let ab = net.add_link(a, b, cfg);
        let bc = net.add_link(b, c, cfg);
        (net, vec![a, b, c], vec![ab, bc])
    }

    #[test]
    fn install_and_lookup() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[1], nodes[2], links[1]);
        assert_eq!(r.next_link(nodes[0], nodes[2]), links[0]);
        assert_eq!(r.next_link(nodes[1], nodes[2]), links[1]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn reinstalling_same_route_is_ok() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[0], nodes[2], links[0]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting route")]
    fn conflicting_route_panics() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[2], links[0]);
        r.install(nodes[0], nodes[2], links[1]);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let (_, nodes, _) = tiny_net();
        let r = Router::new();
        let _ = r.next_link(nodes[0], nodes[1]);
    }

    #[test]
    fn try_next_link_is_total() {
        let (_, nodes, links) = tiny_net();
        let mut r = Router::new();
        r.install(nodes[0], nodes[1], links[0]);
        assert_eq!(r.try_next_link(nodes[0], nodes[1]), Some(links[0]));
        assert_eq!(r.try_next_link(nodes[1], nodes[0]), None);
    }
}
