//! Byte-exact wire codec for cells and feedback frames.
//!
//! Layout (all integers big-endian, as in Tor's link protocol):
//!
//! ```text
//! Cell (512 bytes):
//!   [0..4)    circuit id (u32)
//!   [4..5)    command (u8)
//!   [5..512)  payload, zero-padded:
//!     CREATE/CREATED: 16-byte handshake blob
//!     DESTROY:        1-byte reason
//!     RELAY:          relay sub-header + data
//!       [0..1)   relay command (u8)
//!       [1..3)   'recognized' (u16, always 0 at the recognizing hop)
//!       [3..5)   stream id (u16)
//!       [5..9)   digest (u32)
//!       [9..11)  data length (u16)
//!       [11..]   data, then zero padding
//!
//! Feedback (20 bytes):
//!   [0..4)    magic 0x4642_434B ("FBCK")
//!   [4..8)    circuit id (u32)
//!   [8..16)   cell sequence (u64)
//!   [16..20)  FNV-1a-32 checksum of bytes [0..16)
//! ```
//!
//! The simulator normally moves *structured* cells between nodes for
//! speed; the codec is exercised at the application boundaries, in
//! property tests (round-trip for every representable cell), and in the
//! codec throughput bench, guaranteeing the structured shortcut is
//! equivalence-preserving.
//!
//! Encoding writes into plain `Vec<u8>` buffers; the crate carries no
//! external byte-buffer dependency.

#[cfg(test)]
use crate::cell::RELAY_HEADER_LEN;
use crate::cell::{
    Cell, CellBody, CellCommand, Feedback, RelayCell, RelayCommand, CELL_LEN, CELL_PAYLOAD_LEN,
    FEEDBACK_WIRE_LEN, HANDSHAKE_LEN, RELAY_DATA_MAX,
};
use crate::ids::{CircuitId, StreamId};

/// Feedback frame magic bytes ("FBCK").
pub const FEEDBACK_MAGIC: u32 = 0x4642_434B;

/// A big-endian cursor over an immutable byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        head
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Decoding failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Input was not exactly the expected frame length.
    WrongLength {
        /// Bytes required.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
    /// The cell command byte is not assigned.
    UnknownCommand(u8),
    /// The relay command byte is not assigned.
    UnknownRelayCommand(u8),
    /// The 'recognized' field of a relay cell was non-zero — the payload
    /// is still wrapped in at least one onion layer and must not be parsed
    /// here.
    NotRecognized(u16),
    /// The relay data length field exceeds [`RELAY_DATA_MAX`].
    BadRelayLength(u16),
    /// A feedback frame did not start with [`FEEDBACK_MAGIC`].
    BadMagic(u32),
    /// A feedback frame failed its checksum.
    BadChecksum {
        /// Checksum in the frame.
        stored: u32,
        /// Checksum recomputed from the frame contents.
        computed: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::WrongLength { expected, got } => {
                write!(f, "wrong frame length: expected {expected}, got {got}")
            }
            CodecError::UnknownCommand(c) => write!(f, "unknown cell command {c}"),
            CodecError::UnknownRelayCommand(c) => write!(f, "unknown relay command {c}"),
            CodecError::NotRecognized(v) => {
                write!(f, "relay cell not recognized (recognized field = {v:#06x})")
            }
            CodecError::BadRelayLength(l) => write!(f, "relay length {l} exceeds maximum"),
            CodecError::BadMagic(m) => write!(f, "bad feedback magic {m:#010x}"),
            CodecError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "feedback checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a cell to its exact 512-byte wire form.
pub fn encode_cell(cell: &Cell) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CELL_LEN);
    buf.extend_from_slice(&cell.circ.0.to_be_bytes());
    buf.push(cell.command().to_wire());
    match &cell.body {
        CellBody::Create { handshake } | CellBody::Created { handshake } => {
            buf.extend_from_slice(handshake);
        }
        CellBody::Destroy { reason } => {
            buf.push(*reason);
        }
        CellBody::Padding => {}
        CellBody::Relay(rc) => {
            debug_assert!(rc.data.len() <= RELAY_DATA_MAX);
            buf.push(rc.cmd.to_wire());
            buf.extend_from_slice(&0u16.to_be_bytes()); // recognized
            buf.extend_from_slice(&rc.stream.0.to_be_bytes());
            buf.extend_from_slice(&rc.digest.to_be_bytes());
            buf.extend_from_slice(&(rc.data.len() as u16).to_be_bytes());
            buf.extend_from_slice(&rc.data);
        }
    }
    // Zero-pad to the fixed cell size.
    buf.resize(CELL_LEN, 0);
    buf
}

/// Decodes a 512-byte wire cell.
///
/// Relay payloads must be fully unwrapped ("recognized") — decoding is the
/// job of the hop that owns the innermost remaining layer.
pub fn decode_cell(wire: &[u8]) -> Result<Cell, CodecError> {
    if wire.len() != CELL_LEN {
        return Err(CodecError::WrongLength {
            expected: CELL_LEN,
            got: wire.len(),
        });
    }
    let mut buf = Reader::new(wire);
    let circ = CircuitId(buf.get_u32());
    let cmd_byte = buf.get_u8();
    let cmd = CellCommand::from_wire(cmd_byte).ok_or(CodecError::UnknownCommand(cmd_byte))?;
    debug_assert_eq!(buf.remaining(), CELL_PAYLOAD_LEN);
    let body = match cmd {
        CellCommand::Create | CellCommand::Created => {
            let mut handshake = [0u8; HANDSHAKE_LEN];
            handshake.copy_from_slice(buf.take(HANDSHAKE_LEN));
            if cmd == CellCommand::Create {
                CellBody::Create { handshake }
            } else {
                CellBody::Created { handshake }
            }
        }
        CellCommand::Destroy => CellBody::Destroy {
            reason: buf.get_u8(),
        },
        CellCommand::Padding => CellBody::Padding,
        CellCommand::Relay => {
            let relay_cmd_byte = buf.get_u8();
            let relay_cmd = RelayCommand::from_wire(relay_cmd_byte)
                .ok_or(CodecError::UnknownRelayCommand(relay_cmd_byte))?;
            let recognized = buf.get_u16();
            if recognized != 0 {
                return Err(CodecError::NotRecognized(recognized));
            }
            let stream = StreamId(buf.get_u16());
            let digest = buf.get_u32();
            let len = buf.get_u16();
            if usize::from(len) > RELAY_DATA_MAX {
                return Err(CodecError::BadRelayLength(len));
            }
            let data = buf.take(usize::from(len)).to_vec();
            CellBody::Relay(RelayCell {
                cmd: relay_cmd,
                stream,
                digest,
                data,
            })
        }
    };
    Ok(Cell { circ, body })
}

/// Encodes a feedback frame to its exact 20-byte wire form.
pub fn encode_feedback(fb: &Feedback) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FEEDBACK_WIRE_LEN);
    buf.extend_from_slice(&FEEDBACK_MAGIC.to_be_bytes());
    buf.extend_from_slice(&fb.circ.0.to_be_bytes());
    buf.extend_from_slice(&fb.seq.to_be_bytes());
    let checksum = crate::crypto::payload_digest(&buf[..16]);
    buf.extend_from_slice(&checksum.to_be_bytes());
    debug_assert_eq!(buf.len(), FEEDBACK_WIRE_LEN);
    buf
}

/// Decodes a 20-byte feedback frame, verifying magic and checksum.
pub fn decode_feedback(wire: &[u8]) -> Result<Feedback, CodecError> {
    if wire.len() != FEEDBACK_WIRE_LEN {
        return Err(CodecError::WrongLength {
            expected: FEEDBACK_WIRE_LEN,
            got: wire.len(),
        });
    }
    let mut buf = Reader::new(wire);
    let magic = buf.get_u32();
    if magic != FEEDBACK_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let circ = CircuitId(buf.get_u32());
    let seq = buf.get_u64();
    let stored = buf.get_u32();
    let computed = crate::crypto::payload_digest(&wire[..16]);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    Ok(Feedback { circ, seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cell: Cell) {
        let wire = encode_cell(&cell);
        assert_eq!(wire.len(), CELL_LEN);
        let decoded = decode_cell(&wire).expect("decode");
        assert_eq!(decoded, cell);
    }

    #[test]
    fn create_round_trip() {
        let mut hs = [0u8; HANDSHAKE_LEN];
        for (i, b) in hs.iter_mut().enumerate() {
            *b = i as u8;
        }
        round_trip(Cell::create(CircuitId(0xDEAD), hs));
        round_trip(Cell::created(CircuitId(1), hs));
    }

    #[test]
    fn destroy_round_trip() {
        round_trip(Cell::destroy(CircuitId(7), 3));
    }

    #[test]
    fn padding_round_trip() {
        round_trip(Cell {
            circ: CircuitId(2),
            body: CellBody::Padding,
        });
    }

    #[test]
    fn relay_data_round_trip() {
        round_trip(Cell::relay_data(
            CircuitId(9),
            StreamId(4),
            vec![1, 2, 3, 4, 5],
        ));
        round_trip(Cell::relay_data(CircuitId(9), StreamId(4), vec![]));
        round_trip(Cell::relay_data(
            CircuitId(u32::MAX),
            StreamId(u16::MAX),
            vec![0xAB; RELAY_DATA_MAX],
        ));
    }

    #[test]
    fn relay_control_round_trip() {
        for cmd in [
            RelayCommand::Begin,
            RelayCommand::End,
            RelayCommand::Connected,
            RelayCommand::Sendme,
        ] {
            round_trip(Cell {
                circ: CircuitId(3),
                body: CellBody::Relay(RelayCell::control(cmd, StreamId(1))),
            });
        }
    }

    /// Exhaustive variant coverage: encode→decode identity for *every*
    /// `RelayCommand` and every `CellBody` variant, at representative
    /// payload sizes (empty, single byte, mid, maximal). The match on
    /// `CellBody` has no wildcard arm, so adding a variant without
    /// extending this test fails to compile.
    #[test]
    fn every_variant_round_trips() {
        const ALL_RELAY: [RelayCommand; 7] = [
            RelayCommand::Begin,
            RelayCommand::Data,
            RelayCommand::End,
            RelayCommand::Connected,
            RelayCommand::Sendme,
            RelayCommand::Extend,
            RelayCommand::Extended,
        ];
        let mut hs = [0u8; HANDSHAKE_LEN];
        for (i, b) in hs.iter_mut().enumerate() {
            *b = (i * 17) as u8;
        }
        let mut bodies: Vec<CellBody> = vec![
            CellBody::Create { handshake: hs },
            CellBody::Created { handshake: hs },
            CellBody::Destroy { reason: 0 },
            CellBody::Destroy { reason: u8::MAX },
            CellBody::Padding,
        ];
        for cmd in ALL_RELAY {
            for len in [0usize, 1, 100, RELAY_DATA_MAX] {
                let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
                bodies.push(CellBody::Relay(RelayCell {
                    cmd,
                    stream: StreamId(if len == 0 { 0 } else { u16::MAX }),
                    digest: crate::crypto::payload_digest(&data),
                    data,
                }));
            }
        }
        for body in bodies {
            // Compile-time exhaustiveness guard: every variant must be
            // listed here.
            match &body {
                CellBody::Create { .. }
                | CellBody::Created { .. }
                | CellBody::Destroy { .. }
                | CellBody::Padding
                | CellBody::Relay(_) => {}
            }
            for circ in [0u32, 1, u32::MAX] {
                round_trip(Cell {
                    circ: CircuitId(circ),
                    body: body.clone(),
                });
            }
        }
    }

    #[test]
    fn wire_is_exactly_512_bytes_and_padded() {
        let wire = encode_cell(&Cell::relay_data(CircuitId(1), StreamId(1), vec![0xFF; 3]));
        assert_eq!(wire.len(), CELL_LEN);
        // Bytes after header+data must be zero padding.
        let data_end = 5 + RELAY_HEADER_LEN + 3;
        assert!(wire[data_end..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert_eq!(
            decode_cell(&[0u8; 100]),
            Err(CodecError::WrongLength {
                expected: CELL_LEN,
                got: 100
            })
        );
        assert_eq!(
            decode_cell(&[0u8; CELL_LEN + 1]),
            Err(CodecError::WrongLength {
                expected: CELL_LEN,
                got: CELL_LEN + 1
            })
        );
    }

    #[test]
    fn decode_rejects_unknown_command() {
        let mut wire = encode_cell(&Cell::destroy(CircuitId(1), 0));
        wire[4] = 0xEE;
        assert_eq!(decode_cell(&wire), Err(CodecError::UnknownCommand(0xEE)));
    }

    #[test]
    fn decode_rejects_unknown_relay_command() {
        let mut wire = encode_cell(&Cell::relay_data(CircuitId(1), StreamId(1), vec![]));
        wire[5] = 0x77;
        assert_eq!(
            decode_cell(&wire),
            Err(CodecError::UnknownRelayCommand(0x77))
        );
    }

    #[test]
    fn decode_rejects_unrecognized_relay() {
        let mut wire = encode_cell(&Cell::relay_data(CircuitId(1), StreamId(1), vec![]));
        wire[6] = 0x01; // poke the 'recognized' field
        assert_eq!(decode_cell(&wire), Err(CodecError::NotRecognized(0x0100)));
    }

    #[test]
    fn decode_rejects_oversize_relay_length() {
        let mut wire = encode_cell(&Cell::relay_data(CircuitId(1), StreamId(1), vec![]));
        let bad = (RELAY_DATA_MAX as u16 + 1).to_be_bytes();
        wire[14] = bad[0];
        wire[15] = bad[1];
        assert_eq!(
            decode_cell(&wire),
            Err(CodecError::BadRelayLength(RELAY_DATA_MAX as u16 + 1))
        );
    }

    #[test]
    fn digest_survives_round_trip() {
        let cell = Cell::relay_data(CircuitId(1), StreamId(1), b"payload".to_vec());
        let wire = encode_cell(&cell);
        let decoded = decode_cell(&wire).unwrap();
        match decoded.body {
            CellBody::Relay(rc) => assert!(rc.digest_ok()),
            _ => panic!("expected relay cell"),
        }
    }

    #[test]
    fn feedback_round_trip() {
        let fb = Feedback {
            circ: CircuitId(0xABCD),
            seq: u64::MAX - 3,
        };
        let wire = encode_feedback(&fb);
        assert_eq!(wire.len(), FEEDBACK_WIRE_LEN);
        assert_eq!(decode_feedback(&wire), Ok(fb));
    }

    #[test]
    fn feedback_rejects_wrong_length() {
        assert_eq!(
            decode_feedback(&[0u8; 19]),
            Err(CodecError::WrongLength {
                expected: 20,
                got: 19
            })
        );
    }

    #[test]
    fn feedback_rejects_bad_magic() {
        let mut wire = encode_feedback(&Feedback {
            circ: CircuitId(1),
            seq: 2,
        });
        wire[0] = 0;
        assert!(matches!(
            decode_feedback(&wire),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn feedback_rejects_corrupted_body() {
        let mut wire = encode_feedback(&Feedback {
            circ: CircuitId(1),
            seq: 2,
        });
        wire[9] ^= 0xFF; // corrupt the sequence field
        assert!(matches!(
            decode_feedback(&wire),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = CodecError::WrongLength {
            expected: 512,
            got: 3,
        };
        assert!(e.to_string().contains("512"));
        assert!(CodecError::UnknownCommand(9).to_string().contains('9'));
        assert!(CodecError::NotRecognized(1)
            .to_string()
            .contains("recognized"));
    }
}
