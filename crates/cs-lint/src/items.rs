//! Item-level parsing over the flat token stream: functions (with body
//! spans and owning `impl` type), structs (with field lists), `use`
//! declarations, and module nesting.
//!
//! This is the symbol layer the semantic rules (DESIGN.md §14) stand
//! on. It is **not** a Rust grammar: it recognizes exactly the item
//! shapes the rules need, with a scope stack over brace tokens, and it
//! degrades gracefully — anything it cannot shape-match is simply not
//! an item, which the rule layer treats as *opaque* (no finding, never
//! a false one). The stated parsing assumptions, shared with the PR 9
//! token rules:
//!
//! * `{` never appears inside a `fn` signature before the body (no
//!   const-generic brace expressions in signatures in this workspace);
//! * generic angle brackets are balanced, counting the maximal-munch
//!   `<<`/`>>` tokens as two each;
//! * closures are not items — their tokens belong to the enclosing
//!   function (the call graph treats calls *through* closures as
//!   opaque).

use crate::lexer::{Token, TokenKind};

/// A `fn` item: free function, inherent/trait method, or bodiless
/// trait-method declaration.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name (raw identifiers keep their `r#`).
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token-index span `(open, close)` of the body braces in the
    /// comment-free token stream; `None` for bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// Last path segment of the `impl` (or `trait`) target this fn
    /// sits in, e.g. `WorldStats` for `impl WorldStats { fn merge … }`.
    pub owner: Option<String>,
    /// Names of the enclosing inline `mod` blocks, outermost first.
    pub module: Vec<String>,
    /// Last segment of the leading return-type path (`WorldFingerprint`
    /// for `-> runtime::WorldFingerprint`, `Result` for
    /// `-> Result<X, E>`); `None` when the fn returns `()`.
    pub ret: Option<String>,
}

/// A `struct` item with its field names (empty for tuple/unit structs).
#[derive(Clone, Debug)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    /// `true` for `struct S { … }`, `false` for tuple/unit structs.
    pub named_fields: bool,
    pub fields: Vec<String>,
}

/// One binding introduced by a `use` declaration: the in-scope name
/// (after `as` renames) and the full path it stands for.
#[derive(Clone, Debug)]
pub struct UseAlias {
    pub name: String,
    pub path: Vec<String>,
}

/// Everything item-shaped in one file.
#[derive(Clone, Debug, Default)]
pub struct ItemIndex {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub uses: Vec<UseAlias>,
}

impl ItemIndex {
    /// Index of the innermost function whose body contains token
    /// `tok` (exclusive of the braces themselves).
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.is_some_and(|(a, b)| tok > a && tok < b))
            .min_by_key(|(_, f)| {
                let (a, b) = f.body.expect("filtered to bodied fns");
                b - a
            })
            .map(|(i, _)| i)
    }

    /// Resolves an in-scope name through this file's `use` aliases:
    /// the last real path segment the name stands for, or the name
    /// itself when no alias renames it.
    pub fn resolve_alias<'a>(&'a self, name: &'a str) -> &'a str {
        self.uses
            .iter()
            .find(|u| u.name == name)
            .and_then(|u| u.path.last())
            .map(String::as_str)
            .unwrap_or(name)
    }
}

/// What kind of scope a `{` opened, so `}` can close it precisely.
enum Scope {
    Module,
    Impl(String),
    Fn(usize),
    Other,
}

/// Angle-bracket depth delta of a punct token (`<<`/`>>` are single
/// maximal-munch tokens worth two).
fn angle_delta(text: &str) -> i32 {
    match text {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        _ => 0,
    }
}

/// Parses the comment-free token stream `code` of `src` into items.
/// Never panics on malformed input; unrecognized shapes are skipped.
pub fn parse(src: &str, code: &[Token]) -> ItemIndex {
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let is_ident = |i: usize| code.get(i).is_some_and(|t| t.kind == TokenKind::Ident);

    let mut idx = ItemIndex::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut modules: Vec<String> = Vec::new();
    let mut i = 0usize;

    while i < code.len() {
        match text(i) {
            "mod" if is_ident(i) && is_ident(i + 1) && text(i + 2) == "{" => {
                modules.push(text(i + 1).to_string());
                stack.push(Scope::Module);
                i += 3;
                continue;
            }
            "impl" if is_ident(i) => {
                if let Some((target, open)) = parse_impl_header(src, code, i) {
                    stack.push(Scope::Impl(target));
                    i = open + 1;
                    continue;
                }
            }
            "trait" if is_ident(i) && is_ident(i + 1) => {
                // Treat the trait body like an impl: default methods get
                // the trait name as owner.
                let name = text(i + 1).to_string();
                let mut j = i + 2;
                while j < code.len() && text(j) != "{" && text(j) != ";" {
                    j += 1;
                }
                if j < code.len() && text(j) == "{" {
                    stack.push(Scope::Impl(name));
                    i = j + 1;
                    continue;
                }
                i = j + 1;
                continue;
            }
            "fn" if is_ident(i) && is_ident(i + 1) => {
                let owner = stack.iter().rev().find_map(|s| match s {
                    Scope::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                let (item, body_open) = parse_fn_sig(src, code, i, owner, modules.clone());
                let fn_id = idx.fns.len();
                idx.fns.push(item);
                match body_open {
                    Some(open) => {
                        stack.push(Scope::Fn(fn_id));
                        i = open + 1;
                    }
                    None => {
                        // Bodiless declaration: resume after the `;`.
                        let mut j = i + 2;
                        while j < code.len() && text(j) != ";" && text(j) != "{" {
                            j += 1;
                        }
                        i = j + 1;
                    }
                }
                continue;
            }
            "struct" if is_ident(i) && is_ident(i + 1) => {
                let next = parse_struct(src, code, i, &mut idx);
                i = next;
                continue;
            }
            "use" if is_ident(i) => {
                let next = parse_use(src, code, i + 1, Vec::new(), &mut idx.uses);
                i = next;
                continue;
            }
            "{" => stack.push(Scope::Other),
            "}" => match stack.pop() {
                Some(Scope::Module) => {
                    modules.pop();
                }
                Some(Scope::Fn(fn_id)) => {
                    // The open index is recovered from the recorded
                    // placeholder; close it here.
                    if let Some((open, _)) = idx.fns[fn_id].body {
                        idx.fns[fn_id].body = Some((open, i));
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }

    // Unterminated bodies (malformed input) extend to the last token.
    let last = code.len().saturating_sub(1);
    for f in &mut idx.fns {
        if let Some((open, close)) = f.body {
            if close == usize::MAX {
                f.body = Some((open, last));
            }
        }
    }
    idx
}

/// Parses from the `impl` token to the body `{`, returning the target
/// type's last path segment and the open-brace index. For
/// `impl Trait for Type`, the target is `Type`.
fn parse_impl_header(src: &str, code: &[Token], i: usize) -> Option<(String, usize)> {
    let text = |j: usize| code.get(j).map(|t| t.text(src)).unwrap_or("");
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut j = i + 1;
    while j < code.len() {
        let t = text(j);
        angle += angle_delta(t);
        if angle == 0 {
            match t {
                "{" => return last_ident.map(|n| (n, j)),
                ";" => return None,
                "for" => last_ident = None,
                "where" => {}
                _ if code[j].kind == TokenKind::Ident
                    && !matches!(t, "dyn" | "mut" | "const" | "unsafe" | "async") =>
                {
                    last_ident = Some(t.to_string());
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parses a `fn` signature starting at the `fn` token: returns the
/// item (body open recorded with a `usize::MAX` close placeholder) and
/// the body-open token index, or `None` for bodiless declarations.
fn parse_fn_sig(
    src: &str,
    code: &[Token],
    i: usize,
    owner: Option<String>,
    module: Vec<String>,
) -> (FnItem, Option<usize>) {
    let text = |j: usize| code.get(j).map(|t| t.text(src)).unwrap_or("");
    let name_tok = &code[i + 1];
    let mut j = i + 2;
    let mut paren = 0i32;
    let mut ret_at: Option<usize> = None;
    while j < code.len() {
        match text(j) {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "->" if paren == 0 && ret_at.is_none() => ret_at = Some(j + 1),
            "{" if paren == 0 => break,
            ";" if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let body_open = (j < code.len() && text(j) == "{").then_some(j);
    let ret = ret_at.and_then(|r| leading_path_last_segment(src, code, r, j));
    let item = FnItem {
        name: name_tok.text(src).to_string(),
        line: name_tok.line,
        col: name_tok.col,
        body: body_open.map(|open| (open, usize::MAX)),
        owner,
        module,
        ret,
    };
    (item, body_open)
}

/// Last segment of the path starting at `from` (stopping before
/// `until`), skipping reference/lifetime/`dyn`/`impl`/`mut` prefixes:
/// `&'a mut runtime::WorldFingerprint` → `WorldFingerprint`.
fn leading_path_last_segment(
    src: &str,
    code: &[Token],
    from: usize,
    until: usize,
) -> Option<String> {
    let text = |j: usize| code.get(j).map(|t| t.text(src)).unwrap_or("");
    let mut j = from;
    while j < until
        && (matches!(text(j), "&" | "dyn" | "impl" | "mut")
            || code.get(j).is_some_and(|t| t.kind == TokenKind::Lifetime))
    {
        j += 1;
    }
    let mut last: Option<String> = None;
    while j < until && code.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
        last = Some(text(j).to_string());
        if text(j + 1) == "::" {
            j += 2;
        } else {
            break;
        }
    }
    last
}

/// Parses a `struct` item starting at the `struct` token; records it
/// and returns the token index to resume scanning from. Named-field
/// bodies are consumed here (the scope stack never sees their braces).
fn parse_struct(src: &str, code: &[Token], i: usize, idx: &mut ItemIndex) -> usize {
    let text = |j: usize| code.get(j).map(|t| t.text(src)).unwrap_or("");
    let name_tok = &code[i + 1];
    let name = name_tok.text(src).to_string();
    // Skip generics/where to the body opener.
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < code.len() {
        let t = text(j);
        angle += angle_delta(t);
        if angle == 0 && matches!(t, "{" | "(" | ";") {
            break;
        }
        j += 1;
    }
    if j >= code.len() || text(j) != "{" {
        // Tuple or unit struct: no named fields; resume right here (the
        // paren group carries no item syntax).
        idx.structs.push(StructItem {
            name,
            line: name_tok.line,
            named_fields: false,
            fields: Vec::new(),
        });
        return j;
    }
    // Named fields: `ident :` pairs at depth 0 inside the braces.
    let open = j;
    let mut depth = 0i32;
    let mut fields = Vec::new();
    let mut k = open;
    while k < code.len() {
        let t = text(k);
        match t {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        depth += angle_delta(t);
        if depth == 1
            && code[k].kind == TokenKind::Ident
            && text(k + 1) == ":"
            && text(k + 2) != ":"
        {
            fields.push(t.to_string());
        }
        k += 1;
    }
    idx.structs.push(StructItem {
        name,
        line: name_tok.line,
        named_fields: true,
        fields,
    });
    k + 1
}

/// Recursively parses a `use` tree from token `j`, accumulating the
/// path `prefix`; emits one [`UseAlias`] per leaf. Returns the index
/// just past the parsed subtree (the caller handles `,`/`}`/`;`).
fn parse_use(
    src: &str,
    code: &[Token],
    j: usize,
    prefix: Vec<String>,
    out: &mut Vec<UseAlias>,
) -> usize {
    let text = |k: usize| code.get(k).map(|t| t.text(src)).unwrap_or("");
    let mut prefix = prefix;
    let mut k = j;
    loop {
        if text(k) == "{" {
            // Group: parse each branch with the shared prefix.
            k += 1;
            loop {
                if text(k) == "}" {
                    return k + 1;
                }
                k = parse_use(src, code, k, prefix.clone(), out);
                match text(k) {
                    "," => k += 1,
                    "}" => return k + 1,
                    _ => return k, // malformed; bail without looping
                }
            }
        }
        if code.get(k).is_some_and(|t| t.kind == TokenKind::Ident) || text(k) == "*" {
            prefix.push(text(k).to_string());
            if text(k + 1) == "::" {
                k += 2;
                continue;
            }
            if text(k + 1) == "as" && code.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident) {
                out.push(UseAlias {
                    name: text(k + 2).to_string(),
                    path: prefix,
                });
                return k + 3;
            }
            let name = prefix.last().expect("just pushed").clone();
            if name != "*" {
                out.push(UseAlias { name, path: prefix });
            }
            return k + 1;
        }
        return k + 1; // malformed (attribute, visibility, …): skip a token
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::code_tokens;

    fn items(src: &str) -> (ItemIndex, Vec<Token>) {
        let code = code_tokens(src);
        (parse(src, &code), code)
    }

    #[test]
    fn fns_with_owner_module_and_ret() {
        let src = "\
mod outer {
    struct S { a: u64, b: f64 }
    impl S {
        fn merge(&mut self, o: &S) -> u64 { o.a }
        fn bare(&self);
    }
    fn free() -> Vec<u32> { Vec::new() }
}
fn top() {}
";
        let (idx, _) = items(src);
        let names: Vec<(&str, Option<&str>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("merge", Some("S")),
                ("bare", Some("S")),
                ("free", None),
                ("top", None)
            ]
        );
        assert_eq!(idx.fns[0].module, vec!["outer"]);
        assert_eq!(idx.fns[0].ret.as_deref(), Some("u64"));
        assert_eq!(idx.fns[1].body, None);
        assert_eq!(idx.fns[2].ret.as_deref(), Some("Vec"));
        assert_eq!(idx.fns[3].module, Vec::<String>::new());
        assert_eq!(idx.structs.len(), 1);
        assert_eq!(idx.structs[0].fields, vec!["a", "b"]);
    }

    #[test]
    fn impl_trait_for_type_targets_the_type() {
        let src = "\
impl<T: Ord> fmt::Display for Wrapper<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
impl Plain { fn go(&self) {} }
trait Seam { fn hook(&self) { helper(); } }
";
        let (idx, _) = items(src);
        assert_eq!(idx.fns[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(idx.fns[1].owner.as_deref(), Some("Plain"));
        assert_eq!(idx.fns[2].owner.as_deref(), Some("Seam"));
    }

    #[test]
    fn struct_field_lists_handle_generics_and_tuples() {
        let src = "\
struct Soa<T> {
    pub bandwidth: Vec<u64>,
    map: BTreeMap<u64, Vec<T>>,
    pub(crate) live: bool,
}
struct Tup(u64, f64);
struct Unit;
";
        let (idx, _) = items(src);
        assert_eq!(idx.structs[0].fields, vec!["bandwidth", "map", "live"]);
        assert!(idx.structs[0].named_fields);
        assert!(!idx.structs[1].named_fields);
        assert!(!idx.structs[2].named_fields);
    }

    #[test]
    fn nested_fn_bodies_and_enclosing_fn() {
        let src = "fn outer() { fn inner() { work(); } inner(); }";
        let (idx, code) = items(src);
        assert_eq!(idx.fns.len(), 2);
        let work_tok = code
            .iter()
            .position(|t| t.text(src) == "work")
            .expect("work token");
        let encl = idx.enclosing_fn(work_tok).expect("inside a fn");
        assert_eq!(idx.fns[encl].name, "inner");
    }

    #[test]
    fn use_trees_flatten_with_renames() {
        let src = "\
use std::collections::{BTreeMap, BTreeSet as Sorted};
use crate::runtime::WorldFingerprint;
use simstats::sketch::*;
";
        let (idx, _) = items(src);
        let aliases: Vec<(&str, Vec<&str>)> = idx
            .uses
            .iter()
            .map(|u| (u.name.as_str(), u.path.iter().map(String::as_str).collect()))
            .collect();
        assert_eq!(
            aliases,
            vec![
                ("BTreeMap", vec!["std", "collections", "BTreeMap"]),
                ("Sorted", vec!["std", "collections", "BTreeSet"]),
                (
                    "WorldFingerprint",
                    vec!["crate", "runtime", "WorldFingerprint"]
                ),
            ]
        );
        assert_eq!(idx.resolve_alias("Sorted"), "BTreeSet");
        assert_eq!(idx.resolve_alias("Unknown"), "Unknown");
    }

    #[test]
    fn enum_bodies_and_match_blocks_do_not_confuse_the_stack() {
        let src = "\
enum E { A, B(u64), C { f: u64 } }
fn after(e: E) -> u64 {
    match e { E::A => 0, E::B(x) => x, E::C { f } => f }
}
";
        let (idx, _) = items(src);
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "after");
        // `C { f: u64 }` is an enum variant, not a struct item.
        assert!(idx.structs.is_empty());
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn broken( {",
            "impl {",
            "struct",
            "use ::;",
            "fn f() { {{{",
            "}",
            "impl X for {}",
        ] {
            let (_, _) = items(src);
        }
    }
}
