//! CLI for the workspace determinism lint.
//!
//! ```text
//! cs-lint [--root <dir>] [--json] [--fix-annotations [--apply]]
//! ```
//!
//! Exits 0 when the scan is clean, 1 when any unannotated finding
//! exists, 2 on usage or I/O errors. `--json` mirrors the
//! `cs_bench::harness` report idiom; `--fix-annotations` prints
//! paste-ready `allow` lines for quick triage (a dry run unless
//! `--apply` is given, which writes each annotation above its finding
//! with a placeholder reason the author must then rewrite).

use std::path::PathBuf;
use std::process::ExitCode;

use cs_lint::{engine, report};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    fix_annotations: bool,
    apply: bool,
}

const USAGE: &str = "usage: cs-lint [--root <dir>] [--json] [--fix-annotations [--apply]]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        fix_annotations: false,
        apply: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fix-annotations" => opts.fix_annotations = true,
            "--apply" => opts.apply = true,
            "--root" => {
                let dir = args
                    .next()
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                opts.root = Some(PathBuf::from(dir));
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.apply && !opts.fix_annotations {
        return Err(format!("--apply requires --fix-annotations\n{USAGE}"));
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("cs-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let scan = match engine::scan_workspace(&root) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("cs-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.fix_annotations && opts.apply {
        // Success means every finding was annotatable and is now
        // suppressed in place; unannotatable findings (malformed
        // annotations, unused allows) still need hand-editing, so they
        // keep the failure exit.
        return match engine::apply_annotations(&root, &scan.findings) {
            Ok((inserted, skipped)) => {
                println!(
                    "cs-lint --fix-annotations --apply: inserted {inserted} annotation(s); \
                     {skipped} finding(s) not annotatable (malformed-annotation / \
                     unused-allow need hand-editing)"
                );
                if skipped == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(msg) => {
                eprintln!("cs-lint: {msg}");
                ExitCode::from(2)
            }
        };
    }

    if opts.fix_annotations {
        // Re-read each flagged line untrimmed so pasted annotations
        // inherit the right indentation.
        let raw_lines: Vec<String> = scan
            .findings
            .iter()
            .map(|f| {
                std::fs::read_to_string(root.join(&f.path))
                    .map(|src| engine::raw_line(&src, f.line))
                    .unwrap_or_default()
            })
            .collect();
        print!("{}", report::fix_annotations(&scan, &raw_lines));
    } else if opts.json {
        print!("{}", report::json(&scan));
    } else {
        print!("{}", report::human(&scan));
    }

    if scan.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
