//! The telemetry differential suite: the streaming quantile sketch must
//! track the exact sorted-sample CDF within its configured relative
//! error, everywhere the harness can produce both — across seeds,
//! selection policies, and shard counts — and its merge must be
//! genuinely order-independent.
//!
//! Three contracts (DESIGN.md §13):
//!
//! 1. **Error bound.** For every probed quantile `q`, the sketch answer
//!    is within `alpha · exact` of the exact CDF built from the same
//!    completions — 3 seeds × 4 policies × {1, 8} shards.
//! 2. **Merge associativity.** `merge(a, merge(b, c))` equals
//!    `merge(merge(a, b), c)` bucket for bucket, not just quantile for
//!    quantile.
//! 3. **Shuffle invariance.** Folding shard reports in any seeded
//!    shuffle of the shard order produces the identical experiment
//!    aggregate — the property the exhaustive-destructure merge in
//!    `ShardedStar::run` preserves.

use std::sync::Arc;

use backtap::config::CcConfig;
use circuitstart::Algorithm;
use relaynet::builder::StarScenario;
use relaynet::network::WorldStats;
use relaynet::runtime::{FactoryMaker, ShardedStar, StatsKind, SweepReport};
use relaynet::selection::{all_policies, SelectionPolicy};
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::DirectoryConfig;
use simcore::event::QueueKind;
use simcore::exec::DeterministicExecutor;
use simcore::rng::SimRng;
use simstats::cdf::Cdf;
use simstats::sketch::QuantileSketch;

/// The async-runtime suite's churning star, kept small: the sketch
/// contract is per-sample, so modest worlds probe it as well as large
/// ones.
fn churning_star(policy: SelectionPolicy) -> StarScenario {
    StarScenario {
        circuits: 3,
        file_bytes: 50_000,
        directory: DirectoryConfig {
            relays: 7,
            bandwidth_mbps: (15.0, 60.0),
            delay_ms: (2.0, 8.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 3,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (10.0, 40.0),
            },
            churn: Some(ChurnSpec {
                teardown_after_ms: (35.0, 90.0),
                rebuild_delay_ms: 4.0,
                cycles: 1,
            }),
        },
        selection: policy,
        ..Default::default()
    }
}

fn maker() -> FactoryMaker {
    Arc::new(|| Algorithm::CircuitStart.factory(CcConfig::default()))
}

fn run_sweep(policy: SelectionPolicy, seed: u64, shards: usize) -> SweepReport {
    let exp = ShardedStar {
        scenario: churning_star(policy),
        shards,
        seed,
        queue: QueueKind::default(),
        stats: StatsKind::Exact, // exact mode retains both records
    };
    exp.run(&DeterministicExecutor, maker())
}

/// Contract 1: the differential matrix. Every quantile the experiments
/// report, from every sweep in the matrix, within the sketch's alpha of
/// the exact sorted-sample answer.
#[test]
fn sketch_tracks_exact_cdf_across_seeds_policies_and_shards() {
    for policy in all_policies() {
        for seed in [5u64, 41, 83] {
            for shards in [1usize, 8] {
                let sweep = run_sweep(policy.clone(), seed, shards);
                let exact = sweep.completion_cdf().expect("flows completed");
                let sketch = sweep.completion_sketch();
                assert_eq!(
                    sketch.len(),
                    exact.len() as u64,
                    "{} seed {seed} {shards}sh: sketch missed samples",
                    policy.name()
                );
                let alpha = sketch.alpha();
                for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                    let e = exact.quantile(q);
                    let s = sketch.quantile(q);
                    assert!(
                        (s - e).abs() <= alpha * e + f64::EPSILON,
                        "{} seed {seed} {shards}sh q={q}: sketch {s} strayed \
                         more than alpha={alpha} from exact {e}",
                        policy.name()
                    );
                }
                // The exact side channels are exact, not approximate.
                assert_eq!(sketch.min(), exact.min());
                assert_eq!(sketch.max(), exact.max());
                assert!((sketch.mean() - exact.mean()).abs() < 1e-9);
            }
        }
    }
}

/// Contract 2: merge associativity, bucket for bucket. Shard sketches
/// are the natural inputs — real distributions, not synthetic ones.
#[test]
fn sketch_merge_is_associative_bucket_for_bucket() {
    let sweep = run_sweep(all_policies()[3].clone(), 41, 8);
    let parts: Vec<&QuantileSketch> = sweep.shards.iter().map(|s| &s.completion_sketch).collect();
    assert!(parts.len() >= 3);
    let (a, b, c) = (parts[0], parts[1], parts[2]);
    // merge(a, merge(b, c))
    let mut bc = b.clone();
    bc.merge(c);
    let mut right = a.clone();
    right.merge(&bc);
    // merge(merge(a, b), c)
    let mut ab = a.clone();
    ab.merge(b);
    let mut left = ab;
    left.merge(c);
    assert!(
        left.bucket_counts().eq(right.bucket_counts()),
        "associativity must hold on the raw buckets, not just queries"
    );
    assert_eq!(left, right);
}

/// Contract 3 (the PR's shuffle-merge regression): folding the shard
/// reports in any seeded shuffle of shard order reproduces the
/// aggregate `ShardedStar::run` computed in shard order — counters,
/// totals, and sketch buckets alike.
#[test]
fn shard_merge_is_order_independent_under_seeded_shuffles() {
    let sweep = run_sweep(all_policies()[2].clone(), 83, 8);

    let fold = |order: &[usize]| {
        let mut stats = WorldStats::default();
        let mut cells = 0u64;
        let mut bytes = 0u64;
        let mut sketch = QuantileSketch::default();
        let mut samples = Vec::new();
        for &i in order {
            let s = &sweep.shards[i];
            stats.merge(&s.fingerprint.stats);
            cells += s.cells_delivered;
            bytes += s.bytes_delivered;
            sketch.merge(&s.completion_sketch);
            samples.extend(s.flow_completions.iter().copied());
        }
        samples.sort_unstable();
        (stats, cells, bytes, sketch, samples)
    };

    let in_order: Vec<usize> = (0..sweep.shards.len()).collect();
    let baseline = fold(&in_order);
    assert_eq!(baseline.0, sweep.stats);
    assert_eq!(baseline.1, sweep.cells_delivered);
    assert_eq!(baseline.2, sweep.bytes_delivered);
    assert_eq!(&baseline.3, sweep.completion_sketch());
    assert_eq!(baseline.4, sweep.completion_samples());

    // Seeded Fisher-Yates shuffles of the fold order.
    let mut rng = SimRng::seed_from(0xC0FFEE).derive("shuffle-merge");
    for round in 0..8 {
        let mut order = in_order.clone();
        for i in (1..order.len()).rev() {
            let j = rng.range_u64(0, i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let shuffled = fold(&order);
        assert_eq!(shuffled.0, baseline.0, "round {round}: counters diverged");
        assert_eq!(
            shuffled.1, baseline.1,
            "round {round}: cell totals diverged"
        );
        assert_eq!(
            shuffled.2, baseline.2,
            "round {round}: byte totals diverged"
        );
        assert!(
            shuffled.3.bucket_counts().eq(baseline.3.bucket_counts()),
            "round {round}: sketch buckets diverged under shuffle"
        );
        assert_eq!(shuffled.3, baseline.3, "round {round}: sketches diverged");
        assert_eq!(
            shuffled.4, baseline.4,
            "round {round}: sorted samples diverged"
        );
    }
}

/// The regression the latent-bug sweep fixed, observed end to end: a
/// quantile exactly on a rank boundary must pick the boundary sample.
/// With n completions, q = k/n must return the k-th order statistic
/// even when `q * n` rounds a hair above k in floating point.
#[test]
fn exact_cdf_rank_boundaries_hold_on_experiment_output() {
    let sweep = run_sweep(all_policies()[0].clone(), 5, 8);
    let exact: Cdf = sweep.completion_cdf().expect("flows completed");
    let sorted = exact.sorted_samples().to_vec();
    let n = sorted.len();
    for k in 1..=n {
        let q = k as f64 / n as f64;
        assert_eq!(
            exact.quantile(q),
            sorted[k - 1],
            "q={k}/{n} must select the rank-{k} sample"
        );
    }
}
