//! Fault-injection demo: relay crashes and link stalls against the
//! client-side recovery loop — timers, blame-driven re-selection, and
//! backoff rebuilds (DESIGN.md §12).
//!
//! The same eight-circuit star workload runs twice from one seed: once
//! fault-free as the baseline, once with two relay crashes and a link
//! stall injected mid-transfer. Every flow must still complete, byte
//! counts must conserve, and teardown must reclaim every slot, route,
//! and pooled buffer — the run prints the recovery telemetry and the
//! completion-CDF shift the faults cost.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use std::sync::Arc;

use circuitstart::prelude::*;
use relaynet::builder::StarScenario;
use relaynet::selection::CongestionAware;
use relaynet::workload::{ArrivalSpec, FaultSpec, WorkloadSpec};
use relaynet::DirectoryConfig;
use simstats::cdf::Cdf;

const SEED: u64 = 31;

fn scenario(faults: Option<FaultSpec>) -> StarScenario {
    StarScenario {
        circuits: 8,
        relays_per_circuit: 3,
        file_bytes: 150_000,
        directory: DirectoryConfig {
            relays: 16,
            bandwidth_mbps: (40.0, 100.0),
            delay_ms: (1.0, 3.0),
        },
        selection: Arc::new(CongestionAware),
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::UniformJitter { max_ms: 15.0 },
            churn: None,
        },
        faults,
        ..Default::default()
    }
}

fn run(faults: Option<FaultSpec>) -> (relaynet::TorNetwork, Cdf) {
    let (mut sim, _) =
        scenario(faults).build(Algorithm::CircuitStart.factory(CcConfig::default()), SEED);
    run_to_completion(&mut sim);
    let world = sim.into_world();
    let cdf = world.flow_completion_cdf().expect("completed flows");
    (world, cdf)
}

fn main() {
    let spec = FaultSpec {
        crashes: 2,
        crash_window_ms: (40.0, 120.0),
        stalls: 1,
        stall_window_ms: (40.0, 120.0),
        stall_duration_ms: 60.0,
        stall_factor: 200.0,
        build_timeout_ms: 300.0,
        liveness_timeout_ms: 600.0,
        ..Default::default()
    };
    println!(
        "fault_storm: 8 circuits x 2 streams over 16 relays; \
         {} crashes in [{:.0}, {:.0}] ms + {} stall(s)",
        spec.crashes, spec.crash_window_ms.0, spec.crash_window_ms.1, spec.stalls
    );

    let (base_world, base_cdf) = run(None);
    let (world, cdf) = run(Some(spec));
    let stats = world.stats();

    // -- recovery telemetry ----------------------------------------------
    println!("\nrecovery loop:");
    println!("  crashes injected : {}", stats.crashes_injected);
    println!("  timeouts fired   : {}", stats.timeouts_fired);
    println!("  retries scheduled: {}", stats.retries);
    println!("  relays blamed    : {}", stats.blamed_exclusions);
    println!("  flows parked     : {}", stats.flows_parked);
    println!(
        "  frames dropped   : {} at crashed relays, {} stale",
        stats.crash_frames_dropped, stats.stale_frames_dropped
    );
    println!("  rebuilds         : {}", stats.rebuilds);
    assert!(stats.crashes_injected > 0, "schedule must fire");
    assert!(stats.timeouts_fired > 0, "clients must detect the crashes");

    // -- conservation ----------------------------------------------------
    let mut delivered = 0u64;
    let mut requested = 0u64;
    for f in world.flows() {
        assert!(f.complete(), "recovery must never strand a flow");
        delivered += f.delivered;
        requested += f.requested;
    }
    assert_eq!(delivered, requested, "bytes conserve across crashes");
    assert_eq!(stats.protocol_errors, 0, "faults are counted, not errors");
    assert_eq!(
        world.payload_pool().returned(),
        world.payload_pool().acquired(),
        "every in-flight buffer must come home"
    );
    println!("\nconservation:");
    println!("  delivered        : {delivered} / {requested} bytes");
    println!("  slots reclaimed  : {}", stats.slots_reclaimed);
    println!(
        "  payload pool     : {}/{} returned",
        world.payload_pool().returned(),
        world.payload_pool().acquired()
    );

    // -- the cost of failure ---------------------------------------------
    assert_eq!(
        base_world.stats().crashes_injected,
        0,
        "baseline runs fault-free"
    );
    println!("\ncompletion CDF (fault-free -> faulty):");
    for (label, q) in [("p10", 0.10), ("median", 0.50), ("p90", 0.90)] {
        println!(
            "  {label:6}: {:7.1} ms -> {:7.1} ms",
            base_cdf.quantile(q) * 1e3,
            cdf.quantile(q) * 1e3
        );
    }
    println!(
        "  max   : {:7.1} ms -> {:7.1} ms",
        base_cdf.max() * 1e3,
        cdf.max() * 1e3
    );
    println!("\nok: crashes detected, blamed, rebuilt around; nothing leaked");
}
