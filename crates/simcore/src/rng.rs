//! Deterministic, splittable random-number streams.
//!
//! Reproducibility rule: every random choice in an experiment must be
//! derived from the experiment's single master seed. [`SimRng`] wraps a
//! fast non-cryptographic generator ([`rand::rngs::SmallRng`]) and adds
//! **labelled stream derivation**: `rng.derive("relay-bandwidths")` yields
//! an independent child generator whose seed depends only on the parent
//! seed and the label. Components can therefore draw randomness in any
//! order — adding a new consumer never perturbs the streams of existing
//! ones, which keeps results comparable across code revisions.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// FNV-1a, 64-bit. Tiny, stable, and good enough for seed derivation —
/// this is *not* used for anything security-relevant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: scrambles a 64-bit value; used so that similar
/// (seed, label) pairs yield very different child seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream tied to a seed.
///
/// Implements [`rand::RngCore`], so all `rand` adapters (`gen_range`,
/// `shuffle`, distributions) work on it directly.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // same seed, same stream
///
/// let mut child = a.derive("relay-bandwidths");
/// let x: f64 = child.gen_range(10.0..100.0);
/// assert!((10.0..100.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

impl SimRng {
    /// Creates a stream from a master seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Derivation is a pure function of `(self.seed, label)`: it does not
    /// consume randomness from, and is unaffected by, draws on `self`.
    pub fn derive(&self, label: &str) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::seed_from(child_seed)
    }

    /// Derives an independent child stream identified by a label and an
    /// index (convenient for per-node / per-circuit streams).
    pub fn derive_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index));
        SimRng::seed_from(child_seed)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        self.inner.gen_range(low..high)
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        self.inner.gen_range(low..high)
    }

    /// Log-uniform float in `[low, high)`: the base-10 logarithm of the
    /// result is uniform. Both bounds must be positive. This matches the
    /// heavy-tailed flavour of relay-bandwidth distributions.
    pub fn log_uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low > 0.0 && high > low,
            "log_uniform requires 0 < low < high, got [{low}, {high})"
        );
        let lg = self.range_f64(low.log10(), high.log10());
        10f64.powf(lg)
    }

    /// Fisher–Yates shuffle of a slice, deterministic given the stream
    /// state.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        // Manual implementation to avoid depending on rand's `seq` feature
        // details; classic downward Fisher–Yates.
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniformly, order
    /// unspecified but deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut all: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: shuffle only the first k positions.
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 3, "streams from different seeds should diverge");
    }

    #[test]
    fn derive_is_pure_and_order_independent() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.derive("alpha");
        // Draw from a *copy* of the parent first; derivation must not care.
        let mut parent2 = SimRng::seed_from(99);
        let _ = parent2.u64();
        let _ = parent2.u64();
        let mut c2 = parent2.derive("alpha");
        for _ in 0..20 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn derive_labels_independent() {
        let parent = SimRng::seed_from(99);
        let mut a = parent.derive("alpha");
        let mut b = parent.derive("beta");
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn derive_indexed_distinct() {
        let parent = SimRng::seed_from(5);
        let mut a = parent.derive_indexed("relay", 0);
        let mut b = parent.derive_indexed("relay", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn log_uniform_in_bounds_and_spans_decades() {
        let mut rng = SimRng::seed_from(2);
        let mut low_decade = 0;
        let mut high_decade = 0;
        for _ in 0..2000 {
            let v = rng.log_uniform(1.0, 100.0);
            assert!((1.0..100.0).contains(&v));
            if v < 10.0 {
                low_decade += 1;
            } else {
                high_decade += 1;
            }
        }
        // Log-uniform: each decade gets ~half the mass.
        let ratio = low_decade as f64 / high_decade as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "decades should be roughly balanced, got {low_decade}/{high_decade}"
        );
    }

    #[test]
    #[should_panic(expected = "log_uniform requires")]
    fn log_uniform_rejects_nonpositive() {
        let mut rng = SimRng::seed_from(2);
        let _ = rng.log_uniform(0.0, 10.0);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut rng1 = SimRng::seed_from(3);
        let mut rng2 = SimRng::seed_from(3);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        rng1.shuffle(&mut a);
        rng2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 50-element shuffle is virtually never the identity");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..50 {
            let sample = rng.sample_distinct(10, 3);
            assert_eq!(sample.len(), 3);
            let mut s = sample.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "sample must be distinct");
            assert!(sample.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SimRng::seed_from(4);
        let mut sample = rng.sample_distinct(5, 5);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversize() {
        let mut rng = SimRng::seed_from(4);
        let _ = rng.sample_distinct(3, 4);
    }

    #[test]
    fn rngcore_interface_works_with_rand_adapters() {
        use rand::Rng;
        let mut rng = SimRng::seed_from(11);
        let v: f64 = rng.gen_range(0.5..0.6);
        assert!((0.5..0.6).contains(&v));
        let mut buf = [0u8; 16];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 16]);
    }
}
