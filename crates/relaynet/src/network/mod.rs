//! The overlay engine: a [`simcore::World`] tying relays, circuits,
//! transports, and the packet network together.
//!
//! # Protocol summary (all rules are local; see DESIGN.md §4)
//!
//! * **Circuit build** is Tor's telescope: the client CREATEs the first
//!   hop, then sends EXTEND relay cells that the current last relay
//!   converts into CREATEs toward the next node. Link-local circuit ids
//!   are negotiated per connection; onion layers are derived from the
//!   CREATE handshakes.
//! * **Recognition** is leaky-pipe, as in Tor: a relay strips its layer
//!   from every forward relay cell; if the digest then verifies, the cell
//!   is for this hop and is consumed, otherwise it is forwarded.
//! * **Feedback** (the BackTap/CircuitStart mechanism): whenever a node
//!   takes a cell *out* of a per-circuit queue — forwarding it toward the
//!   successor or consuming it locally — it sends a 20-byte feedback frame
//!   to the neighbour the cell came from, echoing that neighbour's per-hop
//!   sequence number. Windows grow on feedback, never on end-to-end ACKs.
//! * **Transfer**: after the build, the client opens a stream (BEGIN /
//!   CONNECTED) and pumps DATA cells, each wrapped in onion layers and
//!   subject to the per-hop window; the server verifies, counts, and
//!   timestamps them, and the END cell completes the transfer.
//!
//! # Module layout: the cell-processing pipeline
//!
//! Every arriving frame flows through an explicit sequence of stages, one
//! submodule per stage (DESIGN.md §4 documents the contracts):
//!
//! ```text
//!           ┌───────────┐   ┌─────────────┐   ┌───────────────────────┐
//!  frame ──▶│ conn      │──▶│ recognition │──▶│ circuit_build (ctrl)  │
//!           │ (ingress, │   │ (route +    │   │ client_xfer  (data)   │
//!           │  egress,  │   │  leaky-pipe)│   └──────────┬────────────┘
//!           │  pumping) │   └──────┬──────┘              │
//!           └─────▲─────┘          │ forward             │ consume
//!                 │                ▼                     ▼
//!                 │         conn::pump_dir ◀──── feedback (window credit)
//! ```
//!
//! * [`conn`] — the connection layer: link-local frame ingress/egress,
//!   per-link round-robin scheduling, and the window-gated egress pump.
//! * [`recognition`] — per-cell routing: resolves `(neighbour, link id)`
//!   to circuit state and applies leaky-pipe recognition to relay cells,
//!   deciding *consume here* vs *forward onward*.
//! * [`circuit_build`] — the control plane: CREATE/CREATED/EXTEND/
//!   EXTENDED telescoping, DESTROY propagation, teardown.
//! * [`client_xfer`] — the endpoint applications: the client transfer
//!   loop (BEGIN → DATA → END) and the server's consume path.
//! * [`feedback`] — per-hop feedback frames: emission when a cell leaves
//!   a queue and window-credit application when one arrives.

pub(crate) mod circuit_build;
pub(crate) mod client_xfer;
pub(crate) mod conn;
pub(crate) mod faults;
pub(crate) mod feedback;
pub(crate) mod recognition;

use netsim::net::{Net, NetEvent, NodeId, SendOutcome};
use simcore::rng::SimRng;
use simcore::sim::{Context, World};
use simcore::time::{SimDuration, SimTime};
use simstats::registry::MetricsRegistry;
use simstats::sketch::QuantileSketch;

use backtap::hop::HopTransport;
use torcell::ids::CircuitId;

use crate::circuit::{CircuitInfo, CircuitResult};
use crate::directory::{Directory, EpochDelta};
use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{CcFactory, NodeRole, OverlayNode};
use crate::pool::PayloadPool;
use crate::router::Router;
use crate::sampler::SamplerKind;
use crate::scheduler::LinkScheduler;
use crate::selection::{DirectoryView, SelectionEngine, SelectionPolicy};
use crate::wire::WireFrame;
use crate::workload::FaultSpec;
use crate::workload::{CircuitWorkload, FlowId, FlowState};

/// Reason code carried by the END cell when a transfer finishes normally.
pub const END_REASON_DONE: u8 = 1;
/// Reason code carried by DESTROY cells on explicit teardown.
pub const DESTROY_REASON_FINISHED: u8 = 9;
/// Reason code carried by DESTROY cells when a client abandons a circuit
/// after a build or liveness timeout (pure telemetry — relays treat every
/// reason alike).
pub const DESTROY_REASON_TIMEOUT: u8 = 10;
/// Reason code for a DESTROY answered by a node that has no participation
/// in the circuit — the void's reply that lets a teardown wave turn
/// around when its far side was dropped (a stale CREATE for a dead
/// incarnation, a reaped orphan). A REFUSED DESTROY is itself never
/// answered, so two voids cannot volley.
pub const DESTROY_REASON_REFUSED: u8 = 11;

/// Global behaviour switches.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Verify DATA payload bytes at the server against the deterministic
    /// fill pattern (cheap; catches crypto/ordering bugs).
    pub verify_payload: bool,
    /// Record the client's forward congestion window over time (the
    /// Figure 1 trace).
    pub trace_client_cwnd: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            verify_payload: true,
            trace_client_cwnd: true,
        }
    }
}

/// Global protocol counters.
///
/// Mergeable: a sharded experiment (see `relaynet::runtime`) runs many
/// worlds and folds their counters with [`WorldStats::merge`] into one
/// experiment-level record — every field must therefore stay a plain
/// sum-friendly count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Cell frames handed to the link layer.
    pub cells_sent: u64,
    /// Feedback frames handed to the link layer.
    pub feedback_sent: u64,
    /// Protocol violations observed (must stay 0 in healthy runs).
    pub protocol_errors: u64,
    /// Relay cells dropped because their circuit was torn down.
    pub cells_dropped_closed: u64,
    /// DESTROY cells handed to egress queues (teardown wave + echo).
    /// One full teardown of an `n`-node circuit sends exactly
    /// `2 * (n - 1)`: one per hop per wave direction.
    pub destroys_sent: u64,
    /// Queued cells discarded when a circuit closed (their owed
    /// feedback is still paid, so upstream windows drain).
    pub cells_drained: u64,
    /// Node-circuit slab slots reclaimed after full teardown quiescence.
    pub slots_reclaimed: u64,
    /// Circuit rebuilds performed by the churn engine.
    pub rebuilds: u64,
    /// Consensus epoch boundaries applied (directory deltas consumed).
    pub epochs_applied: u64,
    /// Relays brought live by epoch deltas.
    pub relays_joined: u64,
    /// Relays taken dark by epoch deltas.
    pub relays_departed: u64,
    /// Circuit teardowns initiated because the circuit crossed a
    /// departing relay (a subset of what feeds `rebuilds`).
    pub epoch_teardowns: u64,
    /// Relay crashes injected by the fault engine.
    pub crashes_injected: u64,
    /// Client circuit timers that fired genuinely (build or liveness)
    /// and triggered an abandon.
    pub timeouts_fired: u64,
    /// Timeout-driven rebuild attempts scheduled under backoff.
    pub retries: u64,
    /// Relays excluded from selection after being blamed for a timeout.
    pub blamed_exclusions: u64,
    /// Flows parked because their circuit exhausted its retry cap or the
    /// selectable relay set fell below the path length.
    pub flows_parked: u64,
    /// Frames silently dropped because their destination relay crashed.
    pub crash_frames_dropped: u64,
    /// Frames for unknown routes or sequences dropped *because faults
    /// are active* (stale traffic to force-abandoned circuits); without
    /// faults these are protocol errors.
    pub stale_frames_dropped: u64,
}

impl WorldStats {
    /// Folds another world's counters into this record — the shard
    /// aggregation of the async runtime. Addition is associative and
    /// commutative, so any merge order yields the same totals.
    pub fn merge(&mut self, other: &WorldStats) {
        // Exhaustive destructure (no `..`): adding a counter to
        // WorldStats without deciding how it merges is a compile error
        // here, not a silently-zero experiment aggregate.
        let WorldStats {
            cells_sent,
            feedback_sent,
            protocol_errors,
            cells_dropped_closed,
            destroys_sent,
            cells_drained,
            slots_reclaimed,
            rebuilds,
            epochs_applied,
            relays_joined,
            relays_departed,
            epoch_teardowns,
            crashes_injected,
            timeouts_fired,
            retries,
            blamed_exclusions,
            flows_parked,
            crash_frames_dropped,
            stale_frames_dropped,
        } = *other;
        self.cells_sent += cells_sent;
        self.feedback_sent += feedback_sent;
        self.protocol_errors += protocol_errors;
        self.cells_dropped_closed += cells_dropped_closed;
        self.destroys_sent += destroys_sent;
        self.cells_drained += cells_drained;
        self.slots_reclaimed += slots_reclaimed;
        self.rebuilds += rebuilds;
        self.epochs_applied += epochs_applied;
        self.relays_joined += relays_joined;
        self.relays_departed += relays_departed;
        self.epoch_teardowns += epoch_teardowns;
        self.crashes_injected += crashes_injected;
        self.timeouts_fired += timeouts_fired;
        self.retries += retries;
        self.blamed_exclusions += blamed_exclusions;
        self.flows_parked += flows_parked;
        self.crash_frames_dropped += crash_frames_dropped;
        self.stale_frames_dropped += stale_frames_dropped;
    }

    /// Registers every counter in `registry` under a `cs_*_total` name
    /// and adds this record's values — the bridge from the simulation's
    /// plain-struct counters to the Prometheus exporter
    /// (DESIGN.md §13).
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        // Exhaustive destructure (no `..`), same contract as `merge`:
        // adding a counter to WorldStats without deciding how it exports
        // is a compile error here, not a field missing from /metrics.
        let WorldStats {
            cells_sent,
            feedback_sent,
            protocol_errors,
            cells_dropped_closed,
            destroys_sent,
            cells_drained,
            slots_reclaimed,
            rebuilds,
            epochs_applied,
            relays_joined,
            relays_departed,
            epoch_teardowns,
            crashes_injected,
            timeouts_fired,
            retries,
            blamed_exclusions,
            flows_parked,
            crash_frames_dropped,
            stale_frames_dropped,
        } = *self;
        let mut emit = |name: &str, help: &str, value: u64| {
            let id = registry.counter(name, help);
            registry.add(id, value);
        };
        emit(
            "cs_cells_sent_total",
            "cell frames handed to the link layer",
            cells_sent,
        );
        emit(
            "cs_feedback_sent_total",
            "feedback frames handed to the link layer",
            feedback_sent,
        );
        emit(
            "cs_protocol_errors_total",
            "protocol violations observed",
            protocol_errors,
        );
        emit(
            "cs_cells_dropped_closed_total",
            "relay cells dropped on torn-down circuits",
            cells_dropped_closed,
        );
        emit(
            "cs_destroys_sent_total",
            "destroy cells handed to egress queues",
            destroys_sent,
        );
        emit(
            "cs_cells_drained_total",
            "queued cells discarded at circuit close",
            cells_drained,
        );
        emit(
            "cs_slots_reclaimed_total",
            "node-circuit slab slots reclaimed",
            slots_reclaimed,
        );
        emit(
            "cs_rebuilds_total",
            "circuit rebuilds performed by the churn engine",
            rebuilds,
        );
        emit(
            "cs_epochs_applied_total",
            "consensus epoch boundaries applied",
            epochs_applied,
        );
        emit(
            "cs_relays_joined_total",
            "relays brought live by epoch deltas",
            relays_joined,
        );
        emit(
            "cs_relays_departed_total",
            "relays taken dark by epoch deltas",
            relays_departed,
        );
        emit(
            "cs_epoch_teardowns_total",
            "teardowns forced by departing relays",
            epoch_teardowns,
        );
        emit(
            "cs_crashes_injected_total",
            "relay crashes injected by the fault engine",
            crashes_injected,
        );
        emit(
            "cs_timeouts_fired_total",
            "client circuit timers fired",
            timeouts_fired,
        );
        emit(
            "cs_retries_total",
            "timeout-driven rebuild attempts scheduled",
            retries,
        );
        emit(
            "cs_blamed_exclusions_total",
            "relays excluded after timeout blame",
            blamed_exclusions,
        );
        emit(
            "cs_flows_parked_total",
            "flows parked after exhausting recovery",
            flows_parked,
        );
        emit(
            "cs_crash_frames_dropped_total",
            "frames dropped at crashed relays",
            crash_frames_dropped,
        );
        emit(
            "cs_stale_frames_dropped_total",
            "stale frames dropped while faults are active",
            stale_frames_dropped,
        );
    }
}

/// The deterministic fill pattern for DATA payloads: byte `i` of cell
/// `idx` on circuit `circ`.
pub fn fill_pattern(circ: CircId, idx: u64, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    fill_pattern_into(circ, idx, &mut buf);
    buf
}

/// Writes the fill pattern for cell `idx` of `circ` into `buf` in place —
/// the allocation-free form the data path uses.
#[inline]
pub fn fill_pattern_into(circ: CircId, idx: u64, buf: &mut [u8]) {
    let base = u64::from(circ.0) * 131 + idx * 31;
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((base + i as u64) & 0xFF) as u8;
    }
}

/// Appends the fill pattern for cell `idx` of `circ` onto `buf` — the
/// form the pooled data path uses (the pool hands out empty buffers, so
/// extending writes each byte exactly once).
#[inline]
pub fn fill_pattern_extend(circ: CircId, idx: u64, len: usize, buf: &mut Vec<u8>) {
    let base = u64::from(circ.0) * 131 + idx * 31;
    buf.extend((0..len as u64).map(|i| ((base + i) & 0xFF) as u8));
}

/// Verifies `data` against the fill pattern without materialising it.
#[inline]
pub fn verify_fill_pattern(circ: CircId, idx: u64, data: &[u8]) -> bool {
    let base = u64::from(circ.0) * 131 + idx * 31;
    data.iter()
        .enumerate()
        .all(|(i, &b)| b == ((base + i as u64) & 0xFF) as u8)
}

/// One endpoint's view of a link-local circuit id: at node `node`, frames
/// arriving from `from` on this id belong to `circ` (locally `local`),
/// flowing in direction `dir`.
#[derive(Clone, Copy, Debug)]
pub(super) struct RouteEnd {
    pub(super) node: OverlayId,
    pub(super) from: OverlayId,
    pub(super) circ: CircId,
    pub(super) local: u32,
    pub(super) dir: Direction,
}

/// Both endpoints of one link-local circuit id. Link ids are minted from
/// a global counter, so the table is a dense `Vec` indexed by the id —
/// route resolution on the per-cell path is an array load plus an
/// endpoint compare, no tree walk.
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct LinkRoute {
    pub(super) a: Option<RouteEnd>,
    pub(super) b: Option<RouteEnd>,
    /// Set when an end was cleared by a force-reap rather than a
    /// quiesced teardown: the reap writes off in-flight frames that may
    /// still carry this id, so the id is *retired* instead of returning
    /// to the free list — a late frame then resolves to nothing (and is
    /// stale-dropped) instead of colliding with a re-minted id.
    pub(super) retired: bool,
}

/// Circuit-placement state: the relay population, the selection policy,
/// its dedicated randomness stream, and **live load telemetry** — the
/// number of circuits currently routed through each relay, incremented
/// when a circuit is registered and decremented when its client-side
/// participation is reclaimed after a DESTROY wave. Installed by star
/// scenarios ([`TorNetwork::install_placement`]); worlds without it
/// (explicit-path scenarios) rebuild churned circuits over the original
/// path instead of re-selecting.
pub(super) struct PlacementState {
    /// The SoA relay store: bandwidth, delay, and liveness columns,
    /// indexed by relay id (the directory order).
    directory: Directory,
    /// Relay id → overlay node hosting that relay.
    relay_overlays: Vec<OverlayId>,
    /// Overlay index → relay id (`u32::MAX` = not a relay). Only spans
    /// the relay overlays; later overlays (clients/servers) fall off the
    /// end, which reads as "not a relay".
    relay_of_overlay: Vec<u32>,
    /// Relays excluded from selection after being blamed for a circuit
    /// timeout (the client-side failure-attribution set; orthogonal to
    /// directory liveness, which only epochs toggle).
    excluded: Vec<bool>,
    /// Circuits currently routed through each relay.
    load: Vec<u32>,
    /// High-water mark of `load`: the worst concentration each relay
    /// ever saw, surviving teardown decrements — the per-relay hotspot
    /// metric placement experiments compare.
    load_hwm: Vec<u32>,
    /// The pluggable policy (see [`crate::selection`]).
    policy: SelectionPolicy,
    /// The placement randomness stream; policies may only draw from
    /// here (DESIGN.md §9).
    rng: SimRng,
    /// The incremental selection engine: sampler kept in lockstep with
    /// the load ledger and liveness column, plus reusable scratch
    /// buffers (see [`crate::selection::SelectionEngine`]).
    engine: SelectionEngine,
}

impl PlacementState {
    /// The relay id hosted by `node`, if any.
    fn relay_of(&self, node: OverlayId) -> Option<usize> {
        match self.relay_of_overlay.get(node.index()) {
            Some(&r) if r != u32::MAX => Some(r as usize),
            _ => None,
        }
    }

    /// Propagates one relay's load-ledger change into the sampler
    /// (O(log n); a no-op for load-insensitive policies).
    fn note_load_change(&mut self, relay: usize) {
        let PlacementState {
            directory,
            load,
            excluded,
            policy,
            engine,
            ..
        } = self;
        engine.load_changed(
            policy.as_ref(),
            &DirectoryView::with_exclusions(directory, load, excluded),
            relay,
        );
    }
}

/// Runtime fault-injection state: which relays have crashed, the backoff
/// jitter stream, and the circuits parked after exhausting recovery.
/// Installed by scenarios carrying a [`FaultSpec`]; worlds without it
/// take none of the fault branches (the seam is free when unused).
pub(super) struct FaultState {
    /// The resolved timer/backoff parameters.
    pub(super) spec: FaultSpec,
    /// Overlay index → crashed flag (grown lazily; a crashed relay
    /// silently drops every frame addressed to it).
    pub(super) crashed: Vec<bool>,
    /// Backoff jitter stream, consumed only when a timeout fires — so a
    /// fault schedule that never fires a timer perturbs nothing.
    pub(super) jitter: SimRng,
    /// Circuits whose flows are parked (retry cap hit, or the selectable
    /// relay set fell below the interior path length); resumed when the
    /// next epoch join replenishes the live set.
    pub(super) parked: Vec<CircId>,
}

impl FaultState {
    /// Whether the overlay node at `idx` has crashed.
    #[inline]
    pub(super) fn is_crashed(&self, idx: usize) -> bool {
        self.crashed.get(idx).copied().unwrap_or(false)
    }

    /// Marks the overlay node at `idx` crashed; returns `false` if it
    /// already was.
    pub(super) fn mark_crashed(&mut self, idx: usize) -> bool {
        if self.crashed.len() <= idx {
            self.crashed.resize(idx + 1, false);
        }
        if self.crashed[idx] {
            return false;
        }
        self.crashed[idx] = true;
        true
    }
}

/// The overlay world. Construct with [`TorNetwork::new`], add nodes and
/// circuits, then drive with a [`simcore::Simulator`](simcore::sim::Simulator)
/// after scheduling [`TorEvent::StartCircuit`] events.
pub struct TorNetwork {
    pub(super) net: Net<WireFrame>,
    pub(super) router: Router,
    pub(super) nodes: Vec<OverlayNode>,
    /// Overlay index → backing network node (read-only after setup; kept
    /// separate so hot paths can use it while a node is borrowed mutably).
    pub(super) net_node_of: Vec<NodeId>,
    /// Network node index → overlay id (`u32::MAX` = no overlay there,
    /// e.g. the star hub). Dense counterpart of `net_node_of`.
    pub(super) overlay_of_net: Vec<u32>,
    pub(super) circuits: Vec<CircuitInfo>,
    /// Application-level requests, tracked across circuit incarnations
    /// (see [`crate::workload`]).
    pub(super) flows: Vec<FlowState>,
    /// Route table indexed by link-local circuit id (see [`LinkRoute`]).
    pub(super) link_routes: Vec<LinkRoute>,
    /// Link-local ids whose both route ends were reclaimed, awaiting
    /// reuse (LIFO for determinism). Churn recycles ids instead of
    /// growing the route table.
    pub(super) free_link_ids: Vec<CircuitId>,
    pub(super) factory: CcFactory,
    pub(super) cfg: WorldConfig,
    pub(super) rng: SimRng,
    /// Per-link round-robin circuit schedulers (overlay egress links; the
    /// hub's links stay FIFO — the backbone is not ours to schedule).
    pub(super) link_sched: Vec<LinkScheduler>,
    /// Recycles DATA payload buffers between server consumption and
    /// client generation (see [`crate::pool`]).
    pub(super) payload_pool: PayloadPool,
    /// Circuit-placement seam (relay population + policy + live load);
    /// `None` for explicit-path worlds.
    pub(super) placement: Option<PlacementState>,
    /// Pending consensus epoch deltas, indexed by epoch number; each is
    /// consumed (taken) when its [`TorEvent::Epoch`] fires.
    pub(super) epoch_deltas: Vec<EpochDelta>,
    /// Fault-injection state (crashed relays, backoff jitter, parked
    /// circuits); `None` for fault-free worlds.
    pub(super) faults: Option<FaultState>,
    pub(super) stats: WorldStats,
    /// Streaming twin of [`TorNetwork::flow_completion_cdf`]: every flow
    /// completion is folded in (seconds) the moment it happens, so the
    /// distribution is available at O(buckets) memory without retaining
    /// per-flow samples.
    pub(super) completion_sketch: QuantileSketch,
}

impl TorNetwork {
    /// Creates an overlay over an already-built network and routing table.
    pub fn new(
        net: Net<WireFrame>,
        router: Router,
        cfg: WorldConfig,
        factory: CcFactory,
        rng: SimRng,
    ) -> TorNetwork {
        let link_sched = (0..net.link_count())
            .map(|_| LinkScheduler::new())
            .collect();
        TorNetwork {
            net,
            router,
            nodes: Vec::new(),
            net_node_of: Vec::new(),
            overlay_of_net: Vec::new(),
            circuits: Vec::new(),
            flows: Vec::new(),
            // Id 0 is reserved (CircuitId::CONTROL); keep the table
            // aligned with minted ids.
            link_routes: vec![LinkRoute::default()],
            free_link_ids: Vec::new(),
            factory,
            cfg,
            rng,
            link_sched,
            payload_pool: PayloadPool::new(),
            placement: None,
            epoch_deltas: Vec::new(),
            faults: None,
            stats: WorldStats::default(),
            completion_sketch: QuantileSketch::default(),
        }
    }

    /// Installs the fault-recovery parameters and the backoff jitter
    /// stream. Scenarios with a [`FaultSpec`] call this before traffic;
    /// without it, crash events still drop frames omnisciently but no
    /// client timers arm (builders always pair the two).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn install_faults(&mut self, spec: FaultSpec, jitter: SimRng) {
        assert!(self.faults.is_none(), "faults installed twice");
        self.faults = Some(FaultState {
            spec,
            crashed: Vec::new(),
            jitter,
            parked: Vec::new(),
        });
    }

    /// Whether fault injection is installed (the recovery loop is
    /// armed).
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Circuits currently parked by the recovery loop (retry cap or
    /// thin live set), in park order.
    pub fn parked_circuits(&self) -> &[CircId] {
        self.faults.as_ref().map_or(&[], |f| f.parked.as_slice())
    }

    /// Whether the overlay node `id` has crashed.
    pub fn is_crashed(&self, id: OverlayId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.is_crashed(id.index()))
    }

    /// Installs the circuit-placement seam: the relay store paired with
    /// the overlay nodes hosting its relays, the selection policy, and
    /// the placement randomness stream. Must be called before the first
    /// placement; all load counters start at zero. The sampler backing
    /// the selection engine is chosen automatically
    /// ([`SamplerKind::Auto`]: linear below the crossover, Fenwick at
    /// consensus scale) — use
    /// [`TorNetwork::install_placement_with_sampler`] to pin one.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if `directory` and `relay_overlays`
    /// disagree in length.
    pub fn install_placement(
        &mut self,
        directory: Directory,
        relay_overlays: Vec<OverlayId>,
        policy: SelectionPolicy,
        rng: SimRng,
    ) {
        self.install_placement_with_sampler(
            directory,
            relay_overlays,
            policy,
            rng,
            SamplerKind::Auto,
        );
    }

    /// [`TorNetwork::install_placement`] with an explicit sampler choice
    /// (differential suites and benches pin linear vs Fenwick; the picks
    /// are identical either way — see [`crate::sampler`]).
    pub fn install_placement_with_sampler(
        &mut self,
        directory: Directory,
        relay_overlays: Vec<OverlayId>,
        policy: SelectionPolicy,
        rng: SimRng,
        sampler: SamplerKind,
    ) {
        assert!(self.placement.is_none(), "placement installed twice");
        assert_eq!(
            directory.len(),
            relay_overlays.len(),
            "one overlay node per relay spec"
        );
        let mut relay_of_overlay = Vec::new();
        for (r, &o) in relay_overlays.iter().enumerate() {
            if relay_of_overlay.len() <= o.index() {
                relay_of_overlay.resize(o.index() + 1, u32::MAX);
            }
            assert!(
                relay_of_overlay[o.index()] == u32::MAX,
                "overlay node hosts two relays"
            );
            relay_of_overlay[o.index()] = u32::try_from(r).expect("relay id fits u32");
        }
        let load = vec![0u32; directory.len()];
        let load_hwm = load.clone();
        let engine = SelectionEngine::new(
            policy.as_ref(),
            &DirectoryView::new(&directory, &load),
            sampler,
        );
        let excluded = vec![false; directory.len()];
        self.placement = Some(PlacementState {
            directory,
            relay_overlays,
            relay_of_overlay,
            excluded,
            load,
            load_hwm,
            policy,
            rng,
            engine,
        });
    }

    /// Asks the installed policy for `path_len` distinct relays under
    /// the current load view, returning the overlay nodes hosting them
    /// (in path order). Used for initial placement by star builders and
    /// by the churn engine when a torn-down circuit rebuilds. Runs
    /// through the incremental [`SelectionEngine`] — no weight rebuild,
    /// no allocation on the steady-state path.
    ///
    /// # Panics
    ///
    /// Panics if no placement is installed, or if the policy violates
    /// its contract (wrong count, out-of-range or repeated indices).
    pub fn select_relays(&mut self, path_len: usize) -> Vec<OverlayId> {
        let p = self
            .placement
            .as_mut()
            .expect("no placement policy installed");
        let PlacementState {
            directory,
            load,
            excluded,
            policy,
            rng,
            engine,
            relay_overlays,
            ..
        } = p;
        let view = DirectoryView::with_exclusions(directory, load, excluded);
        let picks = engine.select(policy.as_ref(), &view, rng, path_len);
        assert_eq!(
            picks.len(),
            path_len,
            "policy `{}` returned {} relays, wanted {path_len}",
            policy.name(),
            picks.len()
        );
        for (i, &a) in picks.iter().enumerate() {
            assert!(
                a < directory.len(),
                "policy `{}` picked out-of-range relay {a}",
                policy.name()
            );
            assert!(
                !picks[..i].contains(&a),
                "policy `{}` picked relay {a} twice",
                policy.name()
            );
        }
        picks.iter().map(|&i| relay_overlays[i]).collect()
    }

    /// Toggles one relay's liveness (consensus epoch churn), updating
    /// the store's live count and the selection engine's weight for that
    /// relay. Returns `false` if the relay was already in that state.
    ///
    /// # Panics
    ///
    /// Panics if no placement is installed.
    pub fn set_relay_live(&mut self, relay: usize, live: bool) -> bool {
        let p = self
            .placement
            .as_mut()
            .expect("no placement policy installed");
        if !p.directory.set_live(relay, live) {
            return false;
        }
        let PlacementState {
            directory,
            load,
            excluded,
            policy,
            engine,
            ..
        } = p;
        engine.relay_changed(
            policy.as_ref(),
            &DirectoryView::with_exclusions(directory, load, excluded),
            relay,
        );
        true
    }

    /// Excludes one relay from future selection (blame after a circuit
    /// timeout), propagating the weight change into the selection
    /// engine. Returns `false` if already excluded or no placement is
    /// installed.
    pub fn exclude_relay(&mut self, relay: usize) -> bool {
        let Some(p) = self.placement.as_mut() else {
            return false;
        };
        if p.excluded[relay] {
            return false;
        }
        p.excluded[relay] = true;
        let PlacementState {
            directory,
            load,
            excluded,
            policy,
            engine,
            ..
        } = p;
        engine.relay_changed(
            policy.as_ref(),
            &DirectoryView::with_exclusions(directory, load, excluded),
            relay,
        );
        true
    }

    /// Per-relay blame-exclusion column (indexed by relay id), if a
    /// placement seam is installed.
    pub fn relay_excluded(&self) -> Option<&[bool]> {
        self.placement.as_ref().map(|p| p.excluded.as_slice())
    }

    /// The relay id hosted by overlay node `node`, if a placement seam is
    /// installed and the node hosts one (blame resolution).
    pub(super) fn relay_id_of(&self, node: OverlayId) -> Option<usize> {
        self.placement.as_ref().and_then(|p| p.relay_of(node))
    }

    /// The overlay node hosting relay `relay`: directory index with a
    /// placement seam, the overlay id itself without one (explicit-path
    /// scenarios name overlay nodes directly in their fault schedules).
    pub(super) fn overlay_of_relay(&self, relay: u32) -> OverlayId {
        match self.placement.as_ref() {
            Some(p) => p.relay_overlays[relay as usize],
            None => OverlayId(relay),
        }
    }

    /// Number of relays currently selectable (live, unexcluded, positive
    /// weight) — O(1) via the selection engine; `None` without a
    /// placement seam. The graceful-degradation gate in the recovery
    /// loop compares this against the interior path length.
    pub fn selectable_relays(&self) -> Option<usize> {
        self.placement.as_ref().map(|p| p.engine.selectable())
    }

    /// Circuits currently routed through each relay (indexed by relay
    /// id), if a placement seam is installed. Grows on circuit
    /// registration and shrinks when the client-side participation is
    /// reclaimed after teardown, so full churn teardown returns every
    /// counter to zero.
    pub fn relay_loads(&self) -> Option<&[u32]> {
        self.placement.as_ref().map(|p| p.load.as_slice())
    }

    /// High-water mark of [`TorNetwork::relay_loads`]: the worst circuit
    /// concentration each relay ever carried, surviving teardown
    /// decrements. This is the hotspot metric placement experiments
    /// compare — an end-of-run load snapshot hides the mid-run
    /// concentrations churn already rebuilt away from.
    pub fn relay_load_hwms(&self) -> Option<&[u32]> {
        self.placement.as_ref().map(|p| p.load_hwm.as_slice())
    }

    /// The installed selection policy's name, if any (experiment
    /// labels).
    pub fn selection_policy_name(&self) -> Option<&'static str> {
        self.placement.as_ref().map(|p| p.policy.name())
    }

    /// The selection engine's active sampler name ("linear" /
    /// "fenwick"), if a placement seam is installed.
    pub fn selection_sampler_name(&self) -> Option<&'static str> {
        self.placement.as_ref().map(|p| p.engine.sampler_name())
    }

    /// Per-relay liveness column (indexed by relay id), if a placement
    /// seam is installed. Dark relays are never selected.
    pub fn relay_live(&self) -> Option<&[bool]> {
        self.placement.as_ref().map(|p| p.directory.live())
    }

    /// Installs the consensus epoch delta stream; delta `i` is applied
    /// when [`TorEvent::Epoch`]`(i)` fires (builders schedule those at
    /// the epoch boundaries).
    ///
    /// # Panics
    ///
    /// Panics if deltas were already installed.
    pub fn install_epochs(&mut self, deltas: Vec<EpochDelta>) {
        assert!(self.epoch_deltas.is_empty(), "epoch deltas installed twice");
        self.epoch_deltas = deltas;
    }

    /// Checks the placement ledger invariant: every relay's load counter
    /// equals the number of *accounted* circuit incarnations crossing
    /// it. Returns `true` for worlds without a placement seam. The churn
    /// and epoch property tests call this after every reclamation wave.
    pub fn verify_placement_ledger(&self) -> bool {
        let Some(p) = self.placement.as_ref() else {
            return true;
        };
        let mut expect = vec![0u32; p.directory.len()];
        for info in &self.circuits {
            if !info.accounted {
                continue;
            }
            for &n in &info.path {
                if let Some(r) = p.relay_of(n) {
                    expect[r] += 1;
                }
            }
        }
        expect == p.load
    }

    /// Records `path` into the live load view (one count per relay the
    /// circuit crosses), propagating each increment into the selection
    /// engine; no-op without a placement seam.
    fn account_placement(&mut self, path: &[OverlayId]) {
        if let Some(p) = self.placement.as_mut() {
            for &n in path {
                if let Some(r) = p.relay_of(n) {
                    p.load[r] += 1;
                    p.load_hwm[r] = p.load_hwm[r].max(p.load[r]);
                    p.note_load_change(r);
                }
            }
        }
    }

    /// Removes `path` from the live load view (teardown reclamation),
    /// propagating each decrement into the selection engine; no-op
    /// without a placement seam or if the circuit's +1 was already
    /// reclaimed.
    pub(super) fn unaccount_placement(&mut self, circ: CircId) {
        let Some(p) = self.placement.as_mut() else {
            return;
        };
        let info = &mut self.circuits[circ.index()];
        if !info.accounted {
            return;
        }
        info.accounted = false;
        for &n in &info.path {
            if let Some(r) = p.relay_of(n) {
                debug_assert!(p.load[r] > 0, "placement load underflow");
                p.load[r] = p.load[r].saturating_sub(1);
                p.note_load_change(r);
            }
        }
    }

    /// Registers one endpoint of a link-local circuit id: at `node`,
    /// frames from `from` on `link_id` resolve to `(circ, local, dir)`.
    pub(super) fn register_route(
        &mut self,
        link_id: CircuitId,
        node: OverlayId,
        from: OverlayId,
        circ: CircId,
        local: u32,
        dir: Direction,
    ) {
        let entry = &mut self.link_routes[link_id.0 as usize];
        let end = RouteEnd {
            node,
            from,
            circ,
            local,
            dir,
        };
        if entry.a.is_none() {
            entry.a = Some(end);
        } else {
            debug_assert!(
                entry.b.is_none(),
                "link id {link_id:?} has two ends only: a={:?} b={:?} new={end:?}",
                entry.a,
                entry.b
            );
            entry.b = Some(end);
        }
    }

    /// Clears `node`'s end of link-local id `link_id` (teardown
    /// reclamation). Once both ends are gone the id returns to the free
    /// list and a later circuit build re-mints it — unless any end was
    /// force-reaped ([`LinkRoute::retired`]), in which case the id is
    /// permanently retired: the reap wrote off in-flight frames that
    /// may still carry it, and re-minting would let a straggler resolve
    /// against the wrong circuit. Retirement is bounded by crashes ×
    /// path length, so the table stays effectively flat.
    pub(super) fn clear_route_end(&mut self, link_id: CircuitId, node: OverlayId) {
        let entry = &mut self.link_routes[link_id.0 as usize];
        if entry.a.is_some_and(|e| e.node == node) {
            entry.a = None;
        }
        if entry.b.is_some_and(|e| e.node == node) {
            entry.b = None;
        }
        if entry.a.is_none() && entry.b.is_none() && !entry.retired {
            self.free_link_ids.push(link_id);
        }
    }

    /// Marks a link-local id as retired (see [`LinkRoute::retired`]):
    /// the force-reap path calls this before reclaiming, so the id never
    /// re-enters the free list even after both ends clear.
    pub(super) fn retire_link_id(&mut self, id: CircuitId) {
        self.link_routes[id.0 as usize].retired = true;
    }

    /// Resolves an arriving cell's `(receiving node, sending neighbour,
    /// link-local id)` to `(global circuit, node-local index, flow
    /// direction)` — the per-cell route lookup.
    #[inline]
    pub(super) fn route_of(
        &self,
        to: OverlayId,
        from: OverlayId,
        link_id: CircuitId,
    ) -> Option<(CircId, u32, Direction)> {
        let entry = self.link_routes.get(link_id.0 as usize)?;
        [entry.a, entry.b]
            .into_iter()
            .flatten()
            .find(|e| e.node == to && e.from == from)
            .map(|e| (e.circ, e.local, e.dir))
    }

    /// Registers an overlay participant backed by network node `net_node`.
    pub fn add_overlay(&mut self, net_node: NodeId, role: NodeRole, name: &str) -> OverlayId {
        let id = OverlayId(u32::try_from(self.nodes.len()).expect("too many overlay nodes"));
        if self.overlay_of_net.len() <= net_node.index() {
            self.overlay_of_net.resize(net_node.index() + 1, u32::MAX);
        }
        assert!(
            self.overlay_of_net[net_node.index()] == u32::MAX,
            "network node already hosts an overlay node"
        );
        self.overlay_of_net[net_node.index()] = id.0;
        self.nodes
            .push(OverlayNode::new(id, net_node, role, name.to_string()));
        self.net_node_of.push(net_node);
        id
    }

    /// Registers a new application-level flow of `requested` bytes.
    pub fn add_flow(&mut self, requested: u64) -> FlowId {
        let id = FlowId(u32::try_from(self.flows.len()).expect("too many flows"));
        self.flows.push(FlowState::new(requested));
        id
    }

    /// Registers a circuit over `path` carrying a single immediate bulk
    /// flow of `file_bytes`; start it by scheduling
    /// [`TorEvent::StartCircuit`].
    pub fn add_circuit(&mut self, path: Vec<OverlayId>, file_bytes: u64) -> CircId {
        let flow = self.add_flow(file_bytes);
        self.add_circuit_with_workload(path, CircuitWorkload::bulk(flow, file_bytes), 0)
    }

    /// Registers a circuit over `path` carrying a resolved workload
    /// (streams must reference flows registered via
    /// [`TorNetwork::add_flow`]). `incarnation` counts rebuild cycles
    /// (0 = original build).
    pub fn add_circuit_with_workload(
        &mut self,
        path: Vec<OverlayId>,
        workload: CircuitWorkload,
        incarnation: u32,
    ) -> CircId {
        assert!(
            path.len() >= 2,
            "a circuit needs at least client and server"
        );
        for &n in &path {
            assert!(n.index() < self.nodes.len(), "unknown overlay node on path");
        }
        assert!(!workload.streams.is_empty(), "a circuit needs a stream");
        for s in &workload.streams {
            assert!(s.flow.index() < self.flows.len(), "unregistered flow");
        }
        let id = CircId(u32::try_from(self.circuits.len()).expect("too many circuits"));
        self.account_placement(&path);
        self.circuits.push(CircuitInfo {
            path,
            file_bytes: workload.total_bytes(),
            started_at: None,
            workload,
            incarnation,
            accounted: self.placement.is_some(),
            retries: 0,
        });
        id
    }

    /// The underlying packet network (for link telemetry).
    pub fn net(&self) -> &Net<WireFrame> {
        &self.net
    }

    /// Global counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// The payload buffer pool (telemetry: fresh allocations vs reuses).
    pub fn payload_pool(&self) -> &PayloadPool {
        &self.payload_pool
    }

    /// Installs a scenario-sized payload-pool idle cap (see
    /// [`PayloadPool::scenario_max_idle`]). Builders call this before
    /// any traffic flows; at the circuit counts the async runtime
    /// targets, the default cap would sit below the steady-state
    /// in-flight payload population and thrash alloc/free.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already handed out buffers — resizing
    /// mid-run would corrupt the conservation telemetry.
    pub fn set_payload_pool_cap(&mut self, max_idle: usize) {
        assert_eq!(
            self.payload_pool.acquired(),
            0,
            "payload pool cap must be set before traffic"
        );
        self.payload_pool = PayloadPool::with_max_idle(max_idle);
    }

    /// The static record of a circuit.
    pub fn circuit_info(&self, circ: CircId) -> &CircuitInfo {
        &self.circuits[circ.index()]
    }

    /// Number of registered circuits (every incarnation counts).
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }

    /// All application-level flows.
    pub fn flows(&self) -> &[FlowState] {
        &self.flows
    }

    /// One flow's state.
    pub fn flow(&self, flow: FlowId) -> &FlowState {
        &self.flows[flow.index()]
    }

    /// Request-to-last-byte completion times of all completed flows —
    /// the per-stream CDF of a workload experiment. Exact but O(flows):
    /// see [`flow_completion_sketch`](Self::flow_completion_sketch) for
    /// the fixed-size streaming twin.
    pub fn flow_completion_cdf(&self) -> Option<simstats::cdf::Cdf> {
        simstats::cdf::Cdf::from_samples(
            self.flows
                .iter()
                .filter_map(|f| f.completion_time())
                .map(|d| d.as_secs_f64())
                .collect(),
        )
    }

    /// The streaming completion-time sketch (seconds): fed as each flow
    /// finishes, mergeable across worlds, within
    /// [`QuantileSketch::alpha`] relative error of the exact CDF. Empty
    /// until the first completion.
    pub fn flow_completion_sketch(&self) -> &QuantileSketch {
        &self.completion_sketch
    }

    /// Size of the link-route table (slots, live or free). Stays flat
    /// across churn cycles once the free list primes.
    pub fn link_route_slots(&self) -> usize {
        self.link_routes.len()
    }

    /// Reclaimed link-local ids awaiting reuse.
    pub fn free_link_routes(&self) -> usize {
        self.free_link_ids.len()
    }

    /// An overlay node.
    pub fn node(&self, id: OverlayId) -> &OverlayNode {
        &self.nodes[id.index()]
    }

    /// Number of overlay nodes (clients + relays + servers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The client's forward hop transport of a circuit, if built.
    pub fn client_transport(&self, circ: CircId) -> Option<&HopTransport> {
        let client = *self.circuits[circ.index()].path.first()?;
        let nc = self.nodes[client.index()].circuit(circ)?;
        Some(&nc.fwd.as_ref()?.transport)
    }

    /// The recorded source congestion-window trace of a circuit (requires
    /// [`WorldConfig::trace_client_cwnd`]).
    pub fn source_cwnd_trace(&self, circ: CircId) -> Option<&[(SimTime, u32)]> {
        self.client_transport(circ)?.cwnd_trace()
    }

    /// The recorded per-cell RTT samples at the source (requires
    /// [`WorldConfig::trace_client_cwnd`]).
    pub fn source_rtt_trace(&self, circ: CircId) -> Option<&[(SimTime, u64, SimDuration)]> {
        self.client_transport(circ)?.rtt_trace()
    }

    /// The forward-queue high-water mark at `node` for `circ` — the
    /// backpressure bound tests assert on.
    pub fn fwd_queue_hwm(&self, node: OverlayId, circ: CircId) -> Option<usize> {
        let nc = self.nodes[node.index()].circuit(circ)?;
        Some(nc.fwd.as_ref()?.queue_hwm)
    }

    /// The round-robin scheduler backlog high-water mark of an egress
    /// link — where queueing shows up now that links take one frame at a
    /// time.
    pub fn sched_backlog_hwm(&self, link: netsim::link::LinkId) -> usize {
        self.link_sched[link.index()].high_water_mark()
    }

    /// Collects the measured outcome of every circuit.
    pub fn results(&self) -> Vec<CircuitResult> {
        (0..self.circuits.len())
            .map(|i| self.result_of(CircId(i as u32)))
            .collect()
    }

    /// The measured outcome of one circuit.
    pub fn result_of(&self, circ: CircId) -> CircuitResult {
        let info = &self.circuits[circ.index()];
        let client_node = info.path[0];
        let server_node = *info.path.last().expect("non-empty path");
        let client = self.nodes[client_node.index()]
            .circuit(circ)
            .and_then(|nc| nc.client.as_ref());
        let server = self.nodes[server_node.index()]
            .circuit(circ)
            .and_then(|nc| nc.server.as_ref());
        CircuitResult {
            circ,
            started_at: info.started_at,
            connected_at: client.and_then(|c| c.connected_at),
            first_data_at: client.and_then(|c| c.first_data_at),
            last_byte_at: server.and_then(|s| s.last_byte_at),
            completed: server.is_some_and(|s| s.ended),
            bytes_delivered: server.map_or(0, |s| s.bytes_received),
            cells_delivered: server.map_or(0, |s| s.cells_received),
            payload_errors: server.map_or(0, |s| s.payload_errors),
        }
    }

    /// Records a protocol violation (debug builds abort; release builds
    /// count and continue).
    pub(super) fn protocol_error(stats: &mut WorldStats, what: &str) {
        stats.protocol_errors += 1;
        debug_assert!(false, "protocol error: {what}");
    }

    /// A frame that cannot be resolved (unknown route, retired
    /// sequence): with faults installed this is expected — stale traffic
    /// racing a force-abandoned or crash-reaped circuit — and is counted
    /// as a stale drop. Without faults it remains a hard protocol error:
    /// a dropped cell must never panic the World, but a world that
    /// cannot lose cells must not silently tolerate one either.
    pub(super) fn stale_or_protocol_error(
        faults: &Option<FaultState>,
        stats: &mut WorldStats,
        what: &str,
    ) {
        if faults.is_some() {
            stats.stale_frames_dropped += 1;
        } else {
            Self::protocol_error(stats, what);
        }
    }
}

impl World for TorNetwork {
    type Event = TorEvent;

    fn handle(&mut self, ctx: &mut Context<'_, TorEvent>, event: TorEvent) {
        match event {
            TorEvent::Net(NetEvent::TxComplete { link }) => {
                // A cell that just finished serializing is now physically
                // forwarded: pay the feedback owed to the upstream
                // neighbour. `take()` ensures intermediate switches (the
                // star hub) do not pay it a second time.
                let confirm = self
                    .net
                    .transmitting_mut(link)
                    .and_then(|f| f.confirm.take());
                self.net.on_tx_complete(ctx, link);
                // Serve the next scheduled frame before anything else so
                // the link never idles while work is waiting.
                Self::refill_link(&mut self.net, &mut self.link_sched, ctx, link);
                if let Some(cf) = confirm {
                    let my_net = self.net.link_src(link);
                    Self::send_feedback(
                        &mut self.net,
                        &mut self.link_sched,
                        &self.router,
                        &self.net_node_of,
                        &mut self.stats,
                        ctx,
                        my_net,
                        cf,
                    );
                }
            }
            TorEvent::Net(NetEvent::Deliver { link }) => {
                let frame = self.net.take_delivered(link);
                let here = self.net.link_dst(link);
                if here != frame.dst {
                    // An intermediate switch (the star hub): forward.
                    let next = self.router.next_link(here, frame.dst);
                    let outcome = self.net.send(ctx, next, frame);
                    debug_assert_eq!(outcome, SendOutcome::Accepted, "switch dropped a frame");
                } else {
                    self.deliver(ctx, frame);
                }
            }
            TorEvent::StartCircuit(circ) => self.start_circuit(ctx, circ),
            TorEvent::Teardown(circ) => self.teardown(ctx, circ),
            TorEvent::StreamArrival { circ, stream } => self.stream_arrival(ctx, circ, stream),
            TorEvent::Rebuild(circ) => self.rebuild_circuit(ctx, circ),
            TorEvent::Epoch(epoch) => self.apply_epoch(ctx, epoch),
            TorEvent::SetLinkRate { link, rate } => self.net.set_link_rate(link, rate),
            TorEvent::RelayCrash { relay } => self.relay_crash(ctx, relay),
            TorEvent::CircTimeout {
                circ,
                incarnation,
                progress,
                kind,
            } => self.circ_timeout(ctx, circ, incarnation, progress, kind),
        }
    }
}
