//! Per-link circuit scheduling.
//!
//! Tor relays do not serve their outgoing connection first-come-first-
//! served across circuits: they pick the next *circuit* to send from
//! (classically round-robin, later EWMA-weighted). This matters for
//! congestion experiments — under FIFO, a sender that overshoots its
//! window grabs queue positions and is rewarded with earlier service;
//! under round-robin, overshooting only delays the sender's own cells.
//! BackTap inherits the round-robin model, so this reproduction does too.
//!
//! Mechanically: each overlay node hands its egress link **one frame at a
//! time**. While the link serializes, further frames wait here, in
//! per-circuit queues; on `TxComplete` the overlay pulls the next frame —
//! feedback frames first (they are the transport's control signal, like
//! ACKs), then data cells round-robin across circuits.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::CircId;
use crate::wire::WireFrame;

/// Round-robin frame scheduler for one egress link (see module docs).
#[derive(Default)]
pub struct LinkScheduler {
    /// Control frames (feedback): strict priority, FIFO among themselves.
    feedback: VecDeque<WireFrame>,
    /// Data cells, one queue per circuit.
    per_circuit: BTreeMap<CircId, VecDeque<WireFrame>>,
    /// Rotation order over circuits with queued cells.
    rotation: VecDeque<CircId>,
    /// Telemetry: largest number of frames ever waiting here.
    hwm: usize,
    /// Current number of frames waiting.
    len: usize,
}

impl LinkScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> LinkScheduler {
        LinkScheduler::default()
    }

    /// Queues a feedback frame (strict priority over data).
    pub fn push_feedback(&mut self, frame: WireFrame) {
        self.feedback.push_back(frame);
        self.bump();
    }

    /// Queues a data cell on `circ`'s queue.
    pub fn push_cell(&mut self, circ: CircId, frame: WireFrame) {
        let queue = self.per_circuit.entry(circ).or_default();
        if queue.is_empty() {
            self.rotation.push_back(circ);
        }
        queue.push_back(frame);
        self.bump();
    }

    /// Picks the next frame: feedback first, then the next circuit in the
    /// rotation (which moves to the back if it still has cells).
    pub fn pop(&mut self) -> Option<WireFrame> {
        if let Some(fb) = self.feedback.pop_front() {
            self.len -= 1;
            return Some(fb);
        }
        let circ = self.rotation.pop_front()?;
        let queue = self
            .per_circuit
            .get_mut(&circ)
            .expect("rotation entries always have queues");
        let frame = queue.pop_front().expect("queued circuits are non-empty");
        if queue.is_empty() {
            self.per_circuit.remove(&circ);
        } else {
            self.rotation.push_back(circ);
        }
        self.len -= 1;
        Some(frame)
    }

    /// Frames currently waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest backlog ever observed (telemetry).
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Number of distinct circuits currently queued.
    pub fn queued_circuits(&self) -> usize {
        self.per_circuit.len()
    }

    fn bump(&mut self) {
        self.len += 1;
        self.hwm = self.hwm.max(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::net::Net;
    use torcell::cell::{Cell, Feedback};
    use torcell::ids::CircuitId;

    fn frames() -> (WireFrame, WireFrame) {
        let mut net: Net<WireFrame> = Net::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        let cell = WireFrame {
            src: a,
            dst: b,
            payload: crate::wire::FramePayload::Cell {
                cell: Cell::destroy(CircuitId(1), 0),
                hop_seq: 0,
            },
            confirm: None,
        };
        let fb = WireFrame {
            src: a,
            dst: b,
            payload: crate::wire::FramePayload::Feedback(Feedback {
                circ: CircuitId(1),
                seq: 0,
            }),
            confirm: None,
        };
        (cell, fb)
    }

    fn tag_of(frame: &WireFrame) -> u64 {
        match &frame.payload {
            crate::wire::FramePayload::Cell { hop_seq, .. } => *hop_seq,
            crate::wire::FramePayload::Feedback(fb) => 1_000 + fb.seq,
        }
    }

    fn cell_with_seq(seq: u64) -> WireFrame {
        let (mut cell, _) = frames();
        if let crate::wire::FramePayload::Cell { hop_seq, .. } = &mut cell.payload {
            *hop_seq = seq;
        }
        cell
    }

    #[test]
    fn empty_scheduler() {
        let mut s = LinkScheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.pop().is_none());
        assert_eq!(s.high_water_mark(), 0);
    }

    #[test]
    fn feedback_has_strict_priority() {
        let (_, fb) = frames();
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_feedback(fb);
        assert_eq!(tag_of(&s.pop().unwrap()), 1_000, "feedback first");
        assert_eq!(tag_of(&s.pop().unwrap()), 1);
    }

    #[test]
    fn round_robin_across_circuits() {
        let mut s = LinkScheduler::new();
        // Circuit 0 queues three cells before circuit 1 queues two.
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_cell(CircId(0), cell_with_seq(2));
        s.push_cell(CircId(0), cell_with_seq(3));
        s.push_cell(CircId(1), cell_with_seq(11));
        s.push_cell(CircId(1), cell_with_seq(12));
        assert_eq!(s.queued_circuits(), 2);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|f| tag_of(&f))).collect();
        // FIFO would give 1,2,3,11,12; round-robin interleaves.
        assert_eq!(order, vec![1, 11, 2, 12, 3]);
    }

    #[test]
    fn per_circuit_order_is_fifo() {
        let mut s = LinkScheduler::new();
        for seq in 1..=4 {
            s.push_cell(CircId(7), cell_with_seq(seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|f| tag_of(&f))).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn rotation_survives_emptying_and_refilling() {
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        assert_eq!(tag_of(&s.pop().unwrap()), 1);
        assert!(s.is_empty());
        s.push_cell(CircId(0), cell_with_seq(2));
        s.push_cell(CircId(1), cell_with_seq(11));
        assert_eq!(tag_of(&s.pop().unwrap()), 2);
        assert_eq!(tag_of(&s.pop().unwrap()), 11);
    }

    #[test]
    fn high_water_mark_counts_all_classes() {
        let (_, fb) = frames();
        let mut s = LinkScheduler::new();
        s.push_cell(CircId(0), cell_with_seq(1));
        s.push_feedback(fb);
        s.push_cell(CircId(1), cell_with_seq(2));
        assert_eq!(s.high_water_mark(), 3);
        s.pop();
        s.pop();
        s.pop();
        assert_eq!(s.high_water_mark(), 3);
        assert!(s.is_empty());
    }
}
