//! Rendering a [`ScanReport`]: human text, `--json` (same hand-rolled
//! JSON idiom as `cs_bench::harness`), and `--fix-annotations`
//! paste-ready triage output.

use crate::engine::ScanReport;

/// Human-readable findings, one per line, `file:line:col` first so
/// terminals link them.
pub fn human(report: &ScanReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
    }
    out.push_str(&format!(
        "cs-lint: {} finding{} across {} files\n",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
    ));
    out
}

/// JSON document:
/// `{"tool", "files_scanned", "finding_count", "rule_counts", "findings"}`.
/// `rule_counts` maps each rule that fired to its finding count,
/// name-sorted, so CI dashboards can trend per-rule totals without
/// re-aggregating the findings array.
pub fn json(report: &ScanReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"cs-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"finding_count\": {},\n",
        report.findings.len()
    ));
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in &report.findings {
        *counts.entry(&f.rule).or_default() += 1;
    }
    if counts.is_empty() {
        out.push_str("  \"rule_counts\": {},\n");
    } else {
        out.push_str("  \"rule_counts\": {\n");
        for (i, (rule, n)) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {n}{}\n",
                json_str(rule),
                if i + 1 < counts.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n");
    }
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"file\": {}, ", json_str(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"col\": {}, ", f.col));
        out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
        out.push_str(&format!("\"message\": {}", json_str(&f.message)));
        out.push('}');
        if i + 1 < report.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ready-to-paste `allow` lines for every finding, indented to match
/// the flagged line, so triage is copy-paste instead of hand-formatting.
/// `raw_lines` maps each finding index to the untrimmed flagged line.
/// Only findings of enum rules are annotatable: `malformed-annotation`
/// and `unused-allow` have no suppression form and are skipped.
pub fn fix_annotations(report: &ScanReport, raw_lines: &[String]) -> String {
    let mut out = String::new();
    let annotatable = report
        .findings
        .iter()
        .filter(|f| crate::rules::Rule::from_name(&f.rule).is_some())
        .count();
    out.push_str(&format!(
        "cs-lint --fix-annotations: {annotatable} annotatable finding{} (dry run; paste \
         each line above its finding, then replace the reason placeholder; re-run with \
         --apply to write them in place)\n",
        if annotatable == 1 { "" } else { "s" },
    ));
    for (f, raw) in report.findings.iter().zip(raw_lines) {
        if crate::rules::Rule::from_name(&f.rule).is_none() {
            continue;
        }
        let indent: String = raw.chars().take_while(|c| c.is_whitespace()).collect();
        out.push_str(&format!("\n{}:{}  ({})\n", f.path, f.line, f.rule));
        out.push_str(&format!(
            "{indent}// cs-lint: allow({}, reason = \"<why this site cannot break the \
             invariant>\")\n",
            f.rule
        ));
    }
    out
}

/// Escapes a string as a JSON literal (same dialect as
/// `cs_bench::harness`: control chars, quotes, and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn sample() -> ScanReport {
        ScanReport {
            findings: vec![Finding {
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 9,
                rule: "wall-clock".to_string(),
                message: "wall-clock read \"quoted\"".to_string(),
                snippet: "let t = Instant::now();".to_string(),
            }],
            files_scanned: 7,
        }
    }

    #[test]
    fn human_lists_location_first() {
        let text = human(&sample());
        assert!(text.starts_with("crates/x/src/lib.rs:3:9: wall-clock:"));
        assert!(text.contains("1 finding across 7 files"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let text = json(&sample());
        assert!(text.contains("\"tool\": \"cs-lint\""));
        assert!(text.contains("\"files_scanned\": 7"));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"finding_count\": 1"));
    }

    #[test]
    fn json_rule_counts_aggregate_per_rule() {
        let mut r = sample();
        let mut second = r.findings[0].clone();
        second.line = 9;
        r.findings.push(second);
        let text = json(&r);
        assert!(text.contains("\"rule_counts\": {\n    \"wall-clock\": 2\n  },"));
        let clean = ScanReport {
            findings: Vec::new(),
            files_scanned: 7,
        };
        assert!(json(&clean).contains("\"rule_counts\": {},"));
    }

    #[test]
    fn fix_annotations_match_indentation() {
        let text = fix_annotations(&sample(), &["        let t = Instant::now();".to_string()]);
        assert!(text.contains("\n        // cs-lint: allow(wall-clock, reason = "));
    }
}
