#!/usr/bin/env bash
# CI-style gate: formatting, lints, tests, and an end-to-end smoke run.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cs-lint: determinism-and-invariant gate (DESIGN.md §14)"
cargo run -q --release -p cs-lint
echo "==> cs-lint --json smoke"
cargo run -q --release -p cs-lint -- --json | grep -q '"tool": "cs-lint"'

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> smoke: cargo run --example quickstart"
cargo run -q --release --example quickstart

echo "==> smoke: cargo run --example churn_web (workload engine: multi-stream + churn)"
cargo run -q --release --example churn_web

echo "==> smoke: cargo run --example path_policies (selection seam: all four policies)"
cargo run -q --release --example path_policies

echo "==> smoke: cargo run --example async_sweep (threaded runtime + oracle check)"
cargo run -q --release --example async_sweep

echo "==> smoke: cargo run --example consensus_scale (7k-relay directory + epoch churn)"
cargo run -q --release --example consensus_scale

echo "==> smoke: cargo run --example fault_storm (crash injection + recovery loop)"
cargo run -q --release --example fault_storm

echo "==> smoke: cargo run --example telemetry_scale (7k-relay sketch quantiles + Prometheus golden file)"
cargo run -q --release --example telemetry_scale

echo "==> threaded-runtime differential suite (oracle fingerprints, deadlock stress)"
cargo test -q --test async_runtime

echo "==> fault-recovery suite (conservation + fingerprint invariance under faults)"
cargo test -q --test fault_recovery

echo "==> telemetry differential suite (sketch vs exact CDF, shuffle-merge invariance)"
cargo test -q --test telemetry_sketch

echo "==> bench smoke: CS_BENCH_FAST=1 (3 samples; sanity, not measurement)"
echo "    (includes overlay/star_async_* — threaded-runtime scaling cases + pool-flatness asserts)"
CS_BENCH_FAST=1 cargo bench -q -p cs-bench --bench bench_simcore
CS_BENCH_FAST=1 cargo bench -q -p cs-bench --bench bench_overlay

echo "==> all checks passed"
