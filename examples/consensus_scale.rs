//! Consensus-scale directory smoke: a ~7000-relay star (the size of the
//! real Tor consensus), all four selection policies over identical
//! seeds, with epoch churn pulling relays in and out of the live set
//! mid-run. This is the regime the SoA relay store and the Fenwick
//! sampler exist for — selection is O(log n) per draw here, where the
//! legacy linear scan was O(n·path_len) per circuit.
//!
//! ```text
//! cargo run --release --example consensus_scale              # 7000 relays
//! cargo run --release --example consensus_scale -- 2000 24   # smaller sweep
//! ```

use circuitstart::prelude::*;
use relaynet::selection::{all_policies, SelectionPolicy};
use relaynet::workload::{ArrivalSpec, EpochSpec, WorkloadSpec};
use relaynet::{DirectoryConfig, StarScenario};
use simstats::cdf::Cdf;

fn scenario(relays: usize, circuits: usize, selection: SelectionPolicy) -> StarScenario {
    StarScenario {
        circuits,
        relays_per_circuit: 3,
        file_bytes: 60_000,
        directory: DirectoryConfig {
            relays,
            bandwidth_mbps: (15.0, 100.0),
            delay_ms: (2.0, 12.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 2,
            arrival: ArrivalSpec::UniformJitter { max_ms: 30.0 },
            churn: None,
        },
        // Four consensus epochs inside the run: 1% of the population
        // churns per epoch, drawn from a 10% standby pool — circuits
        // crossing a departure tear down and rebuild under live load.
        epochs: Some(EpochSpec {
            interval_ms: 80.0,
            epochs: 4,
            churn: relays / 100,
            standby_fraction: 0.1,
        }),
        selection,
        ..Default::default()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let relays: usize = args
        .next()
        .map(|a| a.parse().expect("relay count"))
        .unwrap_or(7000);
    let circuits: usize = args
        .next()
        .map(|a| a.parse().expect("circuit count"))
        .unwrap_or(32);

    println!(
        "consensus_scale: {relays} relays, {circuits} circuits, 4 epochs \
         (1%/epoch churn, 10% standby pool), identical seeds per policy"
    );
    // ~p99 comes from the world's streaming sketch, within ±1% (its
    // alpha) of the exact column beside it — the fixed-memory record a
    // consensus-scale run would keep when retaining every sample stops
    // being an option.
    println!(
        "\n{:>12}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9}  {:>9}",
        "policy",
        "sampler",
        "p50 [s]",
        "p90 [s]",
        "p99 [s]",
        "~p99 [s]",
        "worst [s]",
        "epochs",
        "departed",
        "rebuilds",
        "reclaimed"
    );

    for policy in all_policies() {
        let name = policy.name();
        let (mut sim, _) = scenario(relays, circuits, policy)
            .build(Algorithm::CircuitStart.factory(CcConfig::default()), 4242);
        run_to_completion(&mut sim);
        let world = sim.world();
        assert_eq!(world.stats().protocol_errors, 0, "{name}: protocol errors");
        assert_eq!(world.stats().epochs_applied, 4, "{name}: epochs missed");
        assert!(
            world.verify_placement_ledger(),
            "{name}: placement ledger out of sync"
        );
        for f in world.flows() {
            assert!(f.complete(), "{name}: a flow was stranded");
        }
        let cdf: Cdf = world.flow_completion_cdf().expect("completed flows");
        let sketch = world.flow_completion_sketch();
        assert_eq!(
            sketch.len(),
            cdf.len() as u64,
            "{name}: sketch missed flows"
        );
        let stats = world.stats();
        println!(
            "{:>12}  {:>8}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>7}  {:>9}  {:>9}  {:>9}",
            name,
            world.selection_sampler_name().expect("placement installed"),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.p99(),
            sketch.p99(),
            cdf.max(),
            stats.epochs_applied,
            stats.relays_departed,
            stats.rebuilds,
            stats.slots_reclaimed,
        );
    }
    println!(
        "\n(every flow delivered in full across relay departures; the load \
         ledger matched the surviving incarnations at run end — see \
         DESIGN.md §11 for the SoA store, sampler seam, and epoch deltas)"
    );
}
