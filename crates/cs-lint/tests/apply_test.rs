//! `--fix-annotations --apply` end to end: planting suppressions in a
//! scratch workspace silences every annotatable finding, a second apply
//! is a byte-for-byte no-op, and non-annotatable findings are refused.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use cs_lint::engine;

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("stale scratch removed");
    }
    dir
}

fn plant(root: &Path, files: &[(&str, &str)]) {
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(&path, content).expect("fixture written");
    }
}

fn read_tree(root: &Path, files: &[(&str, &str)]) -> BTreeMap<String, String> {
    files
        .iter()
        .map(|(rel, _)| {
            let text = fs::read_to_string(root.join(rel)).expect("readable");
            ((*rel).to_string(), text)
        })
        .collect()
}

const DIRTY_LIB: &str = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn order() -> usize {
    let m = std::collections::HashMap::<u8, u8>::new();
    m.iter().count()
}
";

#[test]
fn apply_silences_findings_and_is_idempotent() {
    let root = scratch("apply_idem");
    let files = [
        ("Cargo.toml", "[package]\nname = \"scratch-root\"\n"),
        (
            "crates/relaynet/Cargo.toml",
            "[package]\nname = \"relaynet\"\n",
        ),
        ("crates/relaynet/src/lib.rs", DIRTY_LIB),
    ];
    plant(&root, &files);

    let scan = engine::scan_workspace(&root).expect("scan succeeds");
    let mut rules: Vec<&str> = scan.findings.iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    assert_eq!(rules, ["nondeterministic-iteration", "wall-clock"]);

    let (inserted, skipped) =
        engine::apply_annotations(&root, &scan.findings).expect("apply succeeds");
    assert_eq!((inserted, skipped), (2, 0));

    let rescanned = engine::scan_workspace(&root).expect("rescan succeeds");
    assert!(
        rescanned.findings.is_empty(),
        "apply left findings: {:?}",
        rescanned.findings
    );

    // Each inserted annotation sits directly above its flagged line,
    // indentation-matched, with the triage placeholder reason.
    let lib = fs::read_to_string(root.join("crates/relaynet/src/lib.rs")).expect("lib");
    assert!(lib.contains(
        "    // cs-lint: allow(wall-clock, reason = \"TODO(triage): state the invariant that makes this safe\")\n    std::time::Instant::now()"
    ));
    assert!(lib.contains(
        "    // cs-lint: allow(nondeterministic-iteration, reason = \"TODO(triage): state the invariant that makes this safe\")\n    let m = std::collections::HashMap"
    ));

    // Idempotence: the clean rescan has nothing to apply, and a second
    // apply pass changes no bytes anywhere in the tree.
    let before = read_tree(&root, &files);
    let (inserted, skipped) =
        engine::apply_annotations(&root, &rescanned.findings).expect("re-apply succeeds");
    assert_eq!((inserted, skipped), (0, 0));
    assert_eq!(before, read_tree(&root, &files), "re-apply mutated files");
}

#[test]
fn apply_refuses_unsuppressible_findings() {
    let root = scratch("apply_refuse");
    let files = [
        ("Cargo.toml", "[package]\nname = \"scratch-root\"\n"),
        (
            "crates/relaynet/Cargo.toml",
            "[package]\nname = \"relaynet\"\n",
        ),
        (
            "crates/relaynet/src/lib.rs",
            "// cs-lint: allow(wall-clock, reason = \"nothing below reads a clock any more\")\npub fn quiet() -> u64 {\n    9\n}\n",
        ),
    ];
    plant(&root, &files);

    let scan = engine::scan_workspace(&root).expect("scan succeeds");
    assert_eq!(
        scan.findings
            .iter()
            .map(|f| f.rule.as_str())
            .collect::<Vec<_>>(),
        [engine::UNUSED_ALLOW]
    );

    // unused-allow has no suppression form: apply must skip it and
    // leave the tree untouched so the operator hand-deletes the line.
    let before = read_tree(&root, &files);
    let (inserted, skipped) =
        engine::apply_annotations(&root, &scan.findings).expect("apply returns");
    assert_eq!((inserted, skipped), (0, 1));
    assert_eq!(before, read_tree(&root, &files), "apply mutated files");
}
