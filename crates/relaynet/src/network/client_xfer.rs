//! Pipeline stage — endpoint applications (the data plane's two ends).
//!
//! The client side generates the transfer workload: once CONNECTED
//! arrives it pumps DATA cells (wrapped for the server's onion layer,
//! window permitting) and finishes with a single END. The server side
//! consumes recognized forward cells — answering BEGIN with CONNECTED,
//! counting and verifying DATA, and timestamping completion. Cells are
//! *generated lazily* inside the egress pump so that onion-layer counters
//! advance in exact send order.

use simcore::sim::Context;
use simcore::time::SimTime;

use torcell::cell::{Cell, CellBody, RelayCell, RelayCommand};
use torcell::crypto::payload_digest;
use torcell::ids::{CircuitId, StreamId};

use crate::event::TorEvent;
use crate::ids::{CircId, Direction, OverlayId};
use crate::node::{ClientApp, ClientStage, QueuedCell};
use crate::pool::PayloadPool;

use super::{fill_pattern_extend, verify_fill_pattern, TorNetwork, END_REASON_DONE};

impl TorNetwork {
    /// Produces the next client-originated cell (DATA, then one END), or
    /// `None` if the client has nothing to send. DATA payload buffers
    /// come from `pool` (zero-allocation steady state: the server
    /// reclaims every consumed payload into the same pool).
    pub(super) fn generate_client_cell(
        client: Option<&mut ClientApp>,
        pool: &mut PayloadPool,
        circ: CircId,
        now: SimTime,
    ) -> Option<QueuedCell> {
        let app = client?;
        if app.stage != ClientStage::Transferring {
            return None;
        }
        let server_hop = app.server_hop();
        if app.sent_cells < app.total_cells {
            let idx = app.sent_cells;
            let len = app.cell_len(idx);
            let mut payload = pool.acquire();
            fill_pattern_extend(circ, idx, len, &mut payload);
            let rc = RelayCell::data(StreamId(1), payload);
            app.sent_cells += 1;
            if app.first_data_at.is_none() {
                app.first_data_at = Some(now);
            }
            Some(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL, // restamped at send
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(server_hop),
            })
        } else if !app.end_sent {
            app.end_sent = true;
            app.stage = ClientStage::Finished;
            // ≥ 8 payload bytes so leaky-pipe recognition stays sound (a
            // near-empty payload could spuriously "recognize" early).
            let data = vec![END_REASON_DONE; 8];
            let rc = RelayCell {
                cmd: RelayCommand::End,
                stream: StreamId(1),
                digest: payload_digest(&data),
                data,
            };
            Some(QueuedCell {
                cell: Cell {
                    circ: CircuitId::CONTROL,
                    body: CellBody::Relay(rc),
                },
                confirm: None,
                wrap_for_hop: Some(server_hop),
            })
        } else {
            None
        }
    }

    /// The server recognized a forward cell.
    pub(super) fn server_consume(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        server: OverlayId,
        circ: CircId,
        local: u32,
        rc: RelayCell,
    ) {
        let verify = self.cfg.verify_payload;
        let node = &mut self.nodes[server.index()];
        let my_net = node.net_node;
        let nc = node.circuit_at_mut(local);
        let app = nc.server.as_mut().expect("server app exists");
        match rc.cmd {
            RelayCommand::Begin => {
                app.stream_open = true;
                let data = vec![0xC0u8; 8];
                let mut reply = RelayCell {
                    cmd: RelayCommand::Connected,
                    stream: rc.stream,
                    digest: payload_digest(&data),
                    data,
                };
                nc.crypt
                    .as_mut()
                    .expect("server has crypt state")
                    .add_backward(&mut reply);
                nc.bwd
                    .as_mut()
                    .expect("server backward hop")
                    .enqueue(QueuedCell {
                        cell: Cell {
                            circ: CircuitId::CONTROL,
                            body: CellBody::Relay(reply),
                        },
                        confirm: None,
                        wrap_for_hop: None,
                    });
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    ctx,
                    my_net,
                    nc,
                    Direction::Backward,
                );
            }
            RelayCommand::Data => {
                if !app.stream_open {
                    Self::protocol_error(&mut self.stats, "DATA before BEGIN");
                    return;
                }
                if verify && !verify_fill_pattern(circ, app.cells_received, &rc.data) {
                    app.payload_errors += 1;
                    debug_assert!(false, "payload verification failed");
                }
                app.cells_received += 1;
                app.bytes_received += rc.data.len() as u64;
                if app.first_byte_at.is_none() {
                    app.first_byte_at = Some(ctx.now());
                }
                app.last_byte_at = Some(ctx.now());
                // The payload dies here; recycle its buffer into the pool
                // the client side draws from.
                self.payload_pool.reclaim(rc.data);
            }
            RelayCommand::End => {
                app.ended = true;
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected relay command at server");
            }
        }
    }

    /// The client recognized a backward cell originated by hop `origin`.
    pub(super) fn client_consume_backward(
        &mut self,
        ctx: &mut Context<'_, TorEvent>,
        client: OverlayId,
        circ: CircId,
        local: u32,
        origin: usize,
        rc: RelayCell,
    ) {
        match rc.cmd {
            RelayCommand::Extended => {
                if rc.data.len() != torcell::cell::HANDSHAKE_LEN {
                    Self::protocol_error(&mut self.stats, "malformed EXTENDED payload");
                    return;
                }
                let node = &self.nodes[client.index()];
                let nc = node.circuit_at(local);
                let app = nc.client.as_ref().expect("client app");
                debug_assert_eq!(
                    origin,
                    app.route.len() - 1,
                    "EXTENDED must originate from the current last hop"
                );
                let mut hs = [0u8; torcell::cell::HANDSHAKE_LEN];
                hs.copy_from_slice(&rc.data);
                self.client_advance_build(ctx, client, circ, local, hs);
            }
            RelayCommand::Connected => {
                let node = &mut self.nodes[client.index()];
                let my_net = node.net_node;
                let nc = node.circuit_at_mut(local);
                let app = nc.client.as_mut().expect("client app");
                if app.stage != ClientStage::Opening {
                    Self::protocol_error(&mut self.stats, "CONNECTED in wrong stage");
                    return;
                }
                app.stage = ClientStage::Transferring;
                app.connected_at = Some(ctx.now());
                Self::pump_dir(
                    &mut self.net,
                    &mut self.link_sched,
                    &self.router,
                    &self.net_node_of,
                    &mut self.stats,
                    &mut self.payload_pool,
                    ctx,
                    my_net,
                    nc,
                    Direction::Forward,
                );
            }
            RelayCommand::End => {
                // Server-initiated close; nothing to do for bulk transfers.
            }
            _ => {
                Self::protocol_error(&mut self.stats, "unexpected backward relay command");
            }
        }
    }
}
