//! Algorithm selection: constructors and overlay factories for
//! CircuitStart and every baseline the evaluation compares against.

use backtap::cc::{CongestionControl, FixedWindowCc, HalvingExit, UnlimitedCc};
use backtap::config::CcConfig;
use backtap::delay_cc::DelayCc;
use relaynet::ids::Direction;
use relaynet::node::CcFactory;

use crate::adaptive::AdaptiveCc;
use crate::exit::CircuitStartExit;

/// Constructs the CircuitStart controller: discrete-round doubling driven
/// by per-hop feedback, delay-triggered exit, **overshoot compensation**,
/// then Vegas congestion avoidance with the **backpropagation rule** (the
/// window snaps to the successor's demonstrated forwarding rate instead of
/// creeping down — how a distant bottleneck's compensation reaches the
/// source hop by hop).
pub fn circuit_start_cc(cfg: CcConfig) -> DelayCc {
    let mut cc = DelayCc::with_ramp("circuitstart", cfg, Box::new(CircuitStartExit));
    cc.enable_ca_recompensation(8);
    cc
}

/// Constructs the paper's baseline ("without CircuitStart"): identical
/// machinery but the traditional halving exit.
pub fn classic_cc(cfg: CcConfig) -> DelayCc {
    DelayCc::with_ramp("backtap-classic", cfg, Box::new(HalvingExit))
}

/// Every sender-side algorithm the harness can run. The feedback
/// machinery, relays, and topology are identical across variants — only
/// the window policy differs, which is what makes the comparisons
/// apples-to-apples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// The paper's contribution.
    CircuitStart,
    /// The paper's contribution plus the future-work extension: re-enter
    /// the ramp when congestion avoidance detects persistent spare
    /// capacity (e.g. after a mid-flow bandwidth increase).
    AdaptiveCircuitStart,
    /// "Without CircuitStart": same ramp, traditional halving exit.
    ClassicBacktap,
    /// No startup phase at all; the window opens at the given size
    /// (JumpStart-style, cited by the paper as unsuited to multi-hop).
    JumpStart(u32),
    /// Constant per-hop window (vanilla-Tor-flavoured ablation).
    FixedWindow(u32),
    /// Ramp disabled, window starts at `init_cwnd` in congestion
    /// avoidance (no-slow-start ablation: converges by ±1 per RTT only).
    NoSlowStart,
}

impl Algorithm {
    /// A short stable identifier for file names and report rows.
    pub fn key(&self) -> String {
        match self {
            Algorithm::CircuitStart => "circuitstart".to_string(),
            Algorithm::AdaptiveCircuitStart => "adaptive-circuitstart".to_string(),
            Algorithm::ClassicBacktap => "classic".to_string(),
            Algorithm::JumpStart(w) => format!("jumpstart-{w}"),
            Algorithm::FixedWindow(w) => format!("fixed-{w}"),
            Algorithm::NoSlowStart => "no-slow-start".to_string(),
        }
    }

    /// Builds the controller for one forward hop.
    pub fn make_controller(&self, cfg: CcConfig) -> Box<dyn CongestionControl + Send> {
        match *self {
            Algorithm::CircuitStart => Box::new(circuit_start_cc(cfg)),
            Algorithm::AdaptiveCircuitStart => {
                Box::new(AdaptiveCc::new(circuit_start_cc(cfg), Default::default()))
            }
            Algorithm::ClassicBacktap => Box::new(classic_cc(cfg)),
            Algorithm::JumpStart(w) => Box::new(DelayCc::without_ramp("jumpstart", cfg, w)),
            Algorithm::FixedWindow(w) => Box::new(FixedWindowCc::new(w)),
            Algorithm::NoSlowStart => {
                Box::new(DelayCc::without_ramp("no-slow-start", cfg, cfg.init_cwnd))
            }
        }
    }

    /// An overlay factory running this algorithm on every forward hop;
    /// backward (control-only) hops are unwindowed, as in the paper's
    /// one-directional bulk evaluation.
    pub fn factory(&self, cfg: CcConfig) -> CcFactory {
        let algo = *self;
        Box::new(move |ctx| match ctx.direction {
            Direction::Forward => algo.make_controller(cfg),
            Direction::Backward => Box::new(UnlimitedCc),
        })
    }
}

/// Convenience: the CircuitStart overlay factory with given parameters.
pub fn circuit_start_factory(cfg: CcConfig) -> CcFactory {
    Algorithm::CircuitStart.factory(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backtap::cc::Phase;

    #[test]
    fn keys_are_stable() {
        assert_eq!(Algorithm::CircuitStart.key(), "circuitstart");
        assert_eq!(Algorithm::ClassicBacktap.key(), "classic");
        assert_eq!(Algorithm::JumpStart(100).key(), "jumpstart-100");
        assert_eq!(Algorithm::FixedWindow(8).key(), "fixed-8");
        assert_eq!(Algorithm::NoSlowStart.key(), "no-slow-start");
        assert_eq!(
            Algorithm::AdaptiveCircuitStart.key(),
            "adaptive-circuitstart"
        );
    }

    #[test]
    fn controllers_start_in_expected_phase() {
        let cfg = CcConfig::default();
        assert_eq!(
            Algorithm::CircuitStart.make_controller(cfg).phase(),
            Phase::SlowStart
        );
        assert_eq!(
            Algorithm::ClassicBacktap.make_controller(cfg).phase(),
            Phase::SlowStart
        );
        assert_eq!(
            Algorithm::JumpStart(64).make_controller(cfg).phase(),
            Phase::CongestionAvoidance
        );
        assert_eq!(
            Algorithm::NoSlowStart.make_controller(cfg).phase(),
            Phase::CongestionAvoidance
        );
    }

    #[test]
    fn jumpstart_window_opens_wide() {
        let cc = Algorithm::JumpStart(64).make_controller(CcConfig::default());
        assert_eq!(cc.cwnd(), 64);
        let cc2 = Algorithm::NoSlowStart.make_controller(CcConfig::default());
        assert_eq!(cc2.cwnd(), 2);
    }

    #[test]
    fn circuit_start_cc_uses_compensation_name() {
        let cc = circuit_start_cc(CcConfig::default());
        use backtap::cc::CongestionControl as _;
        assert_eq!(cc.name(), "circuitstart");
    }
}
