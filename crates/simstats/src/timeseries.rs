//! Time-indexed sample traces.
//!
//! [`TimeSeries`] records `(t, value)` pairs with non-decreasing
//! timestamps — e.g. the source congestion window over time for the
//! paper's Figure 1 upper panels — and supports step-function evaluation,
//! resampling onto a uniform grid, and basic transforms.

use std::fmt;

/// A piecewise-constant (step) time series: the value recorded at `t`
/// holds until the next sample.
///
/// Timestamps are `f64` seconds; the simulation layer converts from
/// `SimTime` at the recording boundary so this crate stays dependency-free.
///
/// # Examples
///
/// ```
/// use simstats::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 2.0);
/// ts.push(0.1, 4.0);
/// ts.push(0.3, 8.0);
/// assert_eq!(ts.value_at(0.05), Some(2.0));
/// assert_eq!(ts.value_at(0.1), Some(4.0));
/// assert_eq!(ts.value_at(0.2), Some(4.0));
/// assert_eq!(ts.value_at(5.0), Some(8.0));
/// assert_eq!(ts.value_at(-0.01), None); // before the first sample
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, `value` is NaN, or `t` is smaller than the
    /// previous timestamp (series must be recorded in time order; equal
    /// timestamps are allowed and the *last* value at an instant wins for
    /// evaluation).
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(!t.is_nan() && !value.is_nan(), "TimeSeries::push with NaN");
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(
                t >= last_t,
                "TimeSeries::push out of order: {t} after {last_t}"
            );
        }
        self.points.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw `(t, value)` samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// First timestamp, if any.
    pub fn start_time(&self) -> Option<f64> {
        self.points.first().map(|&(t, _)| t)
    }

    /// Last timestamp, if any.
    pub fn end_time(&self) -> Option<f64> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Step-function evaluation: the most recent value at or before `t`,
    /// or `None` if `t` precedes the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Smallest recorded value.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// The value of the final sample.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Resamples the step function onto a uniform grid of `n` points
    /// covering `[from, to]` inclusive. Grid points before the first sample
    /// evaluate to the first sample's value (left-extension), which is the
    /// conventional choice for plotting cwnd traces from t = 0.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty, `n < 2`, or `from >= to`.
    pub fn resample(&self, from: f64, to: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(!self.is_empty(), "resample of empty TimeSeries");
        assert!(n >= 2, "resample needs at least 2 grid points");
        assert!(from < to, "resample requires from < to");
        let first_value = self.points[0].1;
        (0..n)
            .map(|i| {
                let t = from + (to - from) * i as f64 / (n - 1) as f64;
                (t, self.value_at(t).unwrap_or(first_value))
            })
            .collect()
    }

    /// Returns a new series with every value scaled by `factor` (e.g. cells
    /// → kilobytes).
    pub fn scaled(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            points: self.points.iter().map(|&(t, v)| (t, v * factor)).collect(),
        }
    }

    /// Time-weighted mean of the step function over `[start, end]`,
    /// left-extending the first value. Useful for "average cwnd" metrics.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or `start >= end`.
    pub fn time_weighted_mean(&self, start: f64, end: f64) -> f64 {
        assert!(!self.is_empty(), "time_weighted_mean of empty TimeSeries");
        assert!(start < end, "time_weighted_mean requires start < end");
        let mut acc = 0.0;
        let mut t_prev = start;
        let mut v_prev = self.value_at(start).unwrap_or(self.points[0].1);
        for &(t, v) in &self.points {
            if t <= start {
                continue;
            }
            if t >= end {
                break;
            }
            acc += v_prev * (t - t_prev);
            t_prev = t;
            v_prev = v;
        }
        acc += v_prev * (end - t_prev);
        acc / (end - start)
    }

    /// The first time at which the series enters (and the caller hopes,
    /// stays in) the band `[lo, hi]`, *and never leaves it again*.
    /// Returns `None` if the series never settles inside the band.
    ///
    /// This is the convergence-time metric used for the Figure 1 traces:
    /// "when does cwnd settle at the optimum ± tolerance".
    pub fn settling_time(&self, lo: f64, hi: f64) -> Option<f64> {
        let mut candidate: Option<f64> = None;
        for &(t, v) in &self.points {
            if v >= lo && v <= hi {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => write!(f, "TimeSeries(n={}, t=[{s:.4}, {e:.4}])", self.len()),
            _ => write!(f, "TimeSeries(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(f64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(t, v) in pts {
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.value_at(0.0), None);
        assert_eq!(ts.max_value(), None);
        assert_eq!(ts.start_time(), None);
        assert_eq!(ts.to_string(), "TimeSeries(empty)");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 1.0);
        ts.push(0.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_push_panics() {
        TimeSeries::new().push(f64::NAN, 1.0);
    }

    #[test]
    fn equal_timestamps_last_wins() {
        let ts = series(&[(1.0, 10.0), (1.0, 20.0)]);
        assert_eq!(ts.value_at(1.0), Some(20.0));
    }

    #[test]
    fn step_evaluation() {
        let ts = series(&[(0.0, 2.0), (1.0, 4.0)]);
        assert_eq!(ts.value_at(0.0), Some(2.0));
        assert_eq!(ts.value_at(0.999), Some(2.0));
        assert_eq!(ts.value_at(1.0), Some(4.0));
        assert_eq!(ts.value_at(-0.1), None);
    }

    #[test]
    fn min_max_last() {
        let ts = series(&[(0.0, 5.0), (1.0, 2.0), (2.0, 9.0)]);
        assert_eq!(ts.min_value(), Some(2.0));
        assert_eq!(ts.max_value(), Some(9.0));
        assert_eq!(ts.last_value(), Some(9.0));
    }

    #[test]
    fn resample_uniform_grid() {
        let ts = series(&[(0.0, 1.0), (0.5, 2.0)]);
        let grid = ts.resample(0.0, 1.0, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (0.0, 1.0));
        assert_eq!(grid[1], (0.25, 1.0));
        assert_eq!(grid[2], (0.5, 2.0));
        assert_eq!(grid[4], (1.0, 2.0));
    }

    #[test]
    fn resample_left_extends() {
        let ts = series(&[(0.5, 7.0)]);
        let grid = ts.resample(0.0, 1.0, 3);
        assert_eq!(grid[0], (0.0, 7.0)); // before first sample → first value
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn resample_needs_two_points() {
        series(&[(0.0, 1.0)]).resample(0.0, 1.0, 1);
    }

    #[test]
    fn scaled_transform() {
        let ts = series(&[(0.0, 2.0), (1.0, 4.0)]).scaled(0.5);
        assert_eq!(ts.points(), &[(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn time_weighted_mean_steps() {
        // 2.0 for [0,1), 4.0 for [1,2) → mean over [0,2) = 3.0
        let ts = series(&[(0.0, 2.0), (1.0, 4.0)]);
        assert!((ts.time_weighted_mean(0.0, 2.0) - 3.0).abs() < 1e-12);
        // Mean over [0.5, 1.5): half 2.0, half 4.0 → 3.0
        assert!((ts.time_weighted_mean(0.5, 1.5) - 3.0).abs() < 1e-12);
        // Entirely inside the first step.
        assert!((ts.time_weighted_mean(0.1, 0.9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn settling_time_finds_last_entry() {
        // Enters band, leaves, re-enters for good at t=3.
        let ts = series(&[(0.0, 10.0), (1.0, 5.0), (2.0, 20.0), (3.0, 5.5), (4.0, 5.2)]);
        assert_eq!(ts.settling_time(4.0, 6.0), Some(3.0));
    }

    #[test]
    fn settling_time_never() {
        let ts = series(&[(0.0, 10.0), (1.0, 20.0)]);
        assert_eq!(ts.settling_time(0.0, 5.0), None);
    }

    #[test]
    fn settling_time_from_start() {
        let ts = series(&[(0.5, 5.0), (1.0, 5.1)]);
        assert_eq!(ts.settling_time(4.9, 5.2), Some(0.5));
    }

    #[test]
    fn display_has_range() {
        let ts = series(&[(0.0, 1.0), (2.5, 2.0)]);
        assert_eq!(ts.to_string(), "TimeSeries(n=2, t=[0.0000, 2.5000])");
    }
}
