//! # circuitstart — a slow start for multi-hop anonymity systems
//!
//! A from-scratch Rust reproduction of *CircuitStart: A Slow Start For
//! Multi-Hop Anonymity Systems* (Döpmann & Tschorsch, SIGCOMM 2018
//! Posters and Demos), together with every substrate the paper relies on
//! (see the workspace crates `simcore`, `netsim`, `torcell`, `backtap`,
//! `relaynet`).
//!
//! ## The algorithm in one paragraph
//!
//! In a Tor-like overlay running a hop-by-hop windowed transport, each
//! relay doubles its per-circuit window once per RTT, driven by per-hop
//! *feedback* messages ("your cell is moving") rather than end-to-end
//! ACKs. A Vegas-style delay test (`diff = cwnd·(currentRtt/baseRtt − 1) > γ`)
//! ends the ramp; instead of halving, CircuitStart sets the window
//! to **the number of cells of the current round already fed back** —
//! the packet train the successor sustained without queueing, i.e. a
//! direct measurement of the optimal window. Because a bottleneck relay's
//! shrunken window throttles what its predecessor can get confirmed, the
//! minimum window propagates hop by hop back to the source.
//!
//! ## Quick start
//!
//! ```
//! use circuitstart::prelude::*;
//!
//! // Figure 1a geometry: 3 relays, bottleneck one hop from the source.
//! let mut cfg = fig1_trace(1, Algorithm::CircuitStart);
//! cfg.file_bytes = 100_000; // keep the doc test fast
//! let report = run_trace(&cfg);
//! assert!(report.result.completed);
//! // The source window ramped 2 → 4 → … and settled near the optimum.
//! assert_eq!(report.cwnd_cells[0].1, 2);
//! assert!(report.settling_time_ms(0.35).is_some());
//! ```
//!
//! ## Crate layout
//!
//! * [`exit`] — the overshoot-compensation exit policy (the contribution).
//! * [`algorithm`] — constructors/factories for CircuitStart and all
//!   baselines (classic halving, JumpStart, fixed window, no-slow-start).
//! * [`optimal`] — the paper's analytical optimal-window model.
//! * [`adaptive`] — the future-work extension: mid-flow re-probing.
//! * [`harness`] — end-to-end experiment runners for both figure panels.
//! * [`presets`] — the exact parameterizations used by EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod algorithm;
pub mod exit;
pub mod harness;
pub mod optimal;
pub mod presets;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::adaptive::{AdaptiveCc, AdaptiveConfig};
    pub use crate::algorithm::{circuit_start_cc, circuit_start_factory, classic_cc, Algorithm};
    pub use crate::exit::CircuitStartExit;
    pub use crate::harness::{
        run_cdf, run_to_completion, run_trace, CdfReport, CdfScenarioConfig, CdfSeries,
        TraceReport, TraceScenarioConfig,
    };
    pub use crate::optimal::{LinkModel, PathModel};
    pub use crate::presets::{fig1_cdf, fig1_trace, policy_cdf};
    pub use backtap::config::CcConfig;
}

pub use adaptive::{AdaptiveCc, AdaptiveConfig};
pub use algorithm::{circuit_start_cc, circuit_start_factory, classic_cc, Algorithm};
pub use exit::CircuitStartExit;
pub use harness::{
    run_cdf, run_to_completion, run_trace, CdfReport, CdfScenarioConfig, CdfSeries, TraceReport,
    TraceScenarioConfig,
};
pub use optimal::{LinkModel, PathModel};
pub use presets::{fig1_cdf, fig1_trace, policy_cdf};
