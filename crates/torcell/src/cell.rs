//! Cell and frame structures.
//!
//! The overlay exchanges two kinds of frames between adjacent nodes:
//!
//! * **Cells** — fixed 512-byte units (as in Tor). Every cell carries a
//!   link-local circuit id and a command; RELAY cells additionally carry a
//!   relay sub-header and up to [`RELAY_DATA_MAX`] bytes of payload.
//! * **Feedback** — the small per-hop control message introduced by
//!   BackTap/CircuitStart: when a relay *forwards* a cell it tells its
//!   predecessor "cell `seq` of circuit `c` is moving". Feedback is not a
//!   cell; it is a [`FEEDBACK_WIRE_LEN`]-byte frame of its own.
//!
//! Sizes follow Tor's v4 link protocol (4-byte circuit ids): a 512-byte
//! cell is 4 (circ id) + 1 (command) + 507 (payload); a relay header
//! consumes 11 payload bytes leaving 496 for data.

use crate::ids::{CircuitId, StreamId};

/// Total size of a cell on the wire, bytes.
pub const CELL_LEN: usize = 512;
/// Size of the circuit-id field.
pub const CIRCID_LEN: usize = 4;
/// Size of the command field.
pub const COMMAND_LEN: usize = 1;
/// Payload bytes available after the cell header.
pub const CELL_PAYLOAD_LEN: usize = CELL_LEN - CIRCID_LEN - COMMAND_LEN; // 507
/// Size of the relay sub-header inside a RELAY cell's payload.
pub const RELAY_HEADER_LEN: usize = 11;
/// Maximum application bytes in one RELAY cell.
pub const RELAY_DATA_MAX: usize = CELL_PAYLOAD_LEN - RELAY_HEADER_LEN; // 496
/// Wire size of a feedback frame, bytes.
pub const FEEDBACK_WIRE_LEN: usize = 20;
/// Size of the handshake blob carried by CREATE/CREATED cells.
pub const HANDSHAKE_LEN: usize = 16;

/// Top-level cell commands (wire codes in parentheses).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum CellCommand {
    /// Extend a circuit to this node (1).
    Create = 1,
    /// Acknowledge a CREATE (2).
    Created = 2,
    /// Carry relay payload (3).
    Relay = 3,
    /// Tear the circuit down (4).
    Destroy = 4,
    /// Link padding; ignored by the overlay (5).
    Padding = 5,
}

impl CellCommand {
    /// Parses a wire code.
    pub fn from_wire(code: u8) -> Option<CellCommand> {
        match code {
            1 => Some(CellCommand::Create),
            2 => Some(CellCommand::Created),
            3 => Some(CellCommand::Relay),
            4 => Some(CellCommand::Destroy),
            5 => Some(CellCommand::Padding),
            _ => None,
        }
    }

    /// The wire code.
    pub fn to_wire(self) -> u8 {
        self as u8
    }
}

/// Commands carried in the relay sub-header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum RelayCommand {
    /// Open a stream to the destination (1).
    Begin = 1,
    /// Application data (2).
    Data = 2,
    /// Close a stream; `data[0]` is the reason (3).
    End = 3,
    /// Stream successfully opened (4).
    Connected = 4,
    /// End-to-end window update for the fixed-window baseline transport (5).
    Sendme = 5,
    /// Ask the recognizing relay to extend the circuit to the node named
    /// in the payload (6).
    Extend = 6,
    /// Report a successful extension back to the client, echoing the new
    /// hop's handshake (7).
    Extended = 7,
}

impl RelayCommand {
    /// Parses a wire code.
    pub fn from_wire(code: u8) -> Option<RelayCommand> {
        match code {
            1 => Some(RelayCommand::Begin),
            2 => Some(RelayCommand::Data),
            3 => Some(RelayCommand::End),
            4 => Some(RelayCommand::Connected),
            5 => Some(RelayCommand::Sendme),
            6 => Some(RelayCommand::Extend),
            7 => Some(RelayCommand::Extended),
            _ => None,
        }
    }

    /// The wire code.
    pub fn to_wire(self) -> u8 {
        self as u8
    }
}

/// The relay sub-header and payload of a RELAY cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelayCell {
    /// What this relay cell means.
    pub cmd: RelayCommand,
    /// Target stream ([`StreamId::CIRCUIT`] for circuit-level cells).
    pub stream: StreamId,
    /// Integrity digest over the payload (see
    /// [`crate::crypto::payload_digest`]); checked by the recognizing hop.
    pub digest: u32,
    /// Application bytes, at most [`RELAY_DATA_MAX`].
    pub data: Vec<u8>,
}

impl RelayCell {
    /// Builds a DATA relay cell, computing the digest.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`RELAY_DATA_MAX`].
    pub fn data(stream: StreamId, data: Vec<u8>) -> RelayCell {
        assert!(
            data.len() <= RELAY_DATA_MAX,
            "relay payload of {} bytes exceeds max {}",
            data.len(),
            RELAY_DATA_MAX
        );
        let digest = crate::crypto::payload_digest(&data);
        RelayCell {
            cmd: RelayCommand::Data,
            stream,
            digest,
            data,
        }
    }

    /// Builds a control relay cell with no payload, computing the digest.
    pub fn control(cmd: RelayCommand, stream: StreamId) -> RelayCell {
        RelayCell {
            cmd,
            stream,
            digest: crate::crypto::payload_digest(&[]),
            data: Vec::new(),
        }
    }

    /// Verifies the digest against the payload.
    pub fn digest_ok(&self) -> bool {
        crate::crypto::payload_digest(&self.data) == self.digest
    }
}

/// The body of a cell, by command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CellBody {
    /// CREATE with an opaque handshake blob (key material stand-in).
    Create {
        /// Handshake bytes.
        handshake: [u8; HANDSHAKE_LEN],
    },
    /// CREATED echoing a handshake blob.
    Created {
        /// Handshake bytes.
        handshake: [u8; HANDSHAKE_LEN],
    },
    /// RELAY payload.
    Relay(RelayCell),
    /// DESTROY with a reason code.
    Destroy {
        /// Why the circuit was torn down.
        reason: u8,
    },
    /// Padding (no content).
    Padding,
}

impl CellBody {
    /// The command corresponding to this body.
    pub fn command(&self) -> CellCommand {
        match self {
            CellBody::Create { .. } => CellCommand::Create,
            CellBody::Created { .. } => CellCommand::Created,
            CellBody::Relay(_) => CellCommand::Relay,
            CellBody::Destroy { .. } => CellCommand::Destroy,
            CellBody::Padding => CellCommand::Padding,
        }
    }
}

/// A full cell: link-local circuit id plus body. Always [`CELL_LEN`] bytes
/// on the wire regardless of content (padding is implicit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Link-local circuit id.
    pub circ: CircuitId,
    /// Decoded body.
    pub body: CellBody,
}

impl Cell {
    /// Builds a RELAY DATA cell.
    pub fn relay_data(circ: CircuitId, stream: StreamId, data: Vec<u8>) -> Cell {
        Cell {
            circ,
            body: CellBody::Relay(RelayCell::data(stream, data)),
        }
    }

    /// Builds a CREATE cell.
    pub fn create(circ: CircuitId, handshake: [u8; HANDSHAKE_LEN]) -> Cell {
        Cell {
            circ,
            body: CellBody::Create { handshake },
        }
    }

    /// Builds a CREATED cell.
    pub fn created(circ: CircuitId, handshake: [u8; HANDSHAKE_LEN]) -> Cell {
        Cell {
            circ,
            body: CellBody::Created { handshake },
        }
    }

    /// Builds a DESTROY cell.
    pub fn destroy(circ: CircuitId, reason: u8) -> Cell {
        Cell {
            circ,
            body: CellBody::Destroy { reason },
        }
    }

    /// The command byte of this cell.
    pub fn command(&self) -> CellCommand {
        self.body.command()
    }

    /// Wire size — always [`CELL_LEN`].
    pub fn wire_size(&self) -> usize {
        CELL_LEN
    }
}

/// The per-hop feedback frame ("the cell is moving").
///
/// Sent by a relay to its predecessor at the moment it *forwards* a cell
/// toward its successor. `seq` echoes the per-hop sequence number the
/// predecessor assigned when sending the cell, so the predecessor can
/// compute an RTT sample and advance its window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Feedback {
    /// Circuit the forwarded cell belonged to (link-local id on the
    /// predecessor link).
    pub circ: CircuitId,
    /// Per-hop sequence number of the forwarded cell.
    pub seq: u64,
}

impl Feedback {
    /// Wire size — always [`FEEDBACK_WIRE_LEN`].
    pub fn wire_size(&self) -> usize {
        FEEDBACK_WIRE_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constants_are_consistent() {
        assert_eq!(CIRCID_LEN + COMMAND_LEN + CELL_PAYLOAD_LEN, CELL_LEN);
        assert_eq!(RELAY_HEADER_LEN + RELAY_DATA_MAX, CELL_PAYLOAD_LEN);
        assert_eq!(CELL_PAYLOAD_LEN, 507);
        assert_eq!(RELAY_DATA_MAX, 496);
    }

    #[test]
    fn command_wire_round_trip() {
        for cmd in [
            CellCommand::Create,
            CellCommand::Created,
            CellCommand::Relay,
            CellCommand::Destroy,
            CellCommand::Padding,
        ] {
            assert_eq!(CellCommand::from_wire(cmd.to_wire()), Some(cmd));
        }
        assert_eq!(CellCommand::from_wire(0), None);
        assert_eq!(CellCommand::from_wire(99), None);
    }

    #[test]
    fn relay_command_wire_round_trip() {
        for cmd in [
            RelayCommand::Begin,
            RelayCommand::Data,
            RelayCommand::End,
            RelayCommand::Connected,
            RelayCommand::Sendme,
            RelayCommand::Extend,
            RelayCommand::Extended,
        ] {
            assert_eq!(RelayCommand::from_wire(cmd.to_wire()), Some(cmd));
        }
        assert_eq!(RelayCommand::from_wire(0), None);
    }

    #[test]
    fn relay_data_digest_is_valid() {
        let rc = RelayCell::data(StreamId(1), vec![1, 2, 3]);
        assert!(rc.digest_ok());
        let mut tampered = rc.clone();
        tampered.data[0] ^= 0xFF;
        assert!(!tampered.digest_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversize_relay_payload_rejected() {
        let _ = RelayCell::data(StreamId(1), vec![0; RELAY_DATA_MAX + 1]);
    }

    #[test]
    fn max_size_relay_payload_accepted() {
        let rc = RelayCell::data(StreamId(1), vec![7; RELAY_DATA_MAX]);
        assert_eq!(rc.data.len(), RELAY_DATA_MAX);
        assert!(rc.digest_ok());
    }

    #[test]
    fn body_commands() {
        assert_eq!(
            Cell::create(CircuitId(1), [0; HANDSHAKE_LEN]).command(),
            CellCommand::Create
        );
        assert_eq!(
            Cell::created(CircuitId(1), [0; HANDSHAKE_LEN]).command(),
            CellCommand::Created
        );
        assert_eq!(
            Cell::relay_data(CircuitId(1), StreamId(0), vec![]).command(),
            CellCommand::Relay
        );
        assert_eq!(
            Cell::destroy(CircuitId(1), 2).command(),
            CellCommand::Destroy
        );
        assert_eq!(
            Cell {
                circ: CircuitId(1),
                body: CellBody::Padding
            }
            .command(),
            CellCommand::Padding
        );
    }

    #[test]
    fn wire_sizes_are_fixed() {
        let small = Cell::relay_data(CircuitId(1), StreamId(0), vec![1]);
        let big = Cell::relay_data(CircuitId(1), StreamId(0), vec![1; RELAY_DATA_MAX]);
        assert_eq!(small.wire_size(), CELL_LEN);
        assert_eq!(big.wire_size(), CELL_LEN);
        assert_eq!(
            Feedback {
                circ: CircuitId(1),
                seq: 0
            }
            .wire_size(),
            FEEDBACK_WIRE_LEN
        );
    }

    #[test]
    fn control_relay_cell_has_empty_payload() {
        let rc = RelayCell::control(RelayCommand::Sendme, StreamId::CIRCUIT);
        assert!(rc.data.is_empty());
        assert!(rc.digest_ok());
    }
}
