//! Validates the analytical optimal-window model against simulation: the
//! model's window must be the *knee* — the smallest fixed window that
//! fully utilizes the bottleneck — and its ideal transfer time must be a
//! tight lower bound there.

use circuitstart::prelude::*;
use netsim::bandwidth::Bandwidth;
use netsim::link::LinkConfig;
use relaynet::{PathScenario, WorldConfig};
use simcore::time::SimDuration;

fn hop(mbps: u64, delay_ms: u64) -> LinkConfig {
    LinkConfig::new(
        Bandwidth::from_mbps(mbps),
        SimDuration::from_millis(delay_ms),
    )
}

/// Measured goodput of a transfer with a fixed per-hop window.
fn goodput_with_window(hops: &[LinkConfig], window: u32, file: u64) -> f64 {
    let scenario = PathScenario {
        hops: hops.to_vec(),
        file_bytes: file,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let (mut sim, handles) = scenario.build(
        Algorithm::FixedWindow(window).factory(CcConfig::default()),
        99,
    );
    run_to_completion(&mut sim);
    let world = sim.world();
    assert_eq!(world.stats().protocol_errors, 0);
    let result = world.result_of(handles.circ);
    assert!(result.completed);
    result.goodput_bps().unwrap()
}

#[test]
fn model_window_is_the_utilization_knee() {
    let hops = vec![hop(100, 5), hop(20, 5), hop(100, 5), hop(100, 5)];
    let model = PathModel::from_hops(&hops);
    let w_star = model.optimal_source_cwnd_cells();
    let ceiling = model.max_goodput_bps();
    let file = 2 << 20;

    // At the model window (rounded up): ≥ 95% of the ceiling.
    let at_opt = goodput_with_window(&hops, w_star.ceil() as u32 + 1, file);
    assert!(
        at_opt >= 0.95 * ceiling,
        "W* must saturate the bottleneck: {at_opt:.0} vs ceiling {ceiling:.0}"
    );

    // At half the model window: clearly below (half the pipe idle).
    let at_half = goodput_with_window(&hops, (w_star / 2.0).floor() as u32, file);
    assert!(
        at_half <= 0.65 * ceiling,
        "W*/2 must underutilize: {at_half:.0} vs ceiling {ceiling:.0}"
    );

    // Doubling beyond the model window buys almost nothing.
    let at_double = goodput_with_window(&hops, (w_star * 2.0) as u32, file);
    assert!(
        (at_double - at_opt).abs() <= 0.05 * ceiling,
        "2·W* should not beat W* meaningfully: {at_double:.0} vs {at_opt:.0}"
    );
}

#[test]
fn knee_holds_for_a_slow_local_link_too() {
    // Bottleneck at distance 0 — the client's own access link.
    let hops = vec![hop(10, 5), hop(100, 5), hop(100, 5)];
    let model = PathModel::from_hops(&hops);
    let w_star = model.optimal_source_cwnd_cells();
    let ceiling = model.max_goodput_bps();
    let at_opt = goodput_with_window(&hops, w_star.ceil() as u32 + 1, 1 << 20);
    assert!(
        at_opt >= 0.95 * ceiling,
        "{at_opt:.0} vs ceiling {ceiling:.0} (W* = {w_star:.1})"
    );
}

#[test]
fn ideal_transfer_time_is_a_tight_lower_bound_at_w_star() {
    let hops = vec![hop(100, 5), hop(20, 5), hop(100, 5), hop(100, 5)];
    let model = PathModel::from_hops(&hops);
    let file = 1 << 20;
    let scenario = PathScenario {
        hops: hops.clone(),
        file_bytes: file,
        world: WorldConfig::default(),
        ..Default::default()
    };
    let window = model.optimal_source_cwnd_cells().ceil() as u32 + 1;
    let (mut sim, handles) = scenario.build(
        Algorithm::FixedWindow(window).factory(CcConfig::default()),
        7,
    );
    run_to_completion(&mut sim);
    let measured = sim.world().result_of(handles.circ).transfer_time().unwrap();
    let ideal = model.ideal_transfer_time(file);
    assert!(measured >= ideal, "{measured} < ideal {ideal}");
    assert!(
        measured.as_secs_f64() <= ideal.as_secs_f64() * 1.10,
        "fixed window at W* should be within 10% of ideal: {measured} vs {ideal}"
    );
}

#[test]
fn circuitstart_converges_to_the_model_window() {
    // The headline claim, quantified: after compensation the source
    // window sits within ±35% of the analytical optimum at every
    // bottleneck distance of the Figure 1 geometry.
    for distance in 0..=3 {
        let cfg = fig1_trace(distance, Algorithm::CircuitStart);
        let report = run_trace(&cfg);
        let settle = report.settling_time_ms(0.35);
        assert!(
            settle.is_some(),
            "distance {distance}: cwnd must settle near the optimum {:.1}; trace {:?}",
            report.optimal_cells,
            report.cwnd_cells
        );
    }
}

#[test]
fn bottleneck_rate_dominates_the_optimum() {
    // Scaling the bottleneck scales the optimal window proportionally
    // (the hop-0 RTT changes only through the forwarding term).
    let slow = PathModel::from_hops(&[hop(100, 5), hop(10, 5), hop(100, 5)]);
    let fast = PathModel::from_hops(&[hop(100, 5), hop(40, 5), hop(100, 5)]);
    let ratio = fast.optimal_source_cwnd_cells() / slow.optimal_source_cwnd_cells();
    assert!(
        (3.3..4.3).contains(&ratio),
        "4× bottleneck ⇒ ≈4× window, got {ratio}"
    );
}
