//! # backtap — hop-by-hop, window-based overlay transport
//!
//! A reproduction of the transport substrate the CircuitStart paper builds
//! on (BackTap, *"Mind the Gap: Towards a Backpressure-Based Transport
//! Protocol for the Tor Network"*, NSDI '16): every relay runs a
//! per-circuit congestion window toward its successor, driven not by
//! end-to-end ACKs but by **per-hop feedback** — the successor tells the
//! sender when it has *forwarded* a cell, so the window captures the state
//! of the successor relay, not only the link in between.
//!
//! ## Layout
//!
//! * [`config`] — shared parameters (γ, α, β, initial/min/max window).
//! * [`rtt`] — per-hop RTT estimation (send-decision → feedback).
//! * [`cc`] — the [`CongestionControl`](cc::CongestionControl) trait, the
//!   [`RampExit`](cc::RampExit) policy hook, and the simple controllers
//!   (fixed window, unlimited).
//! * [`delay_cc`] — [`DelayCc`](delay_cc::DelayCc): discrete-round
//!   doubling ramp + Vegas congestion avoidance. With
//!   [`HalvingExit`](cc::HalvingExit) this is the paper's "without
//!   CircuitStart" baseline; the `circuitstart` crate plugs in overshoot
//!   compensation to form the paper's contribution. `DelayCc::without_ramp`
//!   with a large initial window models JumpStart-style senders.
//! * [`hop`] — [`HopTransport`](hop::HopTransport): sequence numbers,
//!   in-flight tracking, RTT samples, statistics, cwnd tracing.
//!
//! The crate is network-agnostic: it never touches links or queues. The
//! `relaynet` crate wires transports to the simulated network.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cc;
pub mod config;
pub mod delay_cc;
pub mod hop;
pub mod rtt;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cc::{
        CongestionControl, FixedWindowCc, HalvingExit, Phase, RampExit, UnlimitedCc,
    };
    pub use crate::config::CcConfig;
    pub use crate::delay_cc::{DelayCc, DelayCcStats};
    pub use crate::hop::{FeedbackError, HopStats, HopTransport};
    pub use crate::rtt::RttEstimator;
}

pub use cc::{CongestionControl, FixedWindowCc, HalvingExit, Phase, RampExit, UnlimitedCc};
pub use config::CcConfig;
pub use delay_cc::{DelayCc, DelayCcStats};
pub use hop::{FeedbackError, HopStats, HopTransport};
pub use rtt::RttEstimator;
