//! # simstats — measurement and reporting toolkit
//!
//! Everything the CircuitStart evaluation harness uses to turn raw
//! simulation output into the artifacts the paper reports:
//!
//! * [`timeseries`] — step-function traces (cwnd over time, Figure 1 upper
//!   panels), resampling, settling-time metrics.
//! * [`cdf`] — empirical CDFs (time-to-last-byte, Figure 1 lower panel),
//!   quantiles, stochastic-dominance checks.
//! * [`sketch`] — fixed-size mergeable quantile sketches: the streaming,
//!   O(buckets)-memory counterpart of [`cdf`] for aggregation at scale.
//! * [`registry`] — named counters and gauges behind cheap handles, with
//!   order-independent merge.
//! * [`summary`] — streaming mean/variance/min/max (Welford).
//! * [`histogram`] — fixed-bin histograms for queue and RTT distributions.
//! * [`export`] — CSV, gnuplot, and Prometheus-text writers
//!   (dependency-free by design).
//! * [`ascii`] — terminal plots for the bench binaries.
//!
//! This crate is deliberately free of simulation dependencies: it consumes
//! plain `f64`s so it can be reused and tested in isolation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod cdf;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod sketch;
pub mod summary;
pub mod timeseries;

pub use ascii::{plot_lines, PlotConfig};
pub use cdf::Cdf;
pub use export::{prometheus_text, Table};
pub use histogram::Histogram;
pub use registry::{MetricId, MetricKind, MetricsRegistry};
pub use sketch::QuantileSketch;
pub use summary::Summary;
pub use timeseries::TimeSeries;
