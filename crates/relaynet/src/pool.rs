//! Recycling pool for cell payload buffers.
//!
//! The data path moves one `Vec<u8>` per DATA cell from the client
//! (which fills it with the deterministic pattern) through the onion
//! layers to the server (which verifies and counts it). Without a pool
//! that is one heap allocation and one free per cell; with it, the
//! server hands every consumed payload back and the steady-state
//! transfer allocates nothing — the same few buffers (bounded by the
//! number of cells in flight) cycle through the overlay.

use torcell::cell::RELAY_DATA_MAX;

/// A free list of full-size payload buffers.
#[derive(Debug)]
pub struct PayloadPool {
    free: Vec<Vec<u8>>,
    /// Upper bound on idle buffers retained; beyond this, reclaimed
    /// buffers are simply dropped. Bounds pool memory after load
    /// spikes — but a cap *below* the steady-state in-flight population
    /// makes the pool thrash alloc/free instead, so scenario builders
    /// size it from the workload (see
    /// [`PayloadPool::scenario_max_idle`]).
    max_idle: usize,
    /// Buffers handed out that the pool had to allocate fresh.
    allocated: u64,
    /// Buffers handed out from the free list.
    reused: u64,
    /// Full-size buffers handed back (whether kept or dropped at the
    /// idle cap). After a run fully quiesces, `returned == allocated +
    /// reused` — no payload buffer is ever lost in flight, even across
    /// mid-transfer teardowns.
    returned: u64,
    /// Largest idle free-list size ever observed.
    idle_hwm: usize,
}

impl Default for PayloadPool {
    fn default() -> PayloadPool {
        PayloadPool::new()
    }
}

impl PayloadPool {
    /// Default idle cap, appropriate for path scenarios and small stars.
    pub const DEFAULT_MAX_IDLE: usize = 4096;

    /// A generous bound on the payloads one circuit can have at rest or
    /// in flight at once (its windows never open this far), used by
    /// [`PayloadPool::scenario_max_idle`].
    pub const CELLS_PER_CIRCUIT: usize = 256;

    /// Creates an empty pool with the default idle cap.
    pub fn new() -> PayloadPool {
        PayloadPool::with_max_idle(PayloadPool::DEFAULT_MAX_IDLE)
    }

    /// Creates an empty pool retaining at most `max_idle` idle buffers.
    pub fn with_max_idle(max_idle: usize) -> PayloadPool {
        PayloadPool {
            free: Vec::new(),
            max_idle,
            allocated: 0,
            reused: 0,
            returned: 0,
            idle_hwm: 0,
        }
    }

    /// The idle cap a scenario with `peak_circuits` concurrent circuits
    /// should install: peak circuits × a per-circuit in-flight bound,
    /// floored at the default. Keeps steady-state reclaims below the
    /// cap — the pool never drops a buffer it will immediately have to
    /// re-allocate — while still bounding memory after a spike.
    pub fn scenario_max_idle(peak_circuits: usize) -> usize {
        peak_circuits
            .saturating_mul(PayloadPool::CELLS_PER_CIRCUIT)
            .max(PayloadPool::DEFAULT_MAX_IDLE)
    }

    /// The installed idle cap.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// Hands out an *empty* buffer with at least [`RELAY_DATA_MAX`]
    /// capacity, reusing a reclaimed one when available. Contents are for
    /// the caller to produce (no zero-fill — the data path writes every
    /// byte it sends, so pre-clearing would be a dead store per cell).
    pub fn acquire(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                buf.clear();
                buf
            }
            None => {
                self.allocated += 1;
                Vec::with_capacity(RELAY_DATA_MAX)
            }
        }
    }

    /// Returns a consumed payload's buffer to the pool. Undersized
    /// buffers (control-cell payloads that were never pool-allocated)
    /// and overflow beyond the idle cap are dropped.
    pub fn reclaim(&mut self, buf: Vec<u8>) {
        if buf.capacity() >= RELAY_DATA_MAX {
            self.returned += 1;
            if self.free.len() < self.max_idle {
                self.free.push(buf);
                self.idle_hwm = self.idle_hwm.max(self.free.len());
            }
        }
    }

    /// `(fresh allocations, reuses)` handed out so far — the telemetry
    /// that proves the steady state is allocation-free.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocated, self.reused)
    }

    /// Buffers handed out so far (fresh + reused).
    pub fn acquired(&self) -> u64 {
        self.allocated + self.reused
    }

    /// Full-size buffers handed back so far. A quiesced, fully
    /// torn-down run satisfies `returned() == acquired()` — the
    /// conservation invariant the mid-flight-DESTROY tests assert.
    pub fn returned(&self) -> u64 {
        self.returned
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Largest idle population ever observed (bounded by the peak
    /// number of payloads simultaneously at rest — itself bounded by
    /// cells in flight).
    pub fn idle_hwm(&self) -> usize {
        self.idle_hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_then_reuses() {
        let mut pool = PayloadPool::new();
        let mut a = pool.acquire();
        assert!(a.is_empty());
        a.resize(496, 7);
        pool.reclaim(a);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.idle_hwm(), 1);
        assert_eq!(pool.returned(), 1);
        let b = pool.acquire();
        assert!(b.is_empty(), "reused buffers come back cleared");
        assert!(b.capacity() >= RELAY_DATA_MAX);
        assert_eq!(pool.stats(), (1, 1));
        assert_eq!(pool.acquired(), 2);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.idle_hwm(), 1, "high-water mark survives draining");
    }

    #[test]
    fn undersized_buffers_are_not_pooled() {
        let mut pool = PayloadPool::new();
        pool.reclaim(vec![1, 2, 3]);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.returned(), 0, "undersized buffers are not counted");
    }

    #[test]
    fn idle_cap_bounds_memory() {
        let mut pool = PayloadPool::new();
        assert_eq!(pool.max_idle(), PayloadPool::DEFAULT_MAX_IDLE);
        for _ in 0..(PayloadPool::DEFAULT_MAX_IDLE + 10) {
            pool.reclaim(Vec::with_capacity(RELAY_DATA_MAX));
        }
        assert_eq!(pool.idle(), PayloadPool::DEFAULT_MAX_IDLE);
    }

    #[test]
    fn custom_cap_is_honored() {
        let mut pool = PayloadPool::with_max_idle(3);
        for _ in 0..10 {
            pool.reclaim(Vec::with_capacity(RELAY_DATA_MAX));
        }
        assert_eq!(pool.idle(), 3);
        assert_eq!(pool.returned(), 10, "drops past the cap still count");
        assert_eq!(pool.idle_hwm(), 3);
    }

    #[test]
    fn scenario_cap_scales_with_circuits_and_floors_at_default() {
        assert_eq!(
            PayloadPool::scenario_max_idle(1),
            PayloadPool::DEFAULT_MAX_IDLE,
            "small scenarios keep the default"
        );
        assert_eq!(
            PayloadPool::scenario_max_idle(1_000),
            1_000 * PayloadPool::CELLS_PER_CIRCUIT,
            "big scenarios scale with peak circuits"
        );
    }
}
