// cs-lint-fixture: path = "crates/relaynet/src/hard_char_lifetime.rs"
// Char literals vs. lifetimes: a lexer that confuses `'a'` with `'a`
// treats a later quote as a string opener and swallows real code (or
// exposes string contents as code). ZERO findings.

struct Borrowed<'a, 'b: 'a> {
    name: &'a str,
    tag: &'b [u8],
}

fn chars<'s>(input: &'s str) -> (char, char, char, char, char, u8) {
    let plain = 'a';
    let escaped_quote = '\'';
    let double_quote = '"';
    let unicode = 'é';
    let newline = '\n';
    let byte = b'x';
    let _: &'s str = input;
    let _ = ('_', '\u{1F980}');
    (plain, escaped_quote, double_quote, unicode, newline, byte)
}

fn lifetimes_after_chars<'q>(x: &'q [u64]) -> &'q [u64] {
    // If `'"'` above opened a phantom string, this "HashMap" comment and
    // the string below would lex as code and trip the hash rule.
    let _label = "not a HashMap, just a string";
    x
}

fn static_and_underscore(x: &'static str) -> &'_ str {
    x
}
