//! The async-runtime differential suite: the threaded runtime must
//! reproduce the single-threaded oracle's fingerprints **bit for bit**.
//!
//! The contract under test (DESIGN.md §10): a sharded experiment's
//! observables — per-flow outcomes, slab/pool/route telemetry, protocol
//! counters, event counts, placement loads — are a pure function of the
//! experiment spec. Which executor runs the shards, and with how many
//! workers, must be unobservable. The suite drives churning
//! multi-policy star worlds (teardown waves, slot reclamation, pooled
//! payload recycling, load-fed re-selection — every reclaim path the
//! protocol has) across seeds × policies × worker counts and compares
//! [`relaynet::runtime::WorldFingerprint`]s exactly.
//!
//! It also stress-tests the channel fabric itself: the stage-task
//! pipeline is a genuine backpressure *cycle* (data forward, window
//! credit backward over bounded channels) and must never deadlock
//! under a full 8-worker pool — guarded by a watchdog, since a
//! deadlock would otherwise hang the suite instead of failing it.

use std::sync::Arc;
use std::time::Duration;

use backtap::config::CcConfig;
use circuitstart::Algorithm;
use relaynet::builder::StarScenario;
use relaynet::runtime::{FactoryMaker, ShardedStar, StagePipeline, StatsKind};
use relaynet::selection::{all_policies, SelectionPolicy};
use relaynet::workload::{ArrivalSpec, ChurnSpec, WorkloadSpec};
use relaynet::DirectoryConfig;
use simcore::event::QueueKind;
use simcore::exec::{DeterministicExecutor, ThreadedExecutor};

/// A churning multi-stream star under `policy`: small enough for a
/// debug-build matrix, rich enough to cross every reclaim path.
fn churning_star(policy: SelectionPolicy) -> StarScenario {
    StarScenario {
        circuits: 3,
        file_bytes: 50_000,
        directory: DirectoryConfig {
            relays: 7,
            bandwidth_mbps: (15.0, 60.0),
            delay_ms: (2.0, 8.0),
        },
        workload: WorkloadSpec {
            streams_per_circuit: 3,
            arrival: ArrivalSpec::OnOff {
                burst: 2,
                gap_ms: (10.0, 40.0),
            },
            churn: Some(ChurnSpec {
                teardown_after_ms: (35.0, 90.0),
                rebuild_delay_ms: 4.0,
                cycles: 2,
            }),
        },
        selection: policy,
        ..Default::default()
    }
}

fn circuitstart_maker() -> FactoryMaker {
    Arc::new(|| Algorithm::CircuitStart.factory(CcConfig::default()))
}

/// The acceptance matrix: 3 seeds × 4 policies, oracle vs 4 workers.
/// Every per-shard fingerprint — flows, slabs, pool, counters, loads —
/// and the merged aggregates must match exactly.
#[test]
fn threaded_runtime_reproduces_oracle_across_seeds_and_policies() {
    for policy in all_policies() {
        for seed in [5u64, 41, 83] {
            let exp = ShardedStar {
                scenario: churning_star(policy.clone()),
                shards: 2,
                seed,
                queue: QueueKind::default(),
                stats: StatsKind::default(),
            };
            let oracle = exp.run(&DeterministicExecutor, circuitstart_maker());
            let threaded = exp.run(&ThreadedExecutor::new(4), circuitstart_maker());
            for s in &oracle.shards {
                assert!(
                    s.fingerprint.stats.rebuilds >= 1,
                    "{} seed {seed} shard {}: churn must actually rebuild",
                    policy.name(),
                    s.shard
                );
            }
            assert_eq!(
                oracle.shards,
                threaded.shards,
                "{} seed {seed}: threaded runtime diverged from the oracle",
                policy.name()
            );
            assert_eq!(oracle.stats, threaded.stats);
            assert_eq!(oracle.cells_delivered, threaded.cells_delivered);
            assert_eq!(oracle.bytes_delivered, threaded.bytes_delivered);
            assert_eq!(oracle.completion_samples(), threaded.completion_samples());
        }
    }
}

/// Worker count is equally unobservable — including pools smaller than
/// the shard count (jobs queue and steal) and larger (idle workers).
#[test]
fn worker_count_is_unobservable() {
    let exp = ShardedStar {
        scenario: churning_star(all_policies()[3].clone()), // congestion-aware
        shards: 4,
        seed: 29,
        queue: QueueKind::default(),
        stats: StatsKind::default(),
    };
    let oracle = exp.run(&DeterministicExecutor, circuitstart_maker());
    for workers in [1usize, 2, 4, 8] {
        let threaded = exp.run(&ThreadedExecutor::new(workers), circuitstart_maker());
        assert_eq!(
            oracle.shards, threaded.shards,
            "{workers} workers diverged from the oracle"
        );
        assert_eq!(oracle.stats, threaded.stats);
    }
}

/// The queue seam composes with the runtime seam: Calendar × Heap ×
/// deterministic × threaded all produce the same experiment.
#[test]
fn queue_and_runtime_seams_compose() {
    let run = |queue, threaded: bool| {
        let exp = ShardedStar {
            scenario: churning_star(all_policies()[1].clone()), // bandwidth
            shards: 2,
            seed: 13,
            queue,
            stats: StatsKind::default(),
        };
        if threaded {
            exp.run(&ThreadedExecutor::new(4), circuitstart_maker())
        } else {
            exp.run(&DeterministicExecutor, circuitstart_maker())
        }
    };
    let base = run(QueueKind::Calendar, false);
    for (queue, threaded) in [
        (QueueKind::Calendar, true),
        (QueueKind::BinaryHeap, false),
        (QueueKind::BinaryHeap, true),
    ] {
        let other = run(queue, threaded);
        assert_eq!(
            base.shards, other.shards,
            "{queue:?} threaded={threaded} diverged"
        );
        assert_eq!(base.stats, other.stats);
    }
}

/// The backpressure-cycle stress: a 3-hop circuit's stage tasks under a
/// full 8-worker pool, with data links far tighter than the window so
/// producers block constantly, must conserve every cell and never
/// deadlock. A watchdog turns a hang into a failure.
#[test]
fn stage_pipeline_under_8_workers_never_deadlocks() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let spec = StagePipeline {
            relays: 3, // client → r1 → r2 → r3 → server: a 3-hop circuit
            cells: 30_000,
            window: 16,
            link_capacity: 2,
        };
        let report = spec.run(&ThreadedExecutor::new(8));
        let _ = tx.send(report);
    });
    let report = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("stage pipeline deadlocked on its bounded channels");
    assert_eq!(report.delivered, 30_000);
    assert!(
        report.blocked_sends > 0,
        "capacity-2 links under a 16-cell window must engage backpressure"
    );
    assert!(
        report.relay_queue_hwm <= 16,
        "relay queue {} exceeded the predecessor's window",
        report.relay_queue_hwm
    );
    // One confirm per hop a cell was forwarded on: the client's hop
    // plus each relay's (the server's consume credits the last relay).
    assert_eq!(report.confirms, 30_000 * 4);
}
