//! End-to-end benches over the paper's workloads (groups `fig1a`,
//! `fig1b`, `fig1c` from DESIGN.md §5): wall-clock cost of regenerating
//! each figure panel, and a guard against performance regressions in the
//! full simulation stack.
//!
//! The panels run on reduced transfer sizes so a bench sweep stays in
//! seconds; the figure *binaries* run the full presets.

use cs_bench::harness::bench;

use circuitstart::prelude::*;

fn bench_fig1_traces() {
    for distance in [1usize, 3] {
        let mut cfg = fig1_trace(distance, Algorithm::CircuitStart);
        cfg.file_bytes = 200_000;
        bench(
            &format!("figures/fig1_traces/circuitstart_200k/{distance}"),
            || {
                let report = run_trace(&cfg);
                assert!(report.result.completed);
                std::hint::black_box(report.peak_cwnd_cells());
            },
        );
    }
}

fn bench_fig1_cdf_slice() {
    let mut cfg = fig1_cdf();
    cfg.star.circuits = 10;
    cfg.star.file_bytes = 200_000;
    cfg.repetitions = 1;
    cfg.algorithms = vec![Algorithm::CircuitStart];
    bench("figures/fig1c_slice/10_circuits_200k", || {
        let report = run_cdf(&cfg);
        assert_eq!(report.series[0].incomplete, 0);
        std::hint::black_box(report.series[0].cdf.median());
    });
}

fn main() {
    bench_fig1_traces();
    bench_fig1_cdf_slice();
}
