// cs-lint-fixture: path = "crates/torcell/src/badagg.rs"
// merge/export/fingerprint fns over workspace structs with named
// fields must bind every field: a missing destructure fires on the fn
// line, a `..` rest pattern fires where the `..` is.

pub struct Tally {
    hits: u64,
    misses: u64,
}

impl Tally {
    pub fn merge(&mut self, other: &Tally) { //~ exhaustive-destructure
        self.hits += other.hits;
        self.misses += other.misses;
    }

    pub fn export_rest(&self) -> u64 {
        let Tally { hits, .. } = *self; //~ exhaustive-destructure
        hits
    }
}

#[derive(Default)]
pub struct Snapshot {
    id: u64,
    total: u64,
}

// A fingerprint constructor that builds its result field-by-field
// never proves it covered them all.
pub fn fingerprint_tally(t: &Tally) -> Snapshot { //~ exhaustive-destructure
    let mut s = Snapshot::default();
    s.total = t.hits + t.misses;
    let _ = &s.id;
    s
}
