//! Property tests for the wire codec and onion layering: round-trips for
//! *every* representable cell, and detection of corruption. These
//! properties license the simulator's structured-cell fast path.
//!
//! Generation is driven by [`simcore::rng::SimRng`] from fixed seeds —
//! the same randomized coverage as a proptest suite, but reproducible
//! bit-for-bit and free of external dependencies.

use simcore::rng::SimRng;
use torcell::prelude::*;

const CASES: usize = 256;

fn arb_relay_command(rng: &mut SimRng) -> RelayCommand {
    const ALL: [RelayCommand; 7] = [
        RelayCommand::Begin,
        RelayCommand::Data,
        RelayCommand::End,
        RelayCommand::Connected,
        RelayCommand::Sendme,
        RelayCommand::Extend,
        RelayCommand::Extended,
    ];
    ALL[rng.range_usize(0, ALL.len())]
}

fn arb_bytes(rng: &mut SimRng, min: usize, max_inclusive: usize) -> Vec<u8> {
    let len = rng.range_usize(min, max_inclusive + 1);
    let mut data = vec![0u8; len];
    rng.fill_bytes(&mut data);
    data
}

fn arb_handshake(rng: &mut SimRng) -> [u8; HANDSHAKE_LEN] {
    let mut hs = [0u8; HANDSHAKE_LEN];
    rng.fill_bytes(&mut hs);
    hs
}

fn arb_cell(rng: &mut SimRng) -> Cell {
    let circ = CircuitId(rng.u32());
    match rng.range_usize(0, 5) {
        0 => Cell::create(circ, arb_handshake(rng)),
        1 => Cell::created(circ, arb_handshake(rng)),
        2 => Cell::destroy(circ, (rng.u32() & 0xFF) as u8),
        3 => Cell {
            circ,
            body: CellBody::Padding,
        },
        _ => {
            let data = arb_bytes(rng, 0, RELAY_DATA_MAX);
            Cell {
                circ,
                body: CellBody::Relay(RelayCell {
                    cmd: arb_relay_command(rng),
                    stream: StreamId((rng.u32() & 0xFFFF) as u16),
                    digest: payload_digest(&data),
                    data,
                }),
            }
        }
    }
}

#[test]
fn cell_round_trip() {
    let mut rng = SimRng::seed_from(0xC0DEC);
    for _ in 0..CASES {
        let cell = arb_cell(&mut rng);
        let wire = encode_cell(&cell);
        assert_eq!(wire.len(), CELL_LEN);
        let decoded = decode_cell(&wire).expect("decode");
        assert_eq!(decoded, cell);
    }
}

#[test]
fn encoding_is_injective_on_distinct_cells() {
    let mut rng = SimRng::seed_from(0x1A1A);
    for _ in 0..CASES {
        let a = arb_cell(&mut rng);
        let b = arb_cell(&mut rng);
        let ea = encode_cell(&a);
        let eb = encode_cell(&b);
        if a == b {
            assert_eq!(ea, eb);
        } else {
            assert_ne!(ea, eb, "distinct cells must encode differently");
        }
    }
}

#[test]
fn feedback_round_trip() {
    let mut rng = SimRng::seed_from(0xFB);
    for _ in 0..CASES {
        let fb = Feedback {
            circ: CircuitId(rng.u32()),
            seq: rng.u64(),
        };
        let wire = encode_feedback(&fb);
        assert_eq!(wire.len(), FEEDBACK_WIRE_LEN);
        assert_eq!(decode_feedback(&wire), Ok(fb));
    }
}

#[test]
fn feedback_corruption_is_detected() {
    let mut rng = SimRng::seed_from(0xBADF);
    for _ in 0..CASES {
        let fb = Feedback {
            circ: CircuitId(rng.u32()),
            seq: rng.u64(),
        };
        let flip_byte = rng.range_usize(0, FEEDBACK_WIRE_LEN);
        let flip_bits = rng.range_u64(1, 256) as u8;
        let mut wire = encode_feedback(&fb);
        wire[flip_byte] ^= flip_bits;
        // Any single-byte corruption must not decode to the same frame
        // (magic, checksum, or value changes).
        match decode_feedback(&wire) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, fb),
        }
    }
}

#[test]
fn truncated_cells_never_decode() {
    let mut rng = SimRng::seed_from(0x7271);
    for _ in 0..CASES {
        let cell = arb_cell(&mut rng);
        let cut = rng.range_usize(0, CELL_LEN);
        let wire = encode_cell(&cell);
        assert!(decode_cell(&wire[..cut]).is_err());
    }
}

#[test]
fn layer_cipher_is_involutive() {
    let mut rng = SimRng::seed_from(0x1417);
    for _ in 0..CASES {
        let cipher = LayerCipher::new(LayerKey(rng.u64()));
        let nonce = rng.u64();
        let data = arb_bytes(&mut rng, 0, 599);
        let mut buf = data.clone();
        cipher.apply(nonce, &mut buf);
        cipher.apply(nonce, &mut buf);
        assert_eq!(buf, data);
    }
}

#[test]
fn onion_route_recognizes_exactly_the_target_hop() {
    let mut rng = SimRng::seed_from(0x0111);
    for _ in 0..CASES {
        let hops = rng.range_usize(1, 6);
        let target = rng.range_usize(0, 5) % hops;
        let payload = arb_bytes(&mut rng, 8, RELAY_DATA_MAX);
        let key_seed = rng.u64();
        let mut route = OnionRoute::new();
        let mut relays: Vec<RelayCrypt> = Vec::new();
        for i in 0..hops {
            let key = LayerKey(
                key_seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    | 1,
            );
            route.push_layer(key);
            relays.push(RelayCrypt::new(key));
        }
        let mut cell = RelayCell::data(StreamId(1), payload.clone());
        route.wrap_for_hop(target, &mut cell);
        let mut recognized_at = None;
        for (i, relay) in relays.iter_mut().enumerate().take(target + 1) {
            if relay.strip_forward(&mut cell) {
                recognized_at = Some(i);
                break;
            }
        }
        assert_eq!(recognized_at, Some(target));
        assert_eq!(cell.data, payload);
    }
}

#[test]
fn digest_mismatch_detected_after_tamper() {
    let mut rng = SimRng::seed_from(0xD163);
    for _ in 0..CASES {
        let payload = arb_bytes(&mut rng, 1, 64);
        let idx = rng.range_usize(0, 64);
        let bits = rng.range_u64(1, 256) as u8;
        let mut cell = RelayCell::data(StreamId(1), payload);
        let i = idx % cell.data.len();
        cell.data[i] ^= bits;
        assert!(!cell.digest_ok());
    }
}
