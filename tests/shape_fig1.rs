//! Experiment-shape tests: the qualitative structure of the paper's
//! Figure 1 must hold in the reproduction — who wins, in which direction,
//! and with which characteristic curve features. (Exact values live in
//! EXPERIMENTS.md; these tests pin the *shape* so regressions are caught
//! by CI, not by eyeballing plots.)

use circuitstart::prelude::*;

// ---------------------------------------------------------------------
// Upper panels: cwnd traces
// ---------------------------------------------------------------------

#[test]
fn fig1a_overshoot_then_compensation_to_optimal() {
    let report = run_trace(&fig1_trace(1, Algorithm::CircuitStart));
    // (1) doubling from 2,
    assert_eq!(report.cwnd_cells[0].1, 2);
    // (2) the peak overshoots the optimum,
    assert!(
        f64::from(report.peak_cwnd_cells()) > report.optimal_cells,
        "peak {} vs optimal {}",
        report.peak_cwnd_cells(),
        report.optimal_cells
    );
    // (3) compensation lands in a tight band around the optimum (the
    // paper: "accurately estimate the optimal cwnd"),
    let peak = report.peak_cwnd_cells();
    let after_exit = report
        .cwnd_cells
        .iter()
        .skip_while(|&&(_, c)| c < peak)
        .nth(1)
        .map(|&(_, c)| f64::from(c))
        .expect("compensation step exists");
    assert!(
        (after_exit - report.optimal_cells).abs() / report.optimal_cells < 0.15,
        "compensation {after_exit} vs optimal {}",
        report.optimal_cells
    );
    // (4) and the window stays settled.
    assert!(report.settling_time_ms(0.35).is_some());
}

#[test]
fn fig1b_far_bottleneck_compensates_via_backpropagation() {
    let report = run_trace(&fig1_trace(3, Algorithm::CircuitStart));
    assert!(f64::from(report.peak_cwnd_cells()) > report.optimal_cells);
    // The source cannot measure a 3-hop-away bottleneck in one round; the
    // backpropagation rule must still bring it into the band.
    assert!(
        report.settling_time_ms(0.35).is_some(),
        "distance-3 window must settle near optimal; trace {:?}",
        report.cwnd_cells
    );
}

#[test]
fn classic_exit_halves_instead_of_measuring() {
    for distance in [1usize, 3] {
        let report = run_trace(&fig1_trace(distance, Algorithm::ClassicBacktap));
        let peak = report.peak_cwnd_cells();
        let after = report
            .cwnd_cells
            .iter()
            .skip_while(|&&(_, c)| c < peak)
            .nth(1)
            .map(|&(_, c)| c)
            .expect("exit exists");
        assert_eq!(after, peak / 2, "distance {distance}");
    }
}

#[test]
fn circuitstart_beats_classic_on_transfer_time_in_the_trace_geometry() {
    for distance in [1usize, 3] {
        let cs = run_trace(&fig1_trace(distance, Algorithm::CircuitStart));
        let classic = run_trace(&fig1_trace(distance, Algorithm::ClassicBacktap));
        let t_cs = cs.result.transfer_time().unwrap();
        let t_classic = classic.result.transfer_time().unwrap();
        assert!(
            t_cs < t_classic,
            "distance {distance}: CircuitStart {t_cs} vs classic {t_classic}"
        );
    }
}

#[test]
fn ramp_is_fast_settling_within_paper_axis() {
    // The paper plots 0–300 ms of *transfer* time. Our traces include the
    // circuit build (~150 ms); compensation must land within ~150 ms of
    // transfer start, i.e. well inside the paper's axis.
    let report = run_trace(&fig1_trace(1, Algorithm::CircuitStart));
    let transfer_start = report.result.first_data_at.unwrap().as_millis_f64();
    let settle = report.settling_time_ms(0.35).expect("settles");
    assert!(
        settle - transfer_start < 150.0,
        "settled {settle} ms with transfer starting at {transfer_start} ms"
    );
}

// ---------------------------------------------------------------------
// Lower panel: TTLB CDF
// ---------------------------------------------------------------------

/// A scaled-down Figure 1c (fewer circuits/repetitions so the suite stays
/// fast in debug builds); the bench regenerates the full preset.
fn small_cdf() -> CdfReport {
    let mut cfg = fig1_cdf();
    cfg.star.circuits = 16;
    cfg.star.directory.relays = 12;
    cfg.star.file_bytes = 300_000;
    cfg.repetitions = 2;
    run_cdf(&cfg)
}

#[test]
fn fig1c_circuitstart_improves_on_plain_backtap() {
    // The paper's pairing: CircuitStart vs BackTap without a startup
    // phase (Vegas-only ramping is its cited weakness).
    let report = small_cdf();
    let cs = &report.get("circuitstart").unwrap().cdf;
    let backtap = &report.get("no-slow-start").unwrap().cdf;
    for s in &report.series {
        assert_eq!(s.incomplete, 0, "{}", s.algorithm_key);
    }
    assert!(
        cs.median() < backtap.median(),
        "median {} vs {}",
        cs.median(),
        backtap.median()
    );
    // The bulk of the distribution shifts left; at paper scale the best
    // quantile improves by ≈0.5 s (EXPERIMENTS.md E3). The extreme tail
    // (circuits that measured their share during peak congestion) may
    // cross back — exactly as the paper's own CDFs converge at the top.
    let gain = cs.max_quantile_improvement_over(backtap);
    assert!(
        gain > 0.1 * backtap.median(),
        "best-quantile gain {gain} too small: cs {cs}, backtap {backtap}"
    );
    assert!(
        cs.quantile(0.25) < backtap.quantile(0.25),
        "lower quartile must improve: {} vs {}",
        cs.quantile(0.25),
        backtap.quantile(0.25)
    );
}

#[test]
fn fig1c_circuitstart_not_inferior_to_classic_slow_start() {
    // The transplanted traditional slow start (halving exit) is an extra
    // baseline; under round-robin relays its aggressive windows buy no
    // scheduling advantage, and CircuitStart must stay competitive while
    // keeping queues honest. At this scaled-down size (16 circuits, 12
    // relays, 2 repetitions) the measured mean ratio sits at 1.19–1.29
    // across seeds — CircuitStart trades a bounded slowdown for honest
    // queues; the bound below catches a real regression, not noise.
    let report = small_cdf();
    let cs = &report.get("circuitstart").unwrap().cdf;
    let classic = &report.get("classic").unwrap().cdf;
    assert!(
        cs.mean() <= classic.mean() * 1.35,
        "mean {} vs {}",
        cs.mean(),
        classic.mean()
    );
}

#[test]
fn fig1c_axis_range_matches_paper() {
    // The paper's x-axis runs to 3 s with the mass well inside; the
    // scaled-down run must land in the same order of magnitude.
    let report = small_cdf();
    for s in &report.series {
        assert!(
            s.cdf.max() < 3.0,
            "{}: worst sample {} outside the paper's axis",
            s.algorithm_key,
            s.cdf.max()
        );
        assert!(
            s.cdf.median() > 0.05,
            "{}: median {} implausibly fast",
            s.algorithm_key,
            s.cdf.median()
        );
    }
}
